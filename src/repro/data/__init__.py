"""``repro.data`` — datasets, loaders, transforms and synthetic workloads."""

from . import synthetic, transforms
from .dataloader import DataLoader, default_collate
from .dataset import (
    ConcatDataset,
    Dataset,
    Subset,
    TensorDataset,
    TransformDataset,
    random_split,
)
from .prefetch import PrefetchDataLoader

__all__ = [
    "Dataset",
    "TensorDataset",
    "TransformDataset",
    "Subset",
    "ConcatDataset",
    "random_split",
    "DataLoader",
    "PrefetchDataLoader",
    "default_collate",
    "transforms",
    "synthetic",
]
