"""Pool-level continuous cross-request batching.

The first serving PR batched *per worker*: each worker greedily coalesced
whatever happened to be in its own queue, so two compatible requests that
landed on different workers never shared a forward, and a request sent to a
busy worker queued behind it even while another worker idled.  This module
moves the decision up a level: admitted requests land in one pool-wide
FIFO :class:`RequestBacklog`, and whenever *any* worker has dispatch
capacity the pool cuts the next batch from the front of the backlog —
across connections, across submitters.

The batching is **continuous** in the vLLM sense: there is no timer waiting
for a batch to fill.  Under light load every request is dispatched alone the
moment it arrives (no added latency); under heavy load batches grow toward
``max_batch_size`` naturally, because requests accumulate exactly while all
workers are busy.  Batch size adapts to load instead of being configured.

The pool keeps at most :data:`PIPELINE_DEPTH` batches in flight per worker:
one computing, one parked in the worker's queue so the worker never idles
between batches.  Deeper pipelining would only grow queue latency — a
request is better off in the backlog (where it can still be shed, retried
or batched with later arrivals) than committed to a specific worker.
"""

from __future__ import annotations

import collections
import time
from typing import Any, Deque, List, Optional

#: batches in flight per worker: one computing + one queued behind it.
PIPELINE_DEPTH = 2


def coalescing_key(request: Any) -> tuple:
    """What must match for two requests to share one batch frame.

    Two requests fuse only when they agree on the stacked tensor's shape
    *and* on their secure configuration: on secure pools ``request.secure``
    is the (protocol, frac_bits, truncation) triple the answer must be
    computed under, and mixing configurations in one frame would execute
    half the batch with the wrong number format.  Float-pool requests all
    carry ``secure=None`` and coalesce purely by shape, exactly as before.
    """
    return (getattr(request, "payload").shape, getattr(request, "secure", None))


class RequestBacklog:
    """FIFO of admitted-but-undispatched requests, with batch cutting.

    Not thread-safe on its own — the pool mutates it under its lock, which
    also makes the FIFO guarantee meaningful (single ordered admitter).
    """

    def __init__(self) -> None:
        self._queue: Deque[Any] = collections.deque()

    def append(self, request: Any) -> None:
        """Admit one request at the back (stamps its enqueue time)."""
        if getattr(request, "t_admit", None) is None:
            request.t_admit = time.perf_counter()
        self._queue.append(request)

    def requeue(self, requests: List[Any]) -> None:
        """Put retried/undispatchable requests back at the *front*, in order.

        Crash retries must not lose their place behind requests that arrived
        after them, or a crashy worker could starve its oldest victims.
        """
        for request in reversed(requests):
            self._queue.appendleft(request)

    def cut(self, max_batch_size: int) -> List[Any]:
        """Remove and return the next batch (up to ``max_batch_size``)."""
        batch: List[Any] = []
        while self._queue and len(batch) < max_batch_size:
            batch.append(self._queue.popleft())
        return batch

    def drain(self) -> List[Any]:
        """Remove and return everything (pool shutdown)."""
        remaining = list(self._queue)
        self._queue.clear()
        return remaining

    def oldest_wait_s(self, now: Optional[float] = None) -> float:
        """Seconds the head request has been waiting (0 when empty)."""
        if not self._queue:
            return 0.0
        now = time.perf_counter() if now is None else now
        return max(now - self._queue[0].t_admit, 0.0)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __repr__(self) -> str:
        return f"RequestBacklog({len(self._queue)} pending)"


class Batch:
    """Parent-side bookkeeping for one dispatched batch frame."""

    __slots__ = ("batch_id", "requests", "slot", "seq", "dispatched_at")

    def __init__(self, batch_id: int, requests: List[Any],
                 slot: Optional[int] = None, seq: Optional[int] = None) -> None:
        self.batch_id = batch_id
        self.requests = requests
        self.slot = slot                  # leased request-ring slot (shm only)
        self.seq = seq
        self.dispatched_at = time.perf_counter()

    def __len__(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:
        via = "shm" if self.slot is not None else "pipe"
        return f"Batch(#{self.batch_id}, {len(self.requests)} requests, {via})"
