"""``repro.models`` — model zoo (first-order and quadratic variants).

Classification backbones (VGG, ResNet, MobileNetV1, small reference nets),
the SNGAN generator/discriminator pair and the SSD detector.  Every factory
accepts a ``neuron_type`` so the same structure can be instantiated as the
first-order baseline, a published QDNN design or the paper's QuadraNN.
"""

from . import detection_utils
from .mobilenet import MobileNetV1, mobilenet_from_cfg, mobilenet_v1, mobilenet_v1_quadra
from .resnet import BasicBlock, ResNet, resnet20, resnet32, resnet32_quadra, resnet_from_blocks
from .simple import FirstOrderMLP, LeNet, QuadraticMLP, SmallConvNet
from .sngan import SNGANDiscriminator, SNGANGenerator, sngan_pair
from .ssd import SSD, SSDBackbone, build_ssd
from .vgg import VGG, vgg8, vgg16, vgg16_quadra, vgg_from_cfg

__all__ = [
    "VGG",
    "vgg8",
    "vgg16",
    "vgg16_quadra",
    "vgg_from_cfg",
    "ResNet",
    "BasicBlock",
    "resnet20",
    "resnet32",
    "resnet32_quadra",
    "resnet_from_blocks",
    "MobileNetV1",
    "mobilenet_v1",
    "mobilenet_v1_quadra",
    "mobilenet_from_cfg",
    "SmallConvNet",
    "QuadraticMLP",
    "FirstOrderMLP",
    "LeNet",
    "SNGANGenerator",
    "SNGANDiscriminator",
    "sngan_pair",
    "SSD",
    "SSDBackbone",
    "build_ssd",
    "detection_utils",
]
