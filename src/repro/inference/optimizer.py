"""Graph-level optimizer over inference plans.

The compiler lowers a module tree chain by chain (``inference_plan()``
stages, ``Sequential`` bodies, residual-block innards).  Before a chain is
translated into steps, :func:`optimize_plan` rewrites it at the *module*
level — where layer adjacency is still visible — with four passes:

1. **Dead-layer elimination** — ``Identity``, evaluation-mode ``Dropout``,
   all-zero ``ZeroPad2d`` and scale-1 ``UpsampleNearest2d`` disappear from
   the plan (exact).
2. **Padding folding** — a symmetric ``ZeroPad2d`` feeding a convolution
   folds into the convolution's own ``padding``, so the padded copy of the
   feature map is never materialised.  Exact: ``im2col`` zero-pads
   identically, patch for patch.
3. **Constant folding** — a running-statistics BatchNorm recomputes
   ``(var + eps) ** -0.5`` and four reshapes on *every call*; the optimizer
   replaces it with a :class:`FrozenBatchNorm` carrying the precomputed
   arrays.  Exact (same operations, same order on identical values), but it
   bakes the statistics in: recompile after mutating running stats in place.
4. **BatchNorm-into-conv folding** (``level="full"`` only) — a
   ``Conv2d -> BatchNorm2d`` pair collapses into one convolution with
   rescaled weights.  One fewer pass over the feature map, but the float
   rescaling perturbs the last bits, so the pass stays behind the opt-in
   level — compiled-equals-eager holds to ~1e-6, not bit-for-bit.

Modules carrying forward hooks are never rewritten (hooks observe eager
activations), and a BatchNorm without running statistics is left alone — it
genuinely depends on its input.  Every rewrite is recorded in an
:class:`OptimizationReport` that ``compile_model`` attaches to the
:class:`~repro.inference.CompiledModel`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple, Union

import numpy as np

from ..nn.containers import Sequential
from ..nn.layers.activations import Identity
from ..nn.layers.conv import Conv2d
from ..nn.layers.misc import Dropout, UpsampleNearest2d, ZeroPad2d
from ..nn.layers.normalization import BatchNorm2d, _BatchNorm
from ..nn.module import Module
from ..quadratic.layers.hybrid import (
    HybridQuadraticConv2d,
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dT4,
)
from ..quadratic.layers.qconv import QuadraticConv2d

#: Optimization levels accepted by ``compile_model(optimize=...)``.
#: ``True`` maps to ``"default"`` and ``False`` to ``"none"``.
OPT_LEVELS = ("none", "default", "full")

#: Layers with a ``padding`` attribute an upstream ZeroPad2d can fold into.
_PADDABLE_CONVS = (Conv2d, QuadraticConv2d, HybridQuadraticConv2d,
                   HybridQuadraticConv2dT4, HybridQuadraticConv2dFan)


def normalize_level(optimize: Union[str, bool, None]) -> str:
    """Map the ``optimize`` argument to one of :data:`OPT_LEVELS`."""
    if optimize is None or optimize is True:
        return "default"
    if optimize is False:
        return "none"
    level = str(optimize).strip().lower()
    if level not in OPT_LEVELS:
        raise ValueError(
            f"unknown optimization level '{optimize}'; choose one of "
            f"{', '.join(OPT_LEVELS)} (or True/False)")
    return level


@dataclass
class OptimizationReport:
    """What the graph optimizer did to one compiled model."""

    level: str = "default"
    #: Identity / eval-mode Dropout / zero pads / scale-1 upsamples removed.
    dead_layers_eliminated: int = 0
    #: ZeroPad2d layers folded into a downstream convolution's padding.
    paddings_folded: int = 0
    #: BatchNorms whose statistics were constant-folded (FrozenBatchNorm).
    constants_folded: int = 0
    #: Conv2d->BatchNorm2d pairs collapsed into one conv (level "full").
    batchnorms_folded: int = 0
    #: human-readable one-liners, in rewrite order (for --json / debugging).
    notes: List[str] = field(default_factory=list)

    @property
    def total_rewrites(self) -> int:
        return (self.dead_layers_eliminated + self.paddings_folded
                + self.constants_folded + self.batchnorms_folded)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "dead_layers_eliminated": self.dead_layers_eliminated,
            "paddings_folded": self.paddings_folded,
            "constants_folded": self.constants_folded,
            "batchnorms_folded": self.batchnorms_folded,
        }


class FrozenBatchNorm(Module):
    """A BatchNorm with its per-call constants precomputed at compile time.

    Holds copies of the running statistics with ``inv_std`` already raised
    to the ``-0.5`` — the quantities the BatchNorm compile rule recomputes
    on every forward.  The compiled step applies them in the exact operation
    order of the live rule (subtract, multiply, multiply, add), so freezing
    is bit-exact; only the *liveness* changes (in-place edits to the source
    module's statistics after compilation are no longer observed).

    Compile-time construct: it only ever appears inside optimized plans, so
    its eager ``forward`` is intentionally unimplemented.
    """

    def __init__(self, bn: _BatchNorm) -> None:
        super().__init__()
        self.num_features = bn.num_features
        self.mean = np.array(bn.running_mean, dtype=np.float32)
        # Same element-wise computation the per-call rule performs.
        self.inv_std = (np.asarray(bn.running_var, dtype=np.float32)
                        + np.asarray(bn.eps, dtype=np.float32)) ** -0.5
        self.gamma = (np.array(bn.weight.data, dtype=np.float32)
                      if bn.affine else None)
        self.beta = (np.array(bn.bias.data, dtype=np.float32)
                     if bn.affine else None)

    def stat_shape(self, ndim: int) -> Tuple[int, ...]:
        shape = [1] * ndim
        shape[1] = self.num_features
        return tuple(shape)

    def forward(self, x):  # pragma: no cover - compile-time construct
        raise RuntimeError(
            "FrozenBatchNorm exists only inside optimized inference plans; "
            "compile the model (repro.inference.compile_model) to execute it")


def _has_hooks(module: Module) -> bool:
    return bool(module._forward_hooks)


def _is_dead(module: Module) -> bool:
    if _has_hooks(module):
        return False
    if isinstance(module, (Identity, Dropout)):
        return True
    if isinstance(module, ZeroPad2d) and not any(module.padding):
        return True
    if isinstance(module, UpsampleNearest2d) and module.scale_factor == 1:
        return True
    return False


def _flatten(modules: Sequence[Module]) -> List[Module]:
    """Expand hook-free Sequentials so adjacent layers become visible."""
    flat: List[Module] = []
    for module in modules:
        if isinstance(module, Sequential) and not _has_hooks(module):
            flat.extend(_flatten(list(module)))
        else:
            flat.append(module)
    return flat


def _fold_padding(modules: List[Module], report: OptimizationReport) -> List[Module]:
    out: List[Module] = []
    index = 0
    while index < len(modules):
        module = modules[index]
        nxt = modules[index + 1] if index + 1 < len(modules) else None
        if (isinstance(module, ZeroPad2d) and not _has_hooks(module)
                and isinstance(nxt, _PADDABLE_CONVS) and not _has_hooks(nxt)):
            left, right, top, bottom = module.padding
            if left == right and top == bottom:
                # A shallow copy shares the weight arrays (in-place updates
                # stay visible) but owns its geometry attributes.
                clone = copy.copy(nxt)
                ph, pw = nxt.padding
                object.__setattr__(clone, "padding", (ph + top, pw + left))
                out.append(clone)
                report.paddings_folded += 1
                report.notes.append(
                    f"folded ZeroPad2d{module.padding} into "
                    f"{type(nxt).__name__}.padding -> {clone.padding}")
                index += 2
                continue
        out.append(module)
        index += 1
    return out


def _foldable_bn(module: Module) -> bool:
    return (isinstance(module, _BatchNorm) and not _has_hooks(module)
            and module.track_running_stats)


def _fold_bn_into_conv(modules: List[Module],
                       report: OptimizationReport) -> List[Module]:
    out: List[Module] = []
    index = 0
    while index < len(modules):
        module = modules[index]
        nxt = modules[index + 1] if index + 1 < len(modules) else None
        if (type(module) is Conv2d and not _has_hooks(module)
                and isinstance(nxt, BatchNorm2d) and _foldable_bn(nxt)):
            out.append(_folded_conv(module, nxt))
            report.batchnorms_folded += 1
            report.notes.append(
                f"folded BatchNorm2d({nxt.num_features}) into Conv2d"
                f"({module.in_channels}, {module.out_channels})")
            index += 2
            continue
        out.append(module)
        index += 1
    return out


def _folded_conv(conv: Conv2d, bn: BatchNorm2d) -> Conv2d:
    """One convolution computing ``bn(conv(x))`` (float-rescaled weights)."""
    var = np.asarray(bn.running_var, dtype=np.float32)
    mean = np.asarray(bn.running_mean, dtype=np.float32)
    gamma = (np.asarray(bn.weight.data, dtype=np.float32) if bn.affine
             else np.ones_like(var))
    beta = (np.asarray(bn.bias.data, dtype=np.float32) if bn.affine
            else np.zeros_like(var))
    scale = gamma / np.sqrt(var + np.float32(bn.eps))
    folded = Conv2d(conv.in_channels, conv.out_channels, conv.kernel_size,
                    stride=conv.stride, padding=conv.padding,
                    groups=conv.groups, bias=True)
    folded.weight.data[...] = conv.weight.data * scale[:, None, None, None]
    conv_bias = (conv.bias.data if conv.bias is not None
                 else np.zeros_like(mean))
    folded.bias.data[...] = (conv_bias - mean) * scale + beta
    folded.train(False)
    return folded


def _freeze_batchnorms(modules: List[Module],
                       report: OptimizationReport) -> List[Module]:
    out: List[Module] = []
    for module in modules:
        if _foldable_bn(module):
            out.append(FrozenBatchNorm(module))
            report.constants_folded += 1
            report.notes.append(
                f"constant-folded {type(module).__name__}({module.num_features}) "
                f"statistics")
        else:
            out.append(module)
    return out


def optimize_plan(modules: Sequence[Module], level: str = "default",
                  report: OptimizationReport = None) -> Tuple[List[Module], OptimizationReport]:
    """Rewrite one chain of an inference plan at the given level.

    Returns the rewritten module list plus the (possibly shared) report.
    ``level="none"`` returns the input untouched.
    """
    if report is None:
        report = OptimizationReport(level=level)
    if level == "none":
        return list(modules), report
    plan = _flatten(modules)
    survivors = [m for m in plan if not _is_dead(m)]
    report.dead_layers_eliminated += len(plan) - len(survivors)
    for dropped in (m for m in plan if _is_dead(m)):
        report.notes.append(f"eliminated dead layer {type(dropped).__name__}")
    plan = _fold_padding(survivors, report)
    if level == "full":
        plan = _fold_bn_into_conv(plan, report)
    plan = _freeze_batchnorms(plan, report)
    return plan, report
