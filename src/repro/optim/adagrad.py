"""Adagrad optimizer.

Included for completeness of the design-exploration tooling: sparse-feature
heads (e.g. the detector's classification head on rare classes) sometimes
prefer Adagrad's monotonically decreasing per-parameter step sizes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.parameter import Parameter
from .optimizer import Optimizer


class Adagrad(Optimizer):
    """Adagrad with learning-rate decay and L2 weight decay.

    Parameters
    ----------
    lr : float
        Base step size.
    lr_decay : float
        Per-step decay of the effective learning rate,
        ``lr / (1 + step * lr_decay)``.
    eps : float
        Denominator stabiliser.
    initial_accumulator_value : float
        Starting value of the squared-gradient accumulator.
    weight_decay : float
        L2 penalty added to the gradient.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, lr_decay: float = 0.0,
                 eps: float = 1e-10, initial_accumulator_value: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if lr_decay < 0:
            raise ValueError(f"lr_decay must be non-negative, got {lr_decay}")
        if initial_accumulator_value < 0:
            raise ValueError(
                f"initial_accumulator_value must be non-negative, got {initial_accumulator_value}"
            )
        defaults = dict(lr=lr, lr_decay=lr_decay, eps=eps,
                        initial_accumulator_value=initial_accumulator_value,
                        weight_decay=weight_decay)
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr, lr_decay, eps = group["lr"], group["lr_decay"], group["eps"]
            weight_decay = group["weight_decay"]
            init_value = group["initial_accumulator_value"]
            for p in group["params"]:
                if p.grad is None or not p.requires_grad:
                    continue
                grad = np.asarray(p.grad, dtype=np.float32)
                if weight_decay:
                    grad = grad + weight_decay * p.data
                state = self._get_state(p)
                accumulator = state.get("sum")
                if accumulator is None:
                    accumulator = np.full_like(p.data, init_value, dtype=np.float32)
                step_count = int(state.get("step", np.zeros(1))[0]) + 1
                state["step"] = np.array([step_count])

                accumulator = accumulator + grad * grad
                state["sum"] = accumulator
                effective_lr = lr / (1 + (step_count - 1) * lr_decay)
                p.data -= (effective_lr * grad / (np.sqrt(accumulator) + eps)).astype(p.data.dtype)
