"""Spec serialization: ExperimentSpec -> to_dict -> from_dict -> build().

The contract of the declarative API is that a spec is pure data: JSON
round-tripping must be lossless, and a model built from the restored spec
must be structurally identical (same parameter names and shapes) to one
built from the original.
"""

from __future__ import annotations

import json

import pytest

from repro.experiment import (
    SPEC_VERSION,
    DataSpec,
    ExperimentSpec,
    ModelSpec,
    SearchSpec,
    TrainSpec,
)
from repro.utils import seed_everything


def _parameter_shapes(model):
    return {name: tuple(param.data.shape) for name, param in model.named_parameters()}


def _assert_build_matches(spec: ModelSpec):
    seed_everything(0)
    original = spec.build()
    restored_spec = ModelSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored_spec == spec
    seed_everything(0)
    restored = restored_spec.build()
    assert _parameter_shapes(original) == _parameter_shapes(restored)


class TestModelSpecRoundTrip:
    def test_vgg_spec_round_trips_structurally(self):
        _assert_build_matches(ModelSpec(name="vgg8", neuron_type="OURS", num_classes=5,
                                        width_multiplier=0.25))

    def test_resnet_spec_round_trips_structurally(self):
        _assert_build_matches(ModelSpec(name="resnet8", neuron_type="T4", num_classes=7,
                                        width_multiplier=0.25))

    def test_mlp_spec_round_trips_structurally(self):
        _assert_build_matches(ModelSpec(name="mlp", neuron_type="OURS", num_classes=3,
                                        extra={"layer_sizes": [4, 8]}))

    def test_autobuild_spec_round_trips_structurally(self):
        _assert_build_matches(ModelSpec(name="small_convnet", neuron_type="OURS",
                                        num_classes=4, width_multiplier=0.25,
                                        auto_build=True,
                                        extra={"image_size": 16}))

    def test_genome_spec_round_trips_structurally(self):
        genome = {"stage_depths": [1, 2], "stage_widths": [16, 32], "neuron_type": "OURS"}
        _assert_build_matches(ModelSpec(genome=genome, num_classes=4,
                                        width_multiplier=0.5))

    def test_genome_inherits_model_spec_fields_it_omits(self):
        from repro.nn.layers.normalization import BatchNorm2d

        spec = ModelSpec(genome={"stage_depths": [1], "stage_widths": [16]},
                         neuron_type="T4", use_batchnorm=False, num_classes=3)
        model = spec.build()
        neuron_types = [module.spec.name for _, module in model.named_modules()
                        if hasattr(module, "spec")]
        assert neuron_types == ["T4"]
        assert not any(isinstance(m, BatchNorm2d) for _, m in model.named_modules())

    def test_genome_explicit_fields_win_over_model_spec(self):
        spec = ModelSpec(genome={"stage_depths": [1], "stage_widths": [16],
                                 "neuron_type": "T2"},
                         neuron_type="T4", num_classes=3)
        model = spec.build()
        neuron_types = [module.spec.name for _, module in model.named_modules()
                        if hasattr(module, "spec")]
        assert neuron_types == ["T2"]
        assert spec.effective_neuron_type == "T2"


class TestExperimentSpecRoundTrip:
    def test_full_spec_json_round_trip_is_lossless(self):
        spec = ExperimentSpec(
            name="rt",
            seed=3,
            model=ModelSpec(name="vgg8", neuron_type="T2_4", num_classes=6,
                            width_multiplier=0.5, hybrid_bp=True),
            data=DataSpec(num_samples=64, test_samples=32, num_classes=6, image_size=16),
            train=TrainSpec(trainer="classifier", optimizer="adam", epochs=3,
                            batch_size=8, lr=0.01, max_batches_per_epoch=2),
            search=SearchSpec(strategy="evolution", budget=4,
                              space={"width_choices": [16, 32]}),
            steps=["build", "fit", "search"],
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.to_dict() == spec.to_dict()

    def test_save_and_load(self, tmp_path):
        spec = ExperimentSpec(model=ModelSpec(name="lenet", neuron_type="first_order"))
        path = spec.save(str(tmp_path / "spec.json"))
        assert ExperimentSpec.load(path) == spec

    def test_version_is_written_and_checked(self):
        spec = ExperimentSpec()
        assert spec.to_dict()["version"] == SPEC_VERSION
        future = spec.to_dict()
        future["version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ExperimentSpec.from_dict(future).validate()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec field"):
            ExperimentSpec.from_dict({"frobnicate": 1})
        with pytest.raises(ValueError, match="unknown ModelSpec field"):
            ModelSpec.from_dict({"name": "vgg8", "depth": 3})

    def test_unknown_components_rejected_at_validation(self):
        with pytest.raises(ValueError, match="registered models"):
            ExperimentSpec(model=ModelSpec(name="transformer")).validate()
        with pytest.raises(ValueError, match="registered trainers"):
            ExperimentSpec(train=TrainSpec(trainer="rl")).validate()
        with pytest.raises(ValueError, match="registered optimizers"):
            ExperimentSpec(train=TrainSpec(optimizer="lion")).validate()
        with pytest.raises(ValueError, match="registered datasets"):
            ExperimentSpec(data=DataSpec(name="imagenet")).validate()
        with pytest.raises(ValueError, match="unknown pipeline step"):
            ExperimentSpec(steps=["build", "deploy"]).validate()
        with pytest.raises(ValueError, match="requires a SearchSpec"):
            ExperimentSpec(steps=["search"]).validate()
