"""Scale-out serving benchmark: worker pool vs the single-process predictor.

Measures sustained single-sample serving throughput on the ``smoke`` preset
(quadratic VGG-8, the CI canary model) for

1. the single-process baseline — PR 2's :class:`BatchedPredictor` fed one
   sample at a time from a submitting thread, and
2. the ``repro.serve`` :class:`WorkerPool` at increasing worker counts, fed
   the same stream through its dispatcher (IPC, least-loaded dispatch and
   per-worker micro-batching included — this is the *deployed* path, not a
   best case).

On a host with parallelism headroom (>= 3 cores: the workers plus the
parent's submit/dispatch threads) the pool must beat the baseline by
``MIN_SCALEOUT`` (1.5x) at 2+ workers, and the run **fails** otherwise —
this is the CI regression gate for the serving subsystem.  With fewer cores
process parallelism has nothing to scale onto, so the numbers are reported
but the ratio is not asserted (the report says so explicitly).

The second experiment is the **open-loop tail-latency SLO gate**: a seeded
Poisson arrival schedule (from ``tests/serve/loadgen.py`` — the same
generator the tests use) fired at a pool at ~60% of its measured capacity,
reporting client-side p50/p95/p99 and the pool's own per-stage percentiles.
The p99 SLO is *relative* — a multiple of the pool's unloaded single-request
latency on this host — so the gate tracks serving regressions, not hardware.
It is enforced under the same >= 3 cores headroom rule; below that the
verdict is printed report-only.

The third experiment is the **allocation-count scenario**: the warm shm
hot path (in-ring assembly + arena-backed ``out=`` execution) runs one
steady-state batch under ``tracemalloc`` and the run fails if any source
line's typical allocation reaches 1 KiB — i.e. if a tensor-sized buffer
sneaks back onto the per-batch path.  This one is in-process arithmetic,
so it is asserted at **any** core count.  Every run also appends its
headline numbers to ``results/trajectory.jsonl`` so perf PRs have an
append-only before/after record.

Run with ``PYTHONPATH=src python benchmarks/bench_serving_scaleout.py``;
``--quick`` / ``REPRO_BENCH_QUICK=1`` is the CI mode (fewer samples, fewer
pool sizes).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

from common import append_trajectory, check_against_trajectory, \
    format_trajectory_findings, fresh_seed, load_trajectory, quick_mode, \
    save_experiment

from repro.experiment import Experiment, get_preset
from repro.inference import BatchedPredictor
from repro.serve import ServeConfig, WorkerPool
from repro.utils.logging import format_table

# The load generator is shared with the serving tests so the benchmark and
# the test suite can never disagree about what an "open loop" or a "p99" is.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests" / "serve"))
from loadgen import check_percentile, poisson_schedule, run_open_loop  # noqa: E402

#: samples streamed through each serving configuration
SAMPLES = 256
#: pool sizes to sweep
WORKER_COUNTS = (1, 2, 4)
#: CI quick mode
QUICK_SAMPLES = 64
QUICK_WORKER_COUNTS = (2,)

#: the issue's acceptance bar: pool throughput vs single-process baseline
MIN_SCALEOUT = 1.5

#: open-loop scenario: requests, offered load vs measured capacity, and the
#: p99 SLO as a multiple of the unloaded single-request latency.
OPEN_LOOP_REQUESTS = 200
QUICK_OPEN_LOOP_REQUESTS = 80
OPEN_LOOP_UTILIZATION = 0.6
SLO_P99_MULTIPLE = 20.0
SLO_SLACK_MS = 50.0          # shared-runner scheduler noise allowance
OPEN_LOOP_SEED = 11

#: capacity-planner validation: the analytical prediction must land within
#: this relative error of the measurement (both directions) on hosts with
#: parallelism headroom.  See repro.capacity / docs/capacity.md.
PLAN_ERROR_BAND = 0.35

#: which way is *better* for each trajectory headline field — the
#: trajectory-relative regression gate is one-sided (getting faster passes).
TRAJECTORY_DIRECTIONS = {
    "baseline_samples_per_s": "higher",
    "best_pool_samples_per_s": "higher",
    "best_vs_baseline": "higher",
    "open_loop_p99_ms": "lower",
    "heap_bytes_per_batch": "lower",
    "tensor_sized_allocations": "lower",
}


def measure_baseline(compiled, samples: np.ndarray) -> float:
    """Samples/second of the single-process micro-batching predictor."""
    with BatchedPredictor(compiled, max_batch_size=8, max_wait=0.002,
                          autostart=False) as predictor:
        handles = [predictor.submit(sample) for sample in samples]
        start = time.perf_counter()
        predictor.start()
        for handle in handles:
            handle.result(timeout=120.0)
        elapsed = time.perf_counter() - start
    return len(samples) / elapsed


def measure_pool(spec, state, workers: int, samples: np.ndarray) -> float:
    """Samples/second of a started WorkerPool fed the same stream."""
    config = ServeConfig(workers=workers, startup_timeout=180.0,
                         queue_depth=max(len(samples) // workers, 8))
    with WorkerPool(spec, state=state, config=config) as pool:
        pool.predict(samples[0], timeout=120.0)      # warm every IPC path once
        start = time.perf_counter()
        futures = [pool.submit(sample) for sample in samples]
        for future in futures:
            future.result(timeout=120.0)
        elapsed = time.perf_counter() - start
    return len(samples) / elapsed


def measure_open_loop(spec, state, workers: int, samples: np.ndarray,
                      pool_rps: float, enforce: bool) -> dict:
    """Open-loop Poisson load at ~60% of measured capacity + p99 SLO verdict.

    The SLO is relative: ``SLO_P99_MULTIPLE`` x the pool's unloaded
    single-request latency (median of a few sequential predicts) plus a
    fixed CI-noise slack.  At 60% utilization an M/G/k queue's p99 sits a
    small multiple above the service time; a 20x blowout means the data
    plane regressed, not that the host was busy.
    """
    config = ServeConfig(workers=workers, startup_timeout=180.0,
                         cache_size=0)
    with WorkerPool(spec, state=state, config=config) as pool:
        unloaded = []
        for index in range(5):                       # warm + unloaded baseline
            clock = time.perf_counter()
            pool.predict(samples[index % len(samples)], timeout=120.0)
            unloaded.append((time.perf_counter() - clock) * 1000.0)
        unloaded_ms = sorted(unloaded)[len(unloaded) // 2]

        rate = max(OPEN_LOOP_UTILIZATION * pool_rps, 1.0)
        count = len(samples)
        schedule = poisson_schedule(rate_rps=rate, count=count,
                                    seed=OPEN_LOOP_SEED)

        def submit(index: int) -> int:
            pool.predict(samples[index % len(samples)], timeout=120.0)
            return 200

        report = run_open_loop(submit, schedule)
        stages = pool.stats()["latency"]

    limit_ms = SLO_P99_MULTIPLE * unloaded_ms
    verdict = check_percentile(report, 99, limit_ms, slack_ms=SLO_SLACK_MS)
    summary = report.summary()
    rows = [[f"p{q:g} (client)", f"{summary[f'p{q:g}_ms']:.2f} ms"]
            for q in (50, 95, 99)]
    rows += [[f"{stage} p99 (server)", f"{stages[stage]['p99_ms']:.2f} ms"]
             for stage in ("queue", "transport", "compute", "total")]
    rows.append(["SLO p99 limit", f"{limit_ms:.2f} ms (+{SLO_SLACK_MS:g} slack)"])
    rows.append(["SLO verdict", "PASS" if verdict["ok"] else
                 ("FAIL" if enforce else "MISS (report-only)")])
    gate = (f"gate: p99 <= {SLO_P99_MULTIPLE:g}x unloaded latency" if enforce
            else "report-only: no parallelism headroom on this host")
    print(format_table(
        ["Open-loop tail latency", "value"], rows,
        title=f"Open loop: {count} Poisson arrivals at {rate:,.0f} rps, "
              f"{workers} worker(s) — {gate}"))

    return {
        "workers": workers,
        "offered_rps": rate,
        "requests": count,
        "unloaded_ms": unloaded_ms,
        "client": summary,
        "stage_p99_ms": {stage: stages[stage]["p99_ms"]
                         for stage in ("queue", "transport", "compute", "total")},
        "slo": verdict,
        "enforced": enforce,
    }


def measure_allocations(spec, state, samples: np.ndarray) -> dict:
    """Warm-worker heap allocations per batch on the shm hot path.

    Runs the worker's exact data plane in-process — in-ring batch assembly
    (``ShmRing.assemble``), arena-backed execution with ``out=`` into a
    response-ring slot — under ``tracemalloc``, and reports any source line
    whose typical allocation reaches 1 KiB during one steady-state batch.
    Unlike the throughput gates this needs **no parallelism headroom**: it
    is in-process arithmetic, so it is asserted at any core count.
    """
    import queue
    import tracemalloc

    from repro.serve.shm import ShmRing
    from repro.serve.worker import ResponseArena, build_serving_predictor

    predictor = build_serving_predictor(spec.to_dict(), state,
                                        max_batch_size=8, max_wait=0.0)
    compiled = predictor.compiled
    responses = queue.SimpleQueue()
    requests = np.ascontiguousarray(samples[:8])
    with ShmRing(slots=4, slot_bytes=1 << 20) as request_ring, \
            ShmRing(slots=4, slot_bytes=1 << 20) as response_ring:
        arena = ResponseArena(response_ring)

        def one_batch() -> None:
            slot, seq = request_ring.lease()
            view, frame = request_ring.assemble(
                slot, seq, requests.shape, requests.dtype)
            for index in range(len(requests)):
                np.copyto(view[index], requests[index])
            batch = request_ring.read(frame)
            arena.serve(compiled, batch, False, 0,
                        list(range(len(batch))), 0.0, responses)
            request_ring.release(slot, seq)
            _, _, _, (via, out_frame), _ = responses.get()
            assert via == "shm", "response fell off the ring path"
            response_ring.release(out_frame.slot, out_frame.seq)

        one_batch()                # cold: discovers output-row geometry
        one_batch()                # warm-up
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        one_batch()                # the measured steady-state batch
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
    predictor.close()

    diffs = [stat for stat in after.compare_to(before, "lineno")
             if stat.size_diff > 0]
    offenders = [stat for stat in diffs
                 if stat.count_diff > 0
                 and stat.size_diff / stat.count_diff >= 1024]
    total_bytes = sum(stat.size_diff for stat in diffs)
    rows = [["batch size", f"{len(requests)}"],
            ["heap bytes per warm batch", f"{total_bytes:,d} "
             "(interpreter noise: view headers, tuples)"],
            ["tensor-sized allocations (>= 1 KiB)", f"{len(offenders)}"],
            ["verdict", "PASS" if not offenders else "FAIL"]]
    print(format_table(
        ["Warm-worker allocations", "value"], rows,
        title="Allocation-free hot path (gated at any core count)"))
    return {
        "batch_size": len(requests),
        "heap_bytes_per_batch": total_bytes,
        "tensor_sized_allocations": len(offenders),
        "offending_lines": [f"{stat.traceback[0].filename}:"
                            f"{stat.traceback[0].lineno}"
                            for stat in offenders],
    }


def validate_plan(experiment, sweep: list, open_loop: dict, enforce: bool) -> dict:
    """Capacity-planner validation: prediction vs measurement, same host.

    Asks :meth:`Experiment.plan` (measured kernel rates + M/M/c queueing —
    no load test) for the two numbers this benchmark just *measured*:

    * sustained pool throughput at the best sweep point, against the plan's
      full-batch ceiling for that worker count, and
    * client p99 at the open-loop operating point (offered rate, worker
      count), against the plan's Erlang-C p99.

    On hosts with parallelism headroom both predictions must land within
    ``PLAN_ERROR_BAND`` (±35 %) of the measurement; below that the workers
    time-slice one core, the model's independent-servers assumption does
    not hold, and the comparison is printed report-only.
    """
    best = max(sweep, key=lambda entry: entry["samples_per_s"])
    throughput_plan = experiment.plan(open_loop["offered_rps"],
                                      workers=best["workers"])
    open_plan = experiment.plan(open_loop["offered_rps"],
                                workers=open_loop["workers"])

    checks = []
    measured_tp = best["samples_per_s"]
    predicted_tp = throughput_plan.max_throughput_rps
    checks.append(("throughput", predicted_tp, measured_tp,
                   abs(predicted_tp - measured_tp) / measured_tp))
    measured_p99 = open_loop["client"]["p99_ms"]
    predicted_p99 = open_plan.p99_ms
    checks.append(("open-loop p99", predicted_p99, measured_p99,
                   abs(predicted_p99 - measured_p99) / measured_p99))

    rows = [[name, f"{predicted:,.2f}", f"{measured:,.2f}", f"{error:.1%}",
             "PASS" if error <= PLAN_ERROR_BAND else
             ("FAIL" if enforce else "MISS (report-only)")]
            for name, predicted, measured, error in checks]
    gate = (f"gate: prediction within ±{PLAN_ERROR_BAND:.0%} of measurement"
            if enforce else "report-only: no parallelism headroom on this host")
    print(format_table(
        ["Metric", "predicted", "measured", "error", "verdict"], rows,
        title=f"Capacity planner vs measurement — {gate}"))

    result = {
        "error_band": PLAN_ERROR_BAND,
        "enforced": enforce,
        "throughput": {"predicted_rps": predicted_tp, "measured_rps": measured_tp,
                       "rel_error": checks[0][3], "workers": best["workers"]},
        "p99": {"predicted_ms": predicted_p99, "measured_ms": measured_p99,
                "rel_error": checks[1][3], "workers": open_loop["workers"],
                "offered_rps": open_loop["offered_rps"]},
    }
    return result


def check_trajectory_gate(record: dict) -> list:
    """Trajectory-relative regression check: this run vs its own history.

    Tolerance bands come from the history's own dispersion
    (``common.trajectory_band``), restricted to records from comparable
    hosts — no fixed absolute thresholds.  With fewer than
    ``common.MIN_TRAJECTORY_HISTORY`` comparable records the check passes
    with a note (fresh checkouts have no history: ``benchmarks/results/``
    is not committed).  Must run *before* the current record is appended,
    so the history is strictly past runs.  The caller decides whether
    regressions fail the run (``main`` gates them with the other
    headroom-dependent assertions).
    """
    findings = check_against_trajectory("serving_scaleout", record,
                                        TRAJECTORY_DIRECTIONS)
    print("\n" + format_trajectory_findings("serving_scaleout", findings))
    return findings


def compare_with_previous(record: dict) -> None:
    """Print this run against the previous trajectory entry, if any."""
    history = load_trajectory("serving_scaleout")
    if not history:
        print("\ntrajectory: first recorded run")
        return
    previous = history[-1]
    fields = (("baseline_samples_per_s", "samples/s"),
              ("best_pool_samples_per_s", "samples/s"),
              ("open_loop_p99_ms", "ms"),
              ("heap_bytes_per_batch", "B"))
    lines = []
    for field, unit in fields:
        now, then = record.get(field), previous.get(field)
        if now is None or then is None:
            continue
        delta = now - then
        lines.append(f"  {field}: {now:,.1f} {unit} "
                     f"({'+' if delta >= 0 else ''}{delta:,.1f} vs last run)")
    print("\ntrajectory vs previous run:")
    print("\n".join(lines) if lines else "  (no comparable fields)")


def main() -> None:
    quick = quick_mode()
    num_samples = QUICK_SAMPLES if quick else SAMPLES
    worker_counts = QUICK_WORKER_COUNTS if quick else WORKER_COUNTS
    cores = os.cpu_count() or 1
    # The gate needs real parallelism headroom: two compiled-model workers
    # PLUS the parent's submit loop and dispatcher thread.  On exactly two
    # cores the parent steals time from the workers it is measuring, so the
    # assertion arms at >= 3 cores (ubuntu-latest CI runners have 4).
    enforce = cores >= 3

    fresh_seed()
    experiment = Experiment(get_preset("smoke"))
    model = experiment.build()
    model.eval()
    state = model.state_dict()
    compiled = experiment.compile_inference()

    rng = np.random.default_rng(0)
    shape = experiment.spec.data.input_shape
    samples = rng.standard_normal((num_samples,) + shape).astype(np.float32)

    baseline_rps = measure_baseline(compiled, samples)
    rows = [["single process (baseline)", f"{baseline_rps:,.0f}", "1.00x"]]
    sweep = []
    for workers in worker_counts:
        pool_rps = measure_pool(experiment.spec, state, workers, samples)
        ratio = pool_rps / baseline_rps
        rows.append([f"pool, {workers} worker(s)", f"{pool_rps:,.0f}", f"{ratio:.2f}x"])
        sweep.append({"workers": workers, "samples_per_s": pool_rps,
                      "vs_baseline": ratio})

    note = (f"gate: >= {MIN_SCALEOUT}x at 2+ workers" if enforce else
            f"{cores} cpu(s), no parallelism headroom: ratio reported, not asserted")
    print(format_table(
        ["Configuration", "samples / s", "vs baseline"], rows,
        title=f"Scale-out serving throughput ({num_samples} samples, {cores} cpus) — {note}",
    ))

    # Open-loop tail-latency scenario on the largest pool from the sweep.
    open_workers = max(worker_counts)
    open_rps = next(entry["samples_per_s"] for entry in sweep
                    if entry["workers"] == open_workers)
    open_count = QUICK_OPEN_LOOP_REQUESTS if quick else OPEN_LOOP_REQUESTS
    open_loop = measure_open_loop(
        experiment.spec, state, open_workers,
        samples[:open_count] if open_count <= len(samples) else
        np.concatenate([samples] * (1 + open_count // len(samples)))[:open_count],
        open_rps, enforce)

    allocations = measure_allocations(experiment.spec, state, samples)
    plan_validation = validate_plan(experiment, sweep, open_loop, enforce)

    save_experiment("serving_scaleout", {
        "quick_mode": quick,
        "cpus": cores,
        "samples": num_samples,
        "baseline_samples_per_s": baseline_rps,
        "scaleout_enforced": enforce,
        "min_scaleout": MIN_SCALEOUT,
        "pool_sweep": sweep,
        "open_loop": open_loop,
        "allocations": allocations,
        "plan_validation": plan_validation,
    })

    headline = {
        "quick_mode": quick,
        "cpus": cores,
        "baseline_samples_per_s": baseline_rps,
        "best_pool_samples_per_s": max(entry["samples_per_s"]
                                       for entry in sweep),
        "best_vs_baseline": max(entry["vs_baseline"] for entry in sweep),
        "open_loop_p99_ms": open_loop["client"]["p99_ms"],
        "heap_bytes_per_batch": allocations["heap_bytes_per_batch"],
        "tensor_sized_allocations": allocations["tensor_sized_allocations"],
        "plan_throughput_rel_err": plan_validation["throughput"]["rel_error"],
        "plan_p99_rel_err": plan_validation["p99"]["rel_error"],
    }
    trajectory_findings = check_trajectory_gate(headline)   # vs past runs only
    compare_with_previous(headline)
    append_trajectory("serving_scaleout", headline)

    # Allocation gate: in-process, so it holds regardless of core count.
    assert allocations["tensor_sized_allocations"] == 0, (
        "allocation regression: tensor-sized heap allocations on the warm "
        f"shm hot path at {allocations['offending_lines']}")
    print("\nallocation gate passed: 0 tensor-sized allocations per warm batch")

    if enforce:
        slo = open_loop["slo"]
        assert slo["ok"], (
            f"tail-latency regression: open-loop p99 {slo['value_ms']}ms "
            f"exceeds the SLO {slo['limit_ms']}ms (+{slo['slack_ms']}ms slack) "
            f"at {open_loop['offered_rps']:.0f} rps offered load")
        print(f"\np99 SLO gate passed: {slo['value_ms']}ms <= "
              f"{slo['limit_ms']:.1f}ms (+{slo['slack_ms']:g}ms slack)")

    if enforce:
        multi = [entry for entry in sweep if entry["workers"] >= 2]
        assert multi, "sweep never reached 2 workers; cannot evaluate the gate"
        best = max(entry["vs_baseline"] for entry in multi)
        assert best >= MIN_SCALEOUT, (
            f"scale-out regression: best multi-worker throughput is only "
            f"{best:.2f}x the single-process baseline (gate: {MIN_SCALEOUT}x)")
        print(f"\nscale-out gate passed: {best:.2f}x >= {MIN_SCALEOUT}x")
    else:
        print(f"\nscale-out gate skipped: {cores} cpu(s) leave no headroom for "
              "workers + dispatcher; see the vs-baseline column for measured ratios")

    if enforce:
        for name, side in (("throughput", plan_validation["throughput"]),
                           ("open-loop p99", plan_validation["p99"])):
            assert side["rel_error"] <= PLAN_ERROR_BAND, (
                f"capacity-plan drift: predicted {name} is "
                f"{side['rel_error']:.1%} from the measurement "
                f"(band: ±{PLAN_ERROR_BAND:.0%}; see repro.capacity)")
        print(f"capacity-plan gate passed: predictions within "
              f"±{PLAN_ERROR_BAND:.0%} of measurement")

        regressions = [f for f in trajectory_findings
                       if f["status"] == "regression"]
        assert not regressions, (
            "trajectory regression: "
            + "; ".join(f"{f['field']} = {f['value']:.4g} vs history median "
                        f"{f['median']:.4g} ± {f['tolerance']:.4g}"
                        for f in regressions))
        print("trajectory gate passed: no field outside its history band")


if __name__ == "__main__":
    main()
