"""Tests of the classification / GAN / detection training loops."""

import numpy as np
import pytest

from repro.builder import QuadraticModelConfig
from repro.data import TensorDataset
from repro.data.synthetic import (
    SyntheticDetectionDataset,
    SyntheticGenerationDataset,
    SyntheticImageClassification,
    circle_dataset,
    xor_dataset,
)
from repro.models import QuadraticMLP, SmallConvNet, build_ssd, sngan_pair
from repro.training import (
    evaluate_classifier,
    evaluate_detector,
    generate_images,
    load_pretrained_backbone,
    pretrain_backbone,
    train_classifier,
    train_detector,
    train_sngan,
)
from repro.training.pretrain import BackbonePretrainNet
from repro.utils import seed_everything


class TestClassificationTraining:
    def test_loss_decreases_on_toy_task(self):
        x, y = circle_dataset(256, seed=0)
        model = QuadraticMLP([2, 12, 2])
        history = train_classifier(model, TensorDataset(x, y), epochs=8, batch_size=64, lr=0.05)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.final_train_accuracy > 0.8

    def test_history_lengths_match_epochs(self):
        x, y = xor_dataset(128)
        model = QuadraticMLP([2, 8, 2])
        history = train_classifier(model, TensorDataset(x, y), epochs=3, batch_size=32)
        assert len(history.train_loss) == 3
        assert len(history.seconds_per_batch) == 3

    def test_test_accuracy_tracked(self):
        train = SyntheticImageClassification(num_samples=96, num_classes=4, image_size=16)
        test = SyntheticImageClassification(num_samples=48, num_classes=4, image_size=16,
                                            split_seed=1)
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(width_multiplier=0.5))
        history = train_classifier(model, train, test, epochs=2, batch_size=32, lr=0.05)
        assert len(history.test_accuracy) == 2
        assert 0.0 <= history.best_test_accuracy <= 1.0

    def test_max_batches_per_epoch_caps_work(self):
        train = SyntheticImageClassification(num_samples=256, num_classes=4, image_size=16)
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(width_multiplier=0.5))
        history = train_classifier(model, train, epochs=1, batch_size=16,
                                   max_batches_per_epoch=2)
        assert len(history.train_loss) == 1

    def test_gradient_probe_layers_recorded(self):
        x, y = xor_dataset(128)
        model = QuadraticMLP([2, 8, 2])
        history = train_classifier(model, TensorDataset(x, y), epochs=2, batch_size=32,
                                   grad_probe_layers=["0."])
        assert history.gradient_norms
        assert all(len(v) == 2 for v in history.gradient_norms.values())

    def test_evaluate_classifier_range(self):
        data = SyntheticImageClassification(num_samples=32, num_classes=4, image_size=16)
        model = SmallConvNet(num_classes=4, image_size=16,
                             config=QuadraticModelConfig(width_multiplier=0.5))
        from repro.data import DataLoader

        acc = evaluate_classifier(model, DataLoader(data, batch_size=16))
        assert 0.0 <= acc <= 1.0

    def test_diverged_helper(self):
        from repro.training.classification import TrainingHistory

        history = TrainingHistory(train_accuracy=[0.1, 0.1])
        assert history.diverged(0.11)
        assert not history.diverged(0.05)

    def test_deterministic_given_seed(self):
        x, y = xor_dataset(128)
        seed_everything(3)
        m1 = QuadraticMLP([2, 8, 2])
        h1 = train_classifier(m1, TensorDataset(x, y), epochs=2, batch_size=32, seed=1)
        seed_everything(3)
        m2 = QuadraticMLP([2, 8, 2])
        h2 = train_classifier(m2, TensorDataset(x, y), epochs=2, batch_size=32, seed=1)
        assert np.allclose(h1.train_loss, h2.train_loss, atol=1e-6)

    def test_history_round_trips_through_dicts(self):
        import json

        from repro.training.classification import TrainingHistory

        x, y = xor_dataset(128)
        model = QuadraticMLP([2, 8, 2])
        history = train_classifier(model, TensorDataset(x, y), TensorDataset(x, y),
                                   epochs=2, batch_size=32, grad_probe_layers=["0."])
        restored = TrainingHistory.from_dict(json.loads(json.dumps(history.to_dict())))
        assert restored.train_loss == history.train_loss
        assert restored.train_accuracy == history.train_accuracy
        assert restored.test_accuracy == history.test_accuracy
        assert restored.gradient_norms == history.gradient_norms
        assert restored.final_test_accuracy == history.final_test_accuracy

    def test_history_from_dict_tolerates_missing_keys(self):
        from repro.training.classification import TrainingHistory

        restored = TrainingHistory.from_dict({"train_loss": [1.0, 0.5]})
        assert restored.train_loss == [1.0, 0.5]
        assert restored.test_accuracy == []


class TestGANTraining:
    def test_losses_recorded_and_finite(self):
        dataset = SyntheticGenerationDataset(num_samples=64, image_size=16)
        gen, disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        history = train_sngan(gen, disc, dataset, steps=4, batch_size=8)
        assert len(history.generator_loss) == 4
        assert np.isfinite(history.final_generator_loss)
        assert np.isfinite(history.final_discriminator_loss)

    def test_generate_images_shape_and_count(self):
        gen, _ = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        images = generate_images(gen, num_images=10, batch_size=4)
        assert images.shape == (10, 3, 16, 16)

    def test_discriminator_steps_parameter(self):
        dataset = SyntheticGenerationDataset(num_samples=32, image_size=16)
        gen, disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        history = train_sngan(gen, disc, dataset, steps=2, batch_size=8, discriminator_steps=2)
        assert len(history.discriminator_loss) == 2

    def test_quadratic_generator_trains(self):
        dataset = SyntheticGenerationDataset(num_samples=32, image_size=16)
        gen, disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16, neuron_type="OURS")
        history = train_sngan(gen, disc, dataset, steps=3, batch_size=8)
        assert np.isfinite(history.final_generator_loss)


class TestDetectionTraining:
    def _dataset(self, n=24):
        return SyntheticDetectionDataset(num_samples=n, image_size=64, num_classes=3, seed=0)

    def test_loss_decreases(self):
        model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        history = train_detector(model, self._dataset(32), epochs=3, batch_size=8, lr=5e-3)
        assert history.loss[-1] < history.loss[0]

    def test_history_length(self):
        model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        history = train_detector(model, self._dataset(16), epochs=2, batch_size=8,
                                 max_batches_per_epoch=1)
        assert len(history.loss) == 2

    def test_evaluate_detector_output(self):
        model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        result = evaluate_detector(model, self._dataset(8), batch_size=4,
                                   score_threshold=0.05)
        assert 0.0 <= result["map"] <= 1.0
        assert len(result["per_class_ap"]) == 3

    def test_pretrain_and_transfer(self):
        config = QuadraticModelConfig(neuron_type="first_order", width_multiplier=0.25)
        classification_data = SyntheticImageClassification(num_samples=64, num_classes=5,
                                                           image_size=32)
        state, history = pretrain_backbone(config, classification_data, epochs=1,
                                           batch_size=16, max_batches_per_epoch=2)
        assert len(history.train_loss) == 1
        detector = build_ssd(num_classes=3, image_size=64, neuron_type="first_order",
                             width_multiplier=0.25)
        before = next(p for _, p in detector.backbone.named_parameters()).data.copy()
        copied = load_pretrained_backbone(detector, state)
        after = next(p for _, p in detector.backbone.named_parameters()).data
        assert copied > 0
        assert not np.allclose(before, after)

    def test_pretrain_net_forward(self):
        config = QuadraticModelConfig(neuron_type="OURS", width_multiplier=0.25)
        net = BackbonePretrainNet(num_classes=7, config=config)
        from repro.autodiff import randn

        assert net(randn(2, 3, 32, 32)).shape == (2, 7)
