"""Unit tests of the Trainer/callback machinery itself."""

from __future__ import annotations

import contextlib
import os
import warnings

import pytest


@contextlib.contextmanager
def warnings_ignored():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield

from repro.builder import QuadraticModelConfig
from repro.data.synthetic import SyntheticImageClassification
from repro.engine import (
    Callback,
    CallbackList,
    CheckpointCallback,
    ClassificationAdapter,
    EarlyStopping,
    LambdaCallback,
    ProgressCallback,
    Trainer,
)
from repro.models import SmallConvNet


def _adapter(epochs=2, test=True, **kwargs):
    train = SyntheticImageClassification(num_samples=32, num_classes=3, image_size=8)
    test_set = (SyntheticImageClassification(num_samples=16, num_classes=3, image_size=8,
                                             split_seed=1) if test else None)
    model = SmallConvNet(num_classes=3, image_size=8,
                         config=QuadraticModelConfig(width_multiplier=0.25))
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("max_batches_per_epoch", 2)
    return ClassificationAdapter(model, train, test_set, epochs=epochs, **kwargs)


class RecordingCallback(Callback):
    def __init__(self):
        self.events = []

    def on_train_begin(self, trainer):
        self.events.append("train_begin")

    def on_train_end(self, trainer, history):
        self.events.append("train_end")

    def on_epoch_begin(self, trainer, epoch):
        self.events.append(f"epoch_begin:{epoch}")

    def on_epoch_end(self, trainer, epoch, metrics):
        self.events.append(f"epoch_end:{epoch}")

    def on_batch_begin(self, trainer, epoch, batch_index):
        self.events.append(f"batch_begin:{epoch}.{batch_index}")

    def on_batch_end(self, trainer, epoch, batch_index, metrics):
        self.events.append(f"batch_end:{epoch}.{batch_index}")

    def on_eval(self, trainer, epoch, metrics):
        self.events.append(f"eval:{epoch}")
        self.last_eval_metrics = metrics

    def on_checkpoint(self, trainer, epoch, path):
        self.events.append(f"checkpoint:{epoch}")


class TestCallbackHooks:
    def test_hooks_fire_in_order(self):
        recorder = RecordingCallback()
        Trainer(_adapter(epochs=2), callbacks=[recorder]).fit()
        assert recorder.events == [
            "train_begin",
            "epoch_begin:0",
            "batch_begin:0.0", "batch_end:0.0",
            "batch_begin:0.1", "batch_end:0.1",
            "eval:0", "epoch_end:0",
            "epoch_begin:1",
            "batch_begin:1.0", "batch_end:1.0",
            "batch_begin:1.1", "batch_end:1.1",
            "eval:1", "epoch_end:1",
            "train_end",
        ]

    def test_eval_metrics_include_test_accuracy(self):
        recorder = RecordingCallback()
        Trainer(_adapter(epochs=1), callbacks=[recorder]).fit()
        assert {"train_loss", "train_accuracy", "test_accuracy"} <= set(
            recorder.last_eval_metrics)

    def test_non_callback_rejected(self):
        with pytest.raises(TypeError, match="Callback"):
            CallbackList([object()])

    def test_lambda_callback_rejects_unknown_hooks(self):
        with pytest.raises(ValueError, match="on_teardown"):
            LambdaCallback(on_teardown=lambda trainer: None)

    def test_lambda_callback_hooks_fire(self):
        seen = []
        cb = LambdaCallback(on_epoch_end=lambda t, e, m: seen.append(e))
        Trainer(_adapter(epochs=2), callbacks=[cb]).fit()
        assert seen == [0, 1]

    def test_progress_callback_prints_metrics(self):
        lines = []
        Trainer(_adapter(epochs=1), callbacks=[ProgressCallback(lines.append)]).fit()
        assert len(lines) == 1
        assert "epoch 1/1" in lines[0] and "train_loss=" in lines[0]


class TestStopping:
    def test_should_stop_ends_after_current_epoch(self):
        cb = LambdaCallback(
            on_epoch_end=lambda t, e, m: setattr(t, "should_stop", True))
        trainer = Trainer(_adapter(epochs=5), callbacks=[cb])
        history = trainer.fit()
        assert len(history.train_loss) == 1
        assert trainer.state.interrupted

    def test_stop_after_epoch(self):
        trainer = Trainer(_adapter(epochs=4))
        history = trainer.fit(stop_after_epoch=2)
        assert len(history.train_loss) == 2
        assert trainer.state.interrupted

    def test_stop_after_final_epoch_is_not_an_interrupt(self):
        trainer = Trainer(_adapter(epochs=2))
        history = trainer.fit(stop_after_epoch=2)
        assert len(history.train_loss) == 2
        assert not trainer.state.interrupted

    def test_early_stopping_on_stale_metric(self):
        # train_loss "improves" only when it drops by > 10 — i.e. never —
        # so patience=2 stops the run after epoch 3.
        stopper = EarlyStopping(monitor="train_loss", mode="min", patience=2,
                                min_delta=10.0)
        trainer = Trainer(_adapter(epochs=10), callbacks=[stopper])
        history = trainer.fit()
        assert len(history.train_loss) == 3
        assert trainer.state.interrupted

    def test_early_stopping_validates_arguments(self):
        with pytest.raises(ValueError, match="mode"):
            EarlyStopping(mode="sideways")
        with pytest.raises(ValueError, match="patience"):
            EarlyStopping(patience=0)


class TestCheckpointCallback:
    def test_every_and_final_epoch(self, tmp_path):
        recorder = RecordingCallback()
        adapter = _adapter(epochs=3)
        trainer = Trainer(adapter, callbacks=[
            recorder, CheckpointCallback(str(tmp_path), every=2)])
        trainer.fit()
        files = sorted(f for f in os.listdir(tmp_path) if f.startswith("epoch"))
        # Epoch 2 matches `every`; the final epoch is always checkpointed.
        assert files == ["epoch_002.npz", "epoch_003.npz"]
        assert "checkpoint:2" in recorder.events and "checkpoint:3" in recorder.events

    def test_keep_prunes_old_checkpoints(self, tmp_path):
        trainer = Trainer(_adapter(epochs=3),
                          callbacks=[CheckpointCallback(str(tmp_path), keep=1)])
        trainer.fit()
        files = sorted(f for f in os.listdir(tmp_path) if f.startswith("epoch"))
        assert files == ["epoch_003.npz"]
        assert (tmp_path / "latest.npz").exists()

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            CheckpointCallback(str(tmp_path), every=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointCallback(str(tmp_path), keep=0)

    def test_resume_rejects_wrong_task(self, tmp_path):
        trainer = Trainer(_adapter(epochs=1), checkpoint_dir=str(tmp_path))
        trainer.fit()
        fresh = Trainer(_adapter(epochs=1))
        fresh.adapter.task = "gan"
        with pytest.raises(ValueError, match="classification"):
            fresh.fit(resume_from=str(tmp_path / "latest.npz"))


class TestDivergence:
    def test_non_finite_loss_stops_mid_epoch(self):
        import numpy as np

        # An absurd learning rate overflows the logits within the first epoch.
        adapter = _adapter(epochs=5, lr=1e30)
        trainer = Trainer(adapter)
        with np.errstate(all="ignore"), warnings_ignored():
            history = trainer.fit()
        assert trainer.state.diverged
        assert history.train_loss[-1] == float("inf")
        # Divergence records chance-level accuracy, legacy-style.
        assert history.train_accuracy[-1] == pytest.approx(1.0 / 3.0)
