"""Micro-batching predictor over the compiled inference path.

Serving traffic arrives one sample at a time, but the compiled forward (like
any BLAS-backed forward) is far more efficient on small batches: the im2col
lowering, the projection matmuls and the fused combines all amortise their
per-call overhead across rows.  :class:`BatchedPredictor` bridges the two —
callers submit single samples, a background worker coalesces whatever is
queued within ``max_wait`` seconds (up to ``max_batch_size``) into one
compiled forward, and each caller gets its own row of the result.

Every compiled layer is row-independent under running-statistics batch norm,
so micro-batching never changes a sample's prediction (beyond float
associativity inside BLAS, well below 1e-5).
"""

from __future__ import annotations

import collections
import queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Union

import numpy as np

from ..nn.module import Module
from .buffers import BufferPool
from .compiler import CompiledModel, compile_model

#: Sentinel instructing the worker thread to drain and exit.
_STOP = object()


@dataclass
class PredictorStats:
    """Counters describing how well micro-batching amortised the forwards."""

    requests: int = 0
    batches: int = 0
    batched_samples: int = 0
    max_batch_size_seen: int = 0
    #: sliding window of recent batch sizes (bounded so long-running serving
    #: does not grow memory; aggregates above cover the full history).
    batch_sizes: Deque[int] = field(
        default_factory=lambda: collections.deque(maxlen=1024))

    @property
    def mean_batch_size(self) -> float:
        return self.batched_samples / self.batches if self.batches else 0.0

    def record(self, batch_size: int) -> None:
        self.batches += 1
        self.batched_samples += batch_size
        self.max_batch_size_seen = max(self.max_batch_size_seen, batch_size)
        self.batch_sizes.append(batch_size)


class PendingPrediction:
    """Future-style handle for one submitted sample."""

    __slots__ = ("sample", "_event", "_value", "_error")

    def __init__(self, sample: np.ndarray) -> None:
        self.sample = sample
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Block until this sample's prediction is available."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"prediction not ready after {timeout}s (predictor closed or stalled?)")
        if self._error is not None:
            raise self._error
        return self._value


class BatchedPredictor:
    """Serve single samples through micro-batched compiled forwards.

    Parameters
    ----------
    model : Module or CompiledModel
        A model to compile (modules are compiled on construction) or an
        already-compiled one.
    max_batch_size : int
        Upper bound on samples coalesced into one forward.
    max_wait : float
        Seconds the worker waits for more samples after the first arrives.
        ``0`` batches only what is already queued (lowest latency).
    backend : str, Backend or None
        Compute backend for the compiled forward (see
        :mod:`repro.backends`); ignored when ``model`` is already compiled.
    autostart : bool
        Start the worker thread on the first :meth:`submit`.  Disable to
        enqueue work first and start explicitly (deterministic batching, used
        by the tests and benchmarks).

    Example
    -------
    >>> predictor = BatchedPredictor(model, max_batch_size=8)
    >>> logits = predictor.predict(sample)          # blocking single call
    >>> handles = [predictor.submit(s) for s in samples]   # async fan-in
    >>> outputs = [h.result() for h in handles]
    >>> predictor.close()
    """

    def __init__(self, model: Union[Module, CompiledModel], max_batch_size: int = 8,
                 max_wait: float = 0.002, pool: Optional[BufferPool] = None,
                 backend=None, autostart: bool = True) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.compiled = (model if isinstance(model, CompiledModel)
                         else compile_model(model, pool=pool, backend=backend))
        if max_batch_size > 1 and self.compiled.batch_dependent_modules:
            warnings.warn(
                "this model normalizes with batch statistics (BatchNorm without "
                "running stats); micro-batching makes each prediction depend on "
                "its batch mates — use max_batch_size=1 for sample-independent "
                "outputs", RuntimeWarning, stacklevel=2)
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)
        self.stats = PredictorStats()
        self._autostart = autostart
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False

    # ----------------------------------------------------------- async serving
    def submit(self, sample: np.ndarray) -> PendingPrediction:
        """Enqueue one sample (without its batch axis); returns a handle."""
        pending = PendingPrediction(np.asarray(sample, dtype=np.float32))
        # The closed check and the enqueue share the lock with close(), so a
        # sample can never slip in behind the stop sentinel and hang.
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "cannot submit: this predictor has been shut down; create a "
                    "new BatchedPredictor to serve more samples")
            self.stats.requests += 1
            self._queue.put(pending)
        if self._autostart:
            self.start()
        return pending

    def predict(self, sample: np.ndarray, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Blocking convenience wrapper: submit one sample, wait for its row."""
        return self.submit(sample).result(timeout=timeout)

    def start(self) -> "BatchedPredictor":
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "cannot start: this predictor has been shut down; create a "
                    "new BatchedPredictor to serve more samples")
            if self._worker is None or not self._worker.is_alive():
                # Always a daemon: an abandoned predictor (close() never
                # called) must not keep the interpreter alive at exit.
                self._worker = threading.Thread(target=self._serve, daemon=True,
                                                name="repro-batched-predictor")
                self._worker.start()
        return self

    # ------------------------------------------------------ synchronous serving
    def predict_batch(self, samples: np.ndarray) -> np.ndarray:
        """Run a whole array of samples directly, chunked by ``max_batch_size``.

        Bypasses the queue and worker thread — use for offline evaluation
        where all inputs are already in hand.
        """
        samples = np.asarray(samples, dtype=np.float32)
        outputs = []
        for begin in range(0, len(samples), self.max_batch_size):
            chunk = samples[begin:begin + self.max_batch_size]
            outputs.append(self.compiled(chunk))
            self.stats.requests += len(chunk)
            self.stats.record(len(chunk))
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ worker
    def _serve(self) -> None:
        while True:
            try:
                # A bounded wait (rather than a bare get()) so the worker can
                # notice a close() whose stop sentinel was lost — e.g. drained
                # by a timed-out close while a slow batch was in flight.
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    break
                continue
            if item is _STOP:
                break
            batch = [item]
            deadline = time.perf_counter() + self.max_wait
            stop_after_batch = False
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        extra = self._queue.get(timeout=remaining)
                    else:
                        extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stop_after_batch = True
                    break
                batch.append(extra)
            self._run_batch(batch)
            if stop_after_batch:
                break

    def _run_batch(self, batch: List[PendingPrediction]) -> None:
        try:
            stacked = np.stack([pending.sample for pending in batch])
            # Like the trainers, serving tolerates non-finite intermediates;
            # errstate is thread-local so the worker sets its own.
            with np.errstate(all="ignore"):
                outputs = self.compiled(stacked)
            self.stats.record(len(batch))
            for row, pending in enumerate(batch):
                pending._resolve(outputs[row])
        except BaseException as error:  # propagate to every waiting caller
            for pending in batch:
                pending._reject(error)

    # ---------------------------------------------------------------- lifecycle
    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker after it drains the queue (idempotent).

        Samples the worker never got to — it was never started, or it timed
        out — are rejected so no caller blocks forever on a dead handle.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
            self._queue.put(_STOP)
        if worker is not None and worker.is_alive():
            worker.join(timeout)
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _STOP:
                leftover._reject(RuntimeError(
                    "predictor closed before this sample was served"))

    #: ``shutdown()`` is the serving-facing name for :meth:`close` — the
    #: worker-pool integration (``repro.serve``) standardised on it.  Both
    #: are idempotent and safe to call from any thread.
    shutdown = close

    def __enter__(self) -> "BatchedPredictor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"BatchedPredictor(max_batch_size={self.max_batch_size}, "
                f"max_wait={self.max_wait}, {self.compiled!r})")
