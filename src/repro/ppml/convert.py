"""Conversion of ReLU networks into PPML-friendly polynomial networks.

Three strategies are provided, in increasing order of how much of the paper's
machinery they use:

``"square"``
    Keep the model structure and swap every ReLU for a
    :class:`~repro.nn.Square` activation (the CryptoNets recipe).
``"quadratic"``
    Use the :class:`~repro.builder.AutoBuilder` to replace first-order
    convolutions with the paper's quadratic layers while keeping the ReLUs —
    useful when the model stays on plaintext but a later PPML deployment is
    planned.
``"quadratic_no_relu"``
    Replace convolutions with quadratic layers *and* drop the ReLUs entirely
    (paper design insight 3: shallow QDNNs do not need activation functions)
    so the converted model contains no garbled-circuit operations at all.

Every strategy returns a :class:`PPMLConversionReport`, and
:func:`ppml_savings` quantifies the before/after online cost under a chosen
protocol.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Type, Union

from ..builder.auto_builder import _quadratize_module_impl
from ..nn.layers.activations import Identity, LeakyReLU, ReLU, Square
from ..nn.layers.pooling import AvgPool2d, MaxPool2d
from ..nn.module import Module
from .cost import CostReport, analyse_model
from .protocols import Protocol, resolve_protocol
from .trace import ProtocolTrace

#: Activation classes treated as "comparison-based" and therefore expensive
#: under hybrid PPML protocols.
RELU_LIKE: Tuple[Type[Module], ...] = (ReLU, LeakyReLU)


def count_relu_modules(model: Module) -> int:
    """Number of ReLU-like activation modules in the model."""
    return sum(1 for _, module in model.named_modules() if isinstance(module, RELU_LIKE))


def replace_activations(model: Module, factory: Callable[[], Module],
                        kinds: Tuple[Type[Module], ...] = RELU_LIKE,
                        skip_names: Sequence[str] = ()) -> int:
    """Replace every activation of the given kinds in place.

    Parameters
    ----------
    model : Module
        Modified in place.
    factory : callable
        Zero-argument callable producing the replacement module (a fresh
        instance per replacement so modules are not shared).
    kinds : tuple of Module subclasses
        Which activation classes to replace.
    skip_names : sequence of str
        Dotted-name substrings to leave untouched.

    Returns
    -------
    int
        Number of modules replaced.
    """
    replaced = 0
    for name, module in list(model.named_modules()):
        for child_name, child in list(module._modules.items()):
            full_name = f"{name}.{child_name}" if name else child_name
            if any(skip in full_name for skip in skip_names):
                continue
            if isinstance(child, kinds):
                module.register_module(child_name, factory())
                replaced += 1
    return replaced


def replace_relu_with_square(model: Module, scale: float = 1.0, linear: float = 0.0,
                             skip_names: Sequence[str] = ()) -> int:
    """Swap every ReLU-like activation for a :class:`~repro.nn.Square` in place."""
    return replace_activations(model, lambda: Square(scale=scale, linear=linear),
                               skip_names=skip_names)


def remove_activations(model: Module, skip_names: Sequence[str] = ()) -> int:
    """Replace every ReLU-like activation with an identity mapping in place."""
    return replace_activations(model, Identity, skip_names=skip_names)


def replace_maxpool_with_avgpool(model: Module, skip_names: Sequence[str] = ()) -> int:
    """Swap max pooling for average pooling in place (the CryptoNets recipe).

    Max pooling needs one comparison per window element, which is exactly as
    expensive as a ReLU under a garbled-circuit protocol and impossible under
    levelled HE; average pooling is a plain linear operation.
    """
    replaced = 0
    for name, module in list(model.named_modules()):
        for child_name, child in list(module._modules.items()):
            full_name = f"{name}.{child_name}" if name else child_name
            if any(skip in full_name for skip in skip_names):
                continue
            if isinstance(child, MaxPool2d):
                module.register_module(
                    child_name,
                    AvgPool2d(child.kernel_size, stride=child.stride, padding=child.padding),
                )
                replaced += 1
    return replaced


@dataclass
class PPMLConversionReport:
    """What a PPML conversion did to a model."""

    strategy: str
    relu_modules_before: int
    relu_modules_after: int
    activations_replaced: int
    layers_quadratized: int
    maxpools_replaced: int
    parameters_before: int
    parameters_after: int

    @property
    def relu_free(self) -> bool:
        return self.relu_modules_after == 0

    @property
    def parameter_ratio(self) -> float:
        return self.parameters_after / max(self.parameters_before, 1)


def to_ppml_friendly(model: Module, strategy: str = "square", neuron_type: str = "OURS",
                     inplace: bool = True, square_scale: float = 1.0,
                     square_linear: float = 0.0, convert_pooling: bool = True,
                     skip_names: Sequence[str] = ()) -> Tuple[Module, PPMLConversionReport]:
    """Convert a model into a PPML-friendly form.

    Parameters
    ----------
    model : Module
        Source model; converted in place unless ``inplace=False``, in which
        case a deep copy is converted and returned.
    strategy : str
        ``"square"``, ``"quadratic"`` or ``"quadratic_no_relu"`` (see module
        docstring).
    neuron_type : str
        Quadratic design used by the quadratic strategies.
    square_scale, square_linear : float
        Parameters of the substituted :class:`~repro.nn.Square` activation.
    convert_pooling : bool
        Also swap max pooling for average pooling in the ``"square"`` and
        ``"quadratic_no_relu"`` strategies, so no comparison operations remain.
    skip_names : sequence of str
        Dotted-name substrings to leave untouched (e.g. detector heads).

    Returns
    -------
    (Module, PPMLConversionReport)
        The converted model and a summary of the changes.
    """
    known = ("square", "quadratic", "quadratic_no_relu")
    if strategy not in known:
        raise ValueError(f"unknown PPML conversion strategy '{strategy}'; choose from {known}")
    target = model if inplace else copy.deepcopy(model)

    relus_before = count_relu_modules(target)
    params_before = target.num_parameters()
    replaced = 0
    quadratized = 0
    pools = 0

    if strategy == "square":
        replaced = replace_relu_with_square(target, scale=square_scale, linear=square_linear,
                                            skip_names=skip_names)
        if convert_pooling:
            pools = replace_maxpool_with_avgpool(target, skip_names=skip_names)
    elif strategy == "quadratic":
        quadratized = _quadratize_module_impl(target, neuron_type=neuron_type, skip_names=skip_names)
    else:  # quadratic_no_relu
        quadratized = _quadratize_module_impl(target, neuron_type=neuron_type, skip_names=skip_names)
        replaced = remove_activations(target, skip_names=skip_names)
        if convert_pooling:
            pools = replace_maxpool_with_avgpool(target, skip_names=skip_names)

    report = PPMLConversionReport(
        strategy=strategy,
        relu_modules_before=relus_before,
        relu_modules_after=count_relu_modules(target),
        activations_replaced=replaced,
        layers_quadratized=quadratized,
        maxpools_replaced=pools,
        parameters_before=params_before,
        parameters_after=target.num_parameters(),
    )
    return target, report


@dataclass
class PPMLSavings:
    """Before/after online cost of a PPML conversion under one protocol.

    With ``ppml_savings(..., measured=True)`` the static reports are
    validated against executed protocol traces: ``before_trace`` /
    ``after_trace`` hold the measured records and :attr:`measured_matches`
    states whether every measured operation total equals its static count.
    """

    protocol: Protocol
    before: CostReport
    after: CostReport
    #: executed traces (``ppml_savings(measured=True)`` only, else ``None``).
    before_trace: Optional[ProtocolTrace] = None
    after_trace: Optional[ProtocolTrace] = None

    @property
    def measured(self) -> bool:
        """Whether the savings were validated by an executed secure run."""
        return self.before_trace is not None and self.after_trace is not None

    @property
    def measured_matches(self) -> Optional[bool]:
        """``True`` when both executed traces match the static counts exactly
        (``None`` when the savings were not measured)."""
        if not self.measured:
            return None
        return (self.before_trace.matches_report(self.before)
                and self.after_trace.matches_report(self.after))

    @property
    def latency_ratio(self) -> float:
        """after/before online latency (< 1 means the conversion is cheaper)."""
        before = self.before.total.microseconds
        after = self.after.total.microseconds
        if before == 0:
            return float("nan")
        if before == float("inf"):
            return 0.0 if after != float("inf") else float("nan")
        return after / before

    @property
    def communication_ratio(self) -> float:
        """after/before online communication."""
        before = self.before.total.bytes
        after = self.after.total.bytes
        if before == 0:
            return float("nan")
        if before == float("inf"):
            return 0.0 if after != float("inf") else float("nan")
        return after / before

    @property
    def became_runnable(self) -> bool:
        """True when the conversion unlocked a protocol that could not run before."""
        return (not self.before.runnable) and self.after.runnable


def ppml_savings(original: Module, converted: Module, input_shape: Tuple[int, int, int],
                 protocol: Union[str, Protocol] = "delphi",
                 batch_size: int = 1, measured: bool = False,
                 frac_bits: int = 12, truncation: str = "nearest",
                 seed: int = 0) -> PPMLSavings:
    """Online-cost comparison of an original model and its PPML-friendly version.

    With ``measured=True`` both models are additionally *executed* by the
    secure runtime (:mod:`repro.ppml.runtime`) on a random probe batch of
    ``batch_size`` samples, and the resulting protocol traces are attached —
    :attr:`PPMLSavings.measured_matches` then certifies that the static
    operation counts agree with what a hybrid-protocol execution actually
    performs.  ``frac_bits``/``truncation``/``seed`` configure the runtime's
    fixed-point format (they do not affect the counts, only the numerics).
    """
    proto = resolve_protocol(protocol)
    savings = PPMLSavings(
        protocol=proto,
        before=analyse_model(original, input_shape, proto, batch_size=batch_size),
        after=analyse_model(converted, input_shape, proto, batch_size=batch_size),
    )
    if measured:
        import numpy as np

        from .runtime import SecureConfig, secure_compile

        probe = np.random.default_rng(seed).standard_normal(
            (batch_size,) + tuple(input_shape)).astype(np.float32)
        config = SecureConfig(protocol=proto, frac_bits=frac_bits,
                              truncation=truncation, seed=seed)
        _, savings.before_trace = secure_compile(original, config).run(probe)
        _, savings.after_trace = secure_compile(converted, config).run(probe)
    return savings
