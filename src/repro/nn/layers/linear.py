"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional

from ...autodiff.tensor import Tensor
from .. import functional as F
from .. import init
from ..module import Module
from ..parameter import Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features : int
        Input and output dimensionality.
    bias : bool
        Whether to learn an additive bias.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, out_features={self.out_features}, "
                f"bias={self.bias is not None}")
