"""Scale-out serving benchmark: worker pool vs the single-process predictor.

Measures sustained single-sample serving throughput on the ``smoke`` preset
(quadratic VGG-8, the CI canary model) for

1. the single-process baseline — PR 2's :class:`BatchedPredictor` fed one
   sample at a time from a submitting thread, and
2. the ``repro.serve`` :class:`WorkerPool` at increasing worker counts, fed
   the same stream through its dispatcher (IPC, least-loaded dispatch and
   per-worker micro-batching included — this is the *deployed* path, not a
   best case).

On a host with parallelism headroom (>= 3 cores: the workers plus the
parent's submit/dispatch threads) the pool must beat the baseline by
``MIN_SCALEOUT`` (1.5x) at 2+ workers, and the run **fails** otherwise —
this is the CI regression gate for the serving subsystem.  With fewer cores
process parallelism has nothing to scale onto, so the numbers are reported
but the ratio is not asserted (the report says so explicitly).

Run with ``PYTHONPATH=src python benchmarks/bench_serving_scaleout.py``;
``--quick`` / ``REPRO_BENCH_QUICK=1`` is the CI mode (fewer samples, fewer
pool sizes).
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import fresh_seed, quick_mode, save_experiment

from repro.experiment import Experiment, get_preset
from repro.inference import BatchedPredictor
from repro.serve import ServeConfig, WorkerPool
from repro.utils.logging import format_table

#: samples streamed through each serving configuration
SAMPLES = 256
#: pool sizes to sweep
WORKER_COUNTS = (1, 2, 4)
#: CI quick mode
QUICK_SAMPLES = 64
QUICK_WORKER_COUNTS = (2,)

#: the issue's acceptance bar: pool throughput vs single-process baseline
MIN_SCALEOUT = 1.5


def measure_baseline(compiled, samples: np.ndarray) -> float:
    """Samples/second of the single-process micro-batching predictor."""
    with BatchedPredictor(compiled, max_batch_size=8, max_wait=0.002,
                          autostart=False) as predictor:
        handles = [predictor.submit(sample) for sample in samples]
        start = time.perf_counter()
        predictor.start()
        for handle in handles:
            handle.result(timeout=120.0)
        elapsed = time.perf_counter() - start
    return len(samples) / elapsed


def measure_pool(spec, state, workers: int, samples: np.ndarray) -> float:
    """Samples/second of a started WorkerPool fed the same stream."""
    config = ServeConfig(workers=workers, startup_timeout=180.0,
                         queue_depth=max(len(samples) // workers, 8))
    with WorkerPool(spec, state=state, config=config) as pool:
        pool.predict(samples[0], timeout=120.0)      # warm every IPC path once
        start = time.perf_counter()
        futures = [pool.submit(sample) for sample in samples]
        for future in futures:
            future.result(timeout=120.0)
        elapsed = time.perf_counter() - start
    return len(samples) / elapsed


def main() -> None:
    quick = quick_mode()
    num_samples = QUICK_SAMPLES if quick else SAMPLES
    worker_counts = QUICK_WORKER_COUNTS if quick else WORKER_COUNTS
    cores = os.cpu_count() or 1
    # The gate needs real parallelism headroom: two compiled-model workers
    # PLUS the parent's submit loop and dispatcher thread.  On exactly two
    # cores the parent steals time from the workers it is measuring, so the
    # assertion arms at >= 3 cores (ubuntu-latest CI runners have 4).
    enforce = cores >= 3

    fresh_seed()
    experiment = Experiment(get_preset("smoke"))
    model = experiment.build()
    model.eval()
    state = model.state_dict()
    compiled = experiment.compile_inference()

    rng = np.random.default_rng(0)
    shape = experiment.spec.data.input_shape
    samples = rng.standard_normal((num_samples,) + shape).astype(np.float32)

    baseline_rps = measure_baseline(compiled, samples)
    rows = [["single process (baseline)", f"{baseline_rps:,.0f}", "1.00x"]]
    sweep = []
    for workers in worker_counts:
        pool_rps = measure_pool(experiment.spec, state, workers, samples)
        ratio = pool_rps / baseline_rps
        rows.append([f"pool, {workers} worker(s)", f"{pool_rps:,.0f}", f"{ratio:.2f}x"])
        sweep.append({"workers": workers, "samples_per_s": pool_rps,
                      "vs_baseline": ratio})

    note = (f"gate: >= {MIN_SCALEOUT}x at 2+ workers" if enforce else
            f"{cores} cpu(s), no parallelism headroom: ratio reported, not asserted")
    print(format_table(
        ["Configuration", "samples / s", "vs baseline"], rows,
        title=f"Scale-out serving throughput ({num_samples} samples, {cores} cpus) — {note}",
    ))

    save_experiment("serving_scaleout", {
        "quick_mode": quick,
        "cpus": cores,
        "samples": num_samples,
        "baseline_samples_per_s": baseline_rps,
        "scaleout_enforced": enforce,
        "min_scaleout": MIN_SCALEOUT,
        "pool_sweep": sweep,
    })

    if enforce:
        multi = [entry for entry in sweep if entry["workers"] >= 2]
        assert multi, "sweep never reached 2 workers; cannot evaluate the gate"
        best = max(entry["vs_baseline"] for entry in multi)
        assert best >= MIN_SCALEOUT, (
            f"scale-out regression: best multi-worker throughput is only "
            f"{best:.2f}x the single-process baseline (gate: {MIN_SCALEOUT}x)")
        print(f"\nscale-out gate passed: {best:.2f}x >= {MIN_SCALEOUT}x")
    else:
        print(f"\nscale-out gate skipped: {cores} cpu(s) leave no headroom for "
              "workers + dispatcher; see the vs-baseline column for measured ratios")


if __name__ == "__main__":
    main()
