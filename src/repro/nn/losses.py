"""Loss-function modules (stateful wrappers over ``repro.nn.functional``)."""

from __future__ import annotations

import numpy as np

from ..autodiff.tensor import Tensor
from . import functional as F
from .module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy against integer class labels."""

    def __init__(self, reduction: str = "mean", label_smoothing: float = 0.0) -> None:
        super().__init__()
        self.reduction = reduction
        self.label_smoothing = float(label_smoothing)

    def forward(self, logits: Tensor, targets) -> Tensor:
        targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        return F.cross_entropy(logits, targets, reduction=self.reduction,
                               label_smoothing=self.label_smoothing)


class NLLLoss(Module):
    """Negative log-likelihood over pre-computed log-probabilities."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logp: Tensor, targets) -> Tensor:
        targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        return F.nll_loss(logp, targets, reduction=self.reduction)


class MSELoss(Module):
    """Mean squared error."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target, reduction=self.reduction)


class L1Loss(Module):
    """Mean absolute error."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.l1_loss(pred, target, reduction=self.reduction)


class SmoothL1Loss(Module):
    """Huber loss used for bounding-box regression in the SSD head."""

    def __init__(self, beta: float = 1.0, reduction: str = "mean") -> None:
        super().__init__()
        self.beta = float(beta)
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.smooth_l1_loss(pred, target, beta=self.beta, reduction=self.reduction)


class BCEWithLogitsLoss(Module):
    """Numerically stable binary cross-entropy on raw logits."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets, reduction=self.reduction)
