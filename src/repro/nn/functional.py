"""Functional forms of common layers and losses.

These free functions operate directly on tensors; the class-based layers in
``repro.nn.layers`` and the losses in ``repro.nn.losses`` are thin stateful
wrappers around them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff.tensor import Tensor, where as _where


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #

def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU."""
    from ..autodiff.ops.elementwise import LeakyReLU

    return LeakyReLU.apply(x, negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """``log(softmax(x))`` computed via logsumexp for stability."""
    return x - x.logsumexp(axis=axis, keepdims=True)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = float(np.sqrt(2.0 / np.pi))
    return 0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())


# --------------------------------------------------------------------------- #
# Linear / conv / pooling
# --------------------------------------------------------------------------- #

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``y = x @ W^T + b`` with weight of shape (out_features, in_features)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None, stride=1,
           padding=0, groups: int = 1) -> Tensor:
    """2-D convolution over an NCHW tensor."""
    return x.conv2d(weight, bias, stride=stride, padding=padding, groups=groups)


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    return x.max_pool2d(kernel_size=kernel_size, stride=stride, padding=padding)


def avg_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    return x.avg_pool2d(kernel_size=kernel_size, stride=stride, padding=padding)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global (or grid) average pooling to ``output_size × output_size``."""
    if output_size == 1:
        return x.mean(axis=(2, 3), keepdims=True)
    n, c, h, w = x.shape
    if h % output_size or w % output_size:
        raise ValueError(
            f"adaptive_avg_pool2d requires divisible sizes, got {h}x{w} -> {output_size}"
        )
    return x.avg_pool2d(kernel_size=(h // output_size, w // output_size))


def upsample_nearest(x: Tensor, scale_factor: int = 2) -> Tensor:
    return x.upsample_nearest2d(scale_factor=scale_factor)


def flatten(x: Tensor, start_dim: int = 1) -> Tensor:
    return x.flatten(start_dim=start_dim)


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: activations are scaled by ``1/(1-p)`` during training."""
    if not training or p <= 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# Normalisation
# --------------------------------------------------------------------------- #

def batch_norm(x: Tensor, weight: Tensor, bias: Tensor, mean: Tensor, var: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Affine batch normalisation given precomputed statistics.

    ``mean``/``var`` must already be broadcastable to ``x`` (the BatchNorm
    layers handle reshaping and the running-statistics bookkeeping).
    """
    inv_std = (var + eps) ** -0.5
    return (x - mean) * inv_std * weight + bias


# --------------------------------------------------------------------------- #
# Losses (functional)
# --------------------------------------------------------------------------- #

def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean",
                  label_smoothing: float = 0.0) -> Tensor:
    """Softmax cross-entropy against integer class targets."""
    targets = np.asarray(targets)
    n, num_classes = logits.shape
    logp = log_softmax(logits, axis=-1)
    one_hot = np.zeros((n, num_classes), dtype=np.float32)
    one_hot[np.arange(n), targets.astype(np.int64)] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / num_classes
    nll = -(logp * Tensor(one_hot)).sum(axis=-1)
    return _reduce(nll, reduction)


def nll_loss(logp: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood for pre-computed log-probabilities."""
    targets = np.asarray(targets)
    n, num_classes = logp.shape
    one_hot = np.zeros((n, num_classes), dtype=np.float32)
    one_hot[np.arange(n), targets.astype(np.int64)] = 1.0
    nll = -(logp * Tensor(one_hot)).sum(axis=-1)
    return _reduce(nll, reduction)


def mse_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float32))
    diff = pred - target
    return _reduce(diff * diff, reduction)


def l1_loss(pred: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean absolute error."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float32))
    return _reduce((pred - target).abs(), reduction)


def smooth_l1_loss(pred: Tensor, target: Tensor, beta: float = 1.0,
                   reduction: str = "mean") -> Tensor:
    """Huber/smooth-L1 loss used by the SSD localisation head."""
    target = target if isinstance(target, Tensor) else Tensor(np.asarray(target, dtype=np.float32))
    diff = (pred - target).abs()
    quadratic = 0.5 * diff * diff / beta
    linear = diff - 0.5 * beta
    out = _where(Tensor(diff.data < beta), quadratic, linear)
    return _reduce(out, reduction)


def binary_cross_entropy_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Numerically stable BCE on raw logits (GAN discriminators)."""
    targets = targets if isinstance(targets, Tensor) else Tensor(np.asarray(targets, dtype=np.float32))
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    relu_logits = logits.relu()
    loss = relu_logits - logits * targets + (1.0 + (-logits.abs()).exp()).log()
    return _reduce(loss, reduction)


def hinge_loss_discriminator(real_logits: Tensor, fake_logits: Tensor) -> Tensor:
    """Hinge loss for the discriminator (SNGAN training objective)."""
    real_term = (1.0 - real_logits).relu().mean()
    fake_term = (1.0 + fake_logits).relu().mean()
    return real_term + fake_term


def hinge_loss_generator(fake_logits: Tensor) -> Tensor:
    """Hinge loss for the generator (SNGAN training objective)."""
    return (-fake_logits).mean()


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return value.mean()
    if reduction == "sum":
        return value.sum()
    if reduction == "none":
        return value
    raise ValueError(f"unknown reduction '{reduction}'")
