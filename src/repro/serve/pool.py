"""The parent-process side of the serving pool: batching, dispatch, respawn.

:class:`WorkerPool` owns N worker processes (see :mod:`repro.serve.worker`),
one bounded request queue per worker, one shared-memory ring pair per worker
(the zero-copy tensor transport, see :mod:`repro.serve.shm`), and a single
pool-wide FIFO :class:`~repro.serve.batching.RequestBacklog`.  Admitted
requests wait in the backlog until *any* worker has dispatch capacity; the
pool then cuts a batch from the front and ships it as one frame — continuous
cross-request batching, sized by load instead of by timer.

A dispatcher thread resolves responses into caller-held :class:`PoolFuture`
handles and doubles as the supervisor: whenever a worker process dies it
reclaims the worker's ring slots, respawns a replacement attached to the
*same* segments, and either requeues the requests the dead worker had in
flight (at the front of the backlog, up to ``max_retries`` attempts) or
rejects them with :class:`WorkerCrashed`.

Admission control is explicit and three-layered:

* a **latency budget** (optional) — before a request enters the backlog the
  :class:`~repro.serve.admission.AdmissionController` estimates its queue
  wait from the measured service-time EWMA; over budget means
  :class:`~repro.serve.admission.AdmissionRejected` (HTTP ``429`` with
  ``Retry-After``),
* a **watermark** on total requests in flight across the pool — beyond it
  :meth:`WorkerPool.submit` raises :class:`PoolSaturated` (HTTP ``503``), and
* the **bounded per-worker queues** — even a confused caller that ignores
  both cannot buffer unboundedly.

Per-request latency is decomposed into ``queue`` / ``transport`` /
``compute`` stage reservoirs (:class:`~repro.serve.metrics.StageMetrics`):
each stage is measured as a *duration* on whichever side owns it, so the
parent never compares timestamps across processes.

Secure serving (``ServeConfig(secure=True)``) layers the PPML offline phase
on top: before any worker spawns, :meth:`WorkerPool.start` executes one
traced warm-up forward and sizes the per-(protocol, frac_bits) triple pools
(:class:`~repro.ppml.offline.OfflinePhase`) from the measured per-request
budget.  The batcher then becomes protocol-aware — only requests sharing a
(protocol, frac_bits, truncation) configuration co-batch, and a batch only
dispatches when its pool holds enough precomputed request quanta (otherwise
it stalls at the front of the backlog until the producers catch up, or is
429'd up front when the estimated precompute wait blows the latency
budget).  Every dispatched request debits its pool; every completed request
folds its measured ``ProtocolTrace`` totals into the accounting that
``GET /stats`` serves.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..experiment import ExperimentSpec
from ..ppml.offline import OfflinePhase, pool_key
from .admission import AdmissionController, AdmissionRejected
from .batching import (MAX_PIPELINE_DEPTH, MIN_PIPELINE_DEPTH, Batch,
                       PipelineController, RequestBacklog, coalescing_key,
                       ring_slots)
from .config import ServeConfig
from .metrics import StageMetrics, split_batch_timings
from .shm import RingFull, StaleFrame, WorkerRings
from .worker import build_serving_predictor, worker_main

__all__ = [
    "WorkerPool", "PoolFuture", "PoolSaturated", "WorkerCrashed", "PoolClosed",
    "MAX_EARLY_CRASHES",
]


class PoolSaturated(RuntimeError):
    """The pool is at its admission watermark — shed this request."""


class WorkerCrashed(RuntimeError):
    """A worker died with this request in flight and no retries remained."""


class PoolClosed(RuntimeError):
    """The pool is draining or closed and accepts no new requests."""


class PoolFuture:
    """Handle for one request travelling through the pool."""

    __slots__ = ("_event", "_value", "_error", "_callbacks", "_cb_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["PoolFuture"], None]] = []
        self._cb_lock = threading.Lock()

    def _resolve(self, value) -> None:
        self._value = value
        self._fire()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._fire()

    def _fire(self) -> None:
        with self._cb_lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:   # a broken observer must not break the pool
                pass

    def add_done_callback(self, callback: Callable[["PoolFuture"], None]) -> None:
        """Run ``callback(self)`` when the future settles (immediately if done).

        Callbacks run on the pool's dispatcher thread — keep them short and
        never block (the asyncio front door uses this to hop the result onto
        its event loop with ``call_soon_threadsafe``).
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = 30.0):
        if not self._event.wait(timeout):
            raise TimeoutError(f"pool response not ready after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value


class _Request:
    """Parent-side bookkeeping for one in-flight request."""

    __slots__ = ("request_id", "kind", "payload", "future", "attempts",
                 "worker_id", "t_admit", "t_dispatch", "secure")

    def __init__(self, request_id: int, kind: str, payload,
                 secure: Optional[tuple] = None) -> None:
        self.request_id = request_id
        self.kind = kind
        self.payload = payload
        self.future = PoolFuture()
        self.attempts = 0
        self.worker_id: Optional[int] = None
        self.t_admit: Optional[float] = None      # stamped by the backlog
        self.t_dispatch: Optional[float] = None   # stamped per dispatch
        #: (protocol, frac_bits, truncation) on secure pools, else None —
        #: the scheduler only co-batches requests sharing this key.
        self.secure = secure


class _WorkerHandle:
    """One worker process plus its queues and in-flight set.

    Every worker gets a *private* pair of queues.  Sharing one response queue
    across the pool would be simpler, but a worker SIGKILLed while its feeder
    thread holds the shared queue's write lock poisons that queue for every
    other worker (this is why ``concurrent.futures`` declares a whole
    ProcessPoolExecutor broken on one crash).  With per-worker channels, a
    crash can only corrupt queues that die with the worker.

    ``in_flight`` tracks every request currently committed to this worker —
    batched or not — and is what crash recovery walks.  ``batches`` tracks
    the frame-level bookkeeping (ring slots, dispatch times) of the batch
    frames in flight, bounded by ``pipeline.depth`` — the per-worker
    :class:`~repro.serve.batching.PipelineController`'s current target.
    """

    def __init__(self, worker_id: int, generation: int, process, request_queue,
                 response_queue,
                 pipeline: Optional[PipelineController] = None) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.process = process
        self.request_queue = request_queue
        self.response_queue = response_queue
        self.in_flight: Dict[int, _Request] = {}
        self.batches: Dict[int, Batch] = {}
        self.pipeline = pipeline if pipeline is not None else PipelineController()
        self.ready = threading.Event()
        self.served = 0
        self.last_used = 0
        self.stopping = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def describe(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "generation": self.generation,
            "pid": self.process.pid,
            "alive": self.alive,
            "ready": self.ready.is_set(),
            "served": self.served,
            "in_flight": len(self.in_flight),
            "batches": len(self.batches),
            "pipeline_depth": self.pipeline.depth,
        }


#: Consecutive died-before-ready crashes after which a worker slot is given
#: up on instead of respawned — a deterministic startup crash (bad config,
#: corrupt weights) must not become an infinite spawn storm.
MAX_EARLY_CRASHES = 3

#: auto ring geometry: slot count comes from :func:`ring_slots` (sized for
#: the *maximum* adaptive pipeline depth, or a dispatch burst could stall on
#: RingFull exactly when the controller ramps up), and slots of 1 MiB —
#: comfortably a max_batch_size batch of any smoke-scale input; bigger
#: tensors transparently fall back to the inline (pipe) path.
_AUTO_SLOT_BYTES = 1 << 20


class WorkerPool:
    """Shard compiled-model inference across a pool of worker processes.

    Parameters
    ----------
    spec : ExperimentSpec or dict
        The experiment whose model the workers serve.  Serialized to a plain
        dict for IPC; each worker rebuilds and compiles the model itself.
    state : dict, optional
        Trained weights (``model.state_dict()``) shipped to every worker so
        all of them answer with identical bits.  ``None`` serves the freshly
        built (seeded) model.
    config : ServeConfig

    Example
    -------
    >>> pool = WorkerPool(spec, state=model.state_dict(),
    ...                   config=ServeConfig(workers=2))
    >>> with pool:                       # starts workers, waits for ready
    ...     out = pool.predict(sample)   # or submit() for a future
    """

    def __init__(self, spec, state: Optional[Dict[str, np.ndarray]] = None,
                 config: Optional[ServeConfig] = None) -> None:
        if isinstance(spec, ExperimentSpec):
            spec = spec.to_dict()
        self.spec_dict = dict(spec)
        self.state = dict(state) if state else {}
        self.config = config or ServeConfig()
        self._ctx = None
        self._workers: Dict[int, _WorkerHandle] = {}
        self._rings: Dict[int, WorkerRings] = {}   # per slot, survive respawns
        self._requests: Dict[int, _Request] = {}   # admitted: backlog + workers
        self._backlog = RequestBacklog()
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._rr = itertools.count()            # round-robin tie breaker
        self._dispatcher: Optional[threading.Thread] = None
        #: per-slot count of consecutive crashes before reporting ready
        self._early_crashes: Dict[int, int] = {}
        self._started = False
        self._accepting = False
        self._closed = False
        self.admission = AdmissionController(self.config.latency_budget_ms)
        self.stage_metrics = StageMetrics()
        # counters (all mutated under the lock)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.respawns = 0
        self.rejected_saturated = 0
        self.rejected_budget = 0
        self.rejected_precompute = 0    # secure: offline pool too far behind
        self.inline_dispatches = 0      # shm configured but frame went inline
        self.inline_responses = 0
        self.assembly_fallbacks = 0     # in-ring assembly fell back to stack
        # Secure serving: resolve the spec-deferred knobs once and stand up
        # the (still unsized) offline phase; start() runs the warm-up trace.
        self.offline: Optional[OfflinePhase] = None
        self.warmup_trace = None
        self._secure_default: Optional[tuple] = None
        self.secure_strategy = ""
        if self.config.secure:
            parsed = ExperimentSpec.from_dict(self.spec_dict)
            protocol = self.config.protocol or parsed.ppml.protocol
            self.secure_strategy = self.config.strategy or parsed.ppml.strategy
            self._secure_default = (protocol, self.config.frac_bits,
                                    self.config.truncation)
            self._input_shape = tuple(parsed.data.input_shape)
            self.offline = OfflinePhase(
                protocol, self.config.frac_bits, self.config.truncation,
                depth=self.config.effective_triple_pool_depth,
                seed=parsed.seed,
                producer_workers=self.config.producer_workers)

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerPool":
        """Spawn the workers and block until every one reports ready.

        On secure pools the warm-up runs first: one traced forward through
        the exact worker-side build path sizes the offline triple pools
        from the measured per-request budget — and surfaces
        :class:`~repro.ppml.SecureExecutionError` for un-servable models
        before a single worker process is spawned.
        """
        if self.offline is not None and self.warmup_trace is None:
            self._warm_up()
        with self._lock:
            if self._closed:
                raise PoolClosed("this pool has been closed; create a new WorkerPool")
            if self._started:
                return self
            self._started = True
            self._accepting = True
            import multiprocessing

            self._ctx = multiprocessing.get_context(self.config.start_method)
            for worker_id in range(self.config.workers):
                self._workers[worker_id] = self._spawn(
                    worker_id, generation=0, rings=self._ensure_rings(worker_id))
        self._dispatcher = threading.Thread(target=self._dispatch_loop, daemon=True,
                                            name="repro-pool-dispatcher")
        self._dispatcher.start()
        deadline = time.monotonic() + self.config.startup_timeout
        for worker_id in range(self.config.workers):
            # Poll the *current* handle: the supervisor may have respawned the
            # slot behind our back, and a slot that keeps crashing before
            # ready fails fast instead of burning the whole startup timeout.
            while True:
                with self._lock:
                    handle = self._workers.get(worker_id)
                    gave_up = self._early_crashes.get(worker_id, 0) >= MAX_EARLY_CRASHES
                if handle is not None and handle.ready.wait(0.05):
                    break
                dead = handle is None or not handle.alive
                if (dead and gave_up) or time.monotonic() >= deadline:
                    reason = ("keeps crashing during startup "
                              f"({MAX_EARLY_CRASHES} consecutive attempts)" if gave_up
                              else f"did not become ready within "
                                   f"{self.config.startup_timeout}s")
                    self.close(timeout=1.0)
                    raise RuntimeError(
                        f"worker {worker_id} {reason}; check the spec/weights "
                        f"and the serve configuration")
        return self

    def _warm_up(self) -> None:
        """Trace one forward and size the offline pools from what it measured.

        Uses the same ``build_serving_predictor`` the workers run, so the
        budget is measured on the exact converted/compiled model that will
        serve — not on a static estimate.  The trace is kept on
        :attr:`warmup_trace` for ``/stats`` consumers and the benchmark's
        measured-vs-static equality check.
        """
        predictor = build_serving_predictor(
            self.spec_dict, self.state, max_batch_size=1, max_wait=0.0,
            secure=self.config.to_dict())
        try:
            predictor.predict(np.zeros(self._input_shape, dtype=np.float32))
            self.warmup_trace = predictor.last_trace
        finally:
            predictor.close()
        self.offline.size_from_trace(self.warmup_trace)

    def _ensure_rings(self, worker_id: int) -> Optional[WorkerRings]:
        """The slot's ring pair, created on first spawn (caller holds the lock).

        Ring creation failing (no usable /dev/shm, exotic platform) degrades
        the transport to inline frames over the queues instead of killing the
        pool — the wire protocol is identical, only slower.
        """
        if self.config.transport != "shm":
            return None
        rings = self._rings.get(worker_id)
        if rings is None:
            slots = self.config.shm_slots or ring_slots(
                self.config.effective_max_pipeline_depth)
            slot_bytes = self.config.shm_slot_bytes or _AUTO_SLOT_BYTES
            try:
                rings = self._rings[worker_id] = WorkerRings(slots, slot_bytes)
            except Exception:
                return None
        return rings

    def _spawn(self, worker_id: int, generation: int,
               rings: Optional[WorkerRings]) -> _WorkerHandle:
        """Create one worker process (slow: ~1 s; safe to call without the lock).

        Respawns attach to the slot's *existing* rings (reclaimed by the
        supervisor before the replacement is installed), so a crash costs a
        header scan, not two segment allocations.
        """
        request_queue = self._ctx.Queue(maxsize=self.config.queue_depth)
        response_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self.spec_dict, self.state, self.config.to_dict(),
                  rings.descriptor() if rings is not None else None,
                  request_queue, response_queue),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        process.start()
        return _WorkerHandle(
            worker_id, generation, process, request_queue, response_queue,
            pipeline=PipelineController(self.stage_metrics,
                                        fixed=self.config.pipeline_depth))

    def stop_accepting(self) -> None:
        """Refuse new submissions while letting in-flight work finish."""
        with self._lock:
            self._accepting = False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting requests; wait for the in-flight set to empty.

        Returns True when everything in flight completed within ``timeout``
        (default: the config's ``drain_timeout``).
        """
        with self._lock:
            self._accepting = False
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.config.drain_timeout)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._requests:
                    return True
            time.sleep(0.01)
        with self._lock:
            return not self._requests

    def close(self, timeout: float = 10.0) -> None:
        """Drain, stop the workers, reject anything still unresolved (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._accepting = False
            started = self._started
        if not started:
            return
        self.drain(timeout=min(timeout, self.config.drain_timeout))
        with self._lock:
            handles = list(self._workers.values())
            for handle in handles:
                handle.stopping = True
                try:
                    handle.request_queue.put_nowait(None)
                except queue_module.Full:
                    pass
        for handle in handles:
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
        with self._lock:
            self._backlog.drain()
            leftovers = list(self._requests.values())
            self._requests.clear()
            for handle in self._workers.values():
                handle.in_flight.clear()
                handle.batches.clear()
            rings = list(self._rings.values())
            self._rings.clear()
        for pair in rings:
            try:
                pair.close()           # the parent unlinks exactly once
            except Exception:
                pass
        for request in leftovers:
            request.future._reject(PoolClosed(
                "pool closed before this request was answered"))
        if self._dispatcher is not None and self._dispatcher.is_alive():
            self._dispatcher.join(timeout=2.0)
        if self.offline is not None:
            self.offline.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ serving
    def submit(self, sample: np.ndarray, protocol: Optional[str] = None,
               frac_bits: Optional[int] = None,
               truncation: Optional[str] = None) -> PoolFuture:
        """Admit one sample into the pool's backlog; returns a future.

        Raises :class:`~repro.serve.admission.AdmissionRejected` when the
        latency budget says the request would wait too long (including, on
        secure pools, when the offline producers are too far behind),
        :class:`PoolSaturated` once the pool-wide in-flight count reaches the
        watermark, and :class:`PoolClosed` when the pool is draining or
        closed.

        On secure pools, ``protocol`` / ``frac_bits`` / ``truncation``
        override the configured defaults for this one request; the
        scheduler only co-batches requests sharing the resulting
        (protocol, frac_bits, truncation) key, and each key draws from its
        own offline triple pool.  Overrides on a float pool raise
        ``ValueError``.
        """
        secure = self._secure_key(protocol, frac_bits, truncation)
        return self._submit("predict", np.asarray(sample, dtype=np.float32),
                            secure=secure)

    def _secure_key(self, protocol, frac_bits, truncation) -> Optional[tuple]:
        """Validate and canonicalize one request's secure configuration."""
        overrides = (protocol, frac_bits, truncation)
        if self.offline is None:
            if any(value is not None for value in overrides):
                raise ValueError(
                    "per-request protocol/frac_bits/truncation require a "
                    "secure pool (ServeConfig(secure=True))")
            return None
        base = self._secure_default
        if all(value is None for value in overrides):
            return base
        from ..ppml.fixedpoint import FixedPointFormat  # lazy, validation only
        from ..ppml.protocols import resolve_protocol

        try:
            name = resolve_protocol(protocol or base[0]).name
        except KeyError as error:
            raise ValueError(str(error)) from None
        fmt = FixedPointFormat(
            frac_bits=base[1] if frac_bits is None else int(frac_bits),
            truncation=base[2] if truncation is None else str(truncation))
        return (name, fmt.frac_bits, fmt.truncation)

    def submit_sleep(self, seconds: float) -> PoolFuture:
        """Occupy one worker for ``seconds`` (drain/failure testing, warm-up)."""
        return self._submit("sleep", float(seconds))

    def predict(self, sample: np.ndarray, timeout: Optional[float] = None):
        """Blocking convenience wrapper around :meth:`submit`."""
        effective = timeout if timeout is not None else self.config.request_timeout
        return self.submit(sample).result(timeout=effective)

    def _submit(self, kind: str, payload,
                secure: Optional[tuple] = None) -> PoolFuture:
        with self._lock:
            if not self._started:
                raise PoolClosed("pool not started; call start() or use it as a "
                                 "context manager")
            if self._closed or not self._accepting:
                raise PoolClosed("pool is draining/closed and accepts no new requests")
            if len(self._requests) >= self.config.effective_watermark:
                self.rejected_saturated += 1
                raise PoolSaturated(
                    f"{len(self._requests)} requests in flight >= watermark "
                    f"{self.config.effective_watermark}; retry later")
            request = _Request(next(self._request_ids), kind, payload,
                               secure=secure)
            if kind != "predict":
                # Control requests (sleep) bypass batching: they exist to pin
                # a specific worker, which the backlog would defeat.
                self._dispatch_direct(request)
                self.submitted += 1
                return request.future
            alive = [h for h in self._workers.values()
                     if h.alive and not h.stopping]
            if not alive and not self._respawnable_locked():
                self.submitted += 1
                self.failed += 1
                request.future._reject(WorkerCrashed("no alive workers in the pool"))
                return request.future
            decision = self.admission.decide(len(self._requests),
                                             max(len(alive), 1))
            if not decision.admitted:
                self.rejected_budget += 1
                raise self.admission.reject(decision)
            if secure is not None and self.admission.enabled:
                # Second admission gate, secure pools only: when the offline
                # producers are so far behind that refilling enough quanta
                # for everything already admitted (plus this request) would
                # blow the latency budget, 429 now rather than stall later.
                key = pool_key(secure[0], secure[1])
                wait_ms = self.offline.estimated_wait_ms(
                    key, len(self._requests) + 1)
                budget_ms = self.config.latency_budget_ms
                if wait_ms > budget_ms:
                    self.rejected_precompute += 1
                    retry_after = max(1, int(np.ceil(
                        min(wait_ms, 3_600_000.0) / 1000.0)))
                    raise AdmissionRejected(
                        f"offline precompute behind: ~{wait_ms:.0f}ms to "
                        f"refill triple pool '{key}' exceeds the "
                        f"{budget_ms:.0f}ms budget; retry later",
                        estimated_wait_ms=wait_ms, budget_ms=budget_ms,
                        retry_after_s=retry_after)
            self._backlog.append(request)
            self._requests[request.request_id] = request
            self.submitted += 1
            self._pump_locked()
        return request.future

    def _respawnable_locked(self) -> bool:
        return not self._closed and any(
            self._early_crashes.get(worker_id, 0) < MAX_EARLY_CRASHES
            for worker_id in self._workers)

    # ----------------------------------------------------------------- batching
    def _pump_locked(self) -> None:
        """Cut batches from the backlog onto every worker with capacity.

        Called (under the lock) after anything that could create dispatch
        room: a submission, a completed batch, a respawn, a ready worker.
        """
        while self._backlog:
            candidates = [handle for handle in self._workers.values()
                          if handle.alive and not handle.stopping
                          and len(handle.batches) < handle.pipeline.depth]
            if not candidates:
                return
            candidates.sort(key=lambda handle: (len(handle.in_flight),
                                                handle.last_used))
            dispatched_any = False
            for handle in candidates:
                if not self._backlog:
                    return
                requests = self._cut_batch_locked()
                if not requests:
                    return
                if self._dispatch_batch_locked(handle, requests):
                    dispatched_any = True
                else:
                    self._backlog.requeue(requests)
            if not dispatched_any:
                return                     # every candidate queue is full

    def _cut_batch_locked(self) -> List[_Request]:
        """Next batch off the backlog; only compatible requests fuse.

        Compatibility is :func:`~repro.serve.batching.coalescing_key`: the
        stacked shape, plus — on secure pools — the (protocol, frac_bits,
        truncation) triple, so one frame never mixes secure configurations.
        On secure pools the cut is additionally capped by the offline
        material on hand: requests the triple pool cannot cover yet are
        requeued at the front and the stall is recorded — FIFO order is
        preserved, and the dispatcher's next tick retries once the
        producers catch up.
        """
        batch = self._backlog.cut(self.config.max_batch_size)
        if not batch:
            return []
        key = coalescing_key(batch[0])
        same = [r for r in batch if coalescing_key(r) == key]
        rest = [r for r in batch if coalescing_key(r) != key]
        if rest:
            self._backlog.requeue(rest)    # next cut takes them first
        if self.offline is not None and same:
            offline_key = pool_key(same[0].secure[0], same[0].secure[1])
            covered = self.offline.available(offline_key)
            if covered <= 0:
                self.offline.note_stall(offline_key)
                self._backlog.requeue(same)
                return []
            if covered < len(same):
                self._backlog.requeue(same[covered:])
                same = same[:covered]
        return same

    def _dispatch_batch_locked(self, handle: _WorkerHandle,
                               requests: List[_Request]) -> bool:
        """Ship one batch frame to ``handle``; False if its queue is full.

        The batch tensor is assembled *inside* the leased ring slot: the
        slot is claimed first and each request's payload is scattered
        straight into its row of a writable view — no intermediate
        ``np.stack`` array, no second copy.  Any assembly failure (ring
        full, batch too big for a slot) releases the lease and falls back
        to the inline path, which stacks on the heap exactly as before —
        bit-identical either way, since both paths copy the same rows in
        the same order.
        """
        batch_id = next(self._batch_ids)
        rings = self._rings.get(handle.worker_id)
        slot = seq = None
        payload = None
        if rings is not None:
            head = requests[0].payload
            try:
                slot, seq = rings.request.lease()
                view, shm_frame = rings.request.assemble(
                    slot, seq, (len(requests),) + head.shape, head.dtype)
                for index, request in enumerate(requests):
                    np.copyto(view[index], request.payload)
                payload = ("shm", shm_frame)
            except (RingFull, ValueError, TypeError):
                if slot is not None:       # leased but the batch didn't fit
                    rings.request.release(slot, seq)
                slot = seq = None
                self.inline_dispatches += 1
                self.assembly_fallbacks += 1
        if payload is None:
            payload = ("inline",
                       np.stack([request.payload for request in requests]))
        frame = ("batch", batch_id,
                 [request.request_id for request in requests], payload)
        if self.offline is not None:
            # Secure frames carry their configuration: None selects the
            # worker's default compilation, a dict a lazily-compiled variant.
            key = requests[0].secure
            meta = (None if key == self._secure_default else
                    {"protocol": key[0], "frac_bits": key[1],
                     "truncation": key[2]})
            frame = frame + (meta,)
        try:
            handle.request_queue.put_nowait(frame)
        except queue_module.Full:
            if slot is not None:
                rings.request.release(slot, seq)
            return False
        if self.offline is not None:
            # Debit only after the frame is irrevocably committed to the
            # worker — a queue-full requeue must not consume material.  A
            # crash retry debits again: the respawned worker re-executes the
            # forward, which really does consume fresh triples (so the
            # invariant checked by the fault tests stays
            # produced == available + consumed with consumed >= answers).
            self.offline.consume(pool_key(requests[0].secure[0],
                                          requests[0].secure[1]),
                                 len(requests))
        now = time.perf_counter()
        handle.batches[batch_id] = Batch(batch_id, requests, slot, seq)
        handle.last_used = next(self._rr)
        for request in requests:
            request.attempts += 1
            request.worker_id = handle.worker_id
            request.t_dispatch = now
            handle.in_flight[request.request_id] = request
        return True

    def _dispatch_direct(self, request: _Request) -> None:
        """Enqueue a control request on the best worker (caller holds the lock)."""
        candidates = [handle for handle in self._workers.values()
                      if handle.alive and not handle.stopping]
        if not candidates:
            if self._respawnable_locked():
                # The supervisor is (about to be) respawning — transient, so
                # shed rather than fail: callers can retry, HTTP says 503.
                self.rejected_saturated += 1
                raise PoolSaturated(
                    "no alive workers right now (respawn in progress); retry later")
            self.failed += 1
            request.future._reject(WorkerCrashed("no alive workers in the pool"))
            return
        # Least-loaded first; equal loads rotate round-robin so sequential
        # traffic still spreads across the pool.
        candidates.sort(key=lambda handle: (len(handle.in_flight), handle.last_used))
        request.attempts += 1
        for handle in candidates:
            try:
                handle.request_queue.put_nowait(
                    (request.kind, request.request_id, request.payload))
            except queue_module.Full:
                continue
            request.worker_id = handle.worker_id
            handle.in_flight[request.request_id] = request
            handle.last_used = next(self._rr)
            self._requests[request.request_id] = request
            return
        # Every queue is full — that is backpressure too.
        self.rejected_saturated += 1
        raise PoolSaturated("every worker queue is full; retry later")

    def _pump(self) -> None:
        with self._lock:
            self._pump_locked()

    # --------------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        """Resolve responses and supervise worker processes."""
        last_liveness_check = 0.0
        last_pipeline_update = 0.0
        while True:
            with self._lock:
                if self._closed and not self._requests:
                    break
                handles = list(self._workers.values())
            got_any = False
            for handle in handles:
                got_any |= self._drain_responses(handle)
            if self._backlog:
                self._pump()
            now = time.monotonic()
            if now - last_liveness_check >= 0.1:
                last_liveness_check = now
                self._reap_dead_workers()
            if now - last_pipeline_update >= 0.25:
                # Re-target every controller from the latest percentiles; a
                # raised depth creates dispatch room, so pump right after.
                last_pipeline_update = now
                with self._lock:
                    for handle in self._workers.values():
                        handle.pipeline.update()
                    self._pump_locked()
            if not got_any:
                time.sleep(0.002)

    def _drain_responses(self, handle: _WorkerHandle, limit: int = 64) -> bool:
        """Process everything currently readable on one worker's channel."""
        got_any = False
        for _ in range(limit):
            try:
                message = handle.response_queue.get_nowait()
            except (queue_module.Empty, EOFError, OSError):
                break
            got_any = True
            self._handle_message(handle, message)
        return got_any

    def _handle_message(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        if kind == "ready":
            _, worker_id, _pid = message
            with self._lock:
                current = self._workers.get(worker_id)
                self._early_crashes[worker_id] = 0    # the slot proved viable
            if current is not None:
                current.ready.set()
            self._pump()                  # a fresh worker means fresh capacity
            return
        if kind == "bye":
            return
        if kind == "okb":
            self._finish_batch(handle, message)
            return
        if kind == "errb":
            self._fail_batch(handle, message)
            return
        _, request_id, payload = message
        with self._lock:
            request = self._requests.pop(request_id, None)
            if request is None:
                return  # already rejected (e.g. its worker was declared dead)
            owner = self._workers.get(request.worker_id)
            if owner is not None:
                owner.in_flight.pop(request_id, None)
                owner.served += 1
            if kind == "ok":
                self.completed += 1
            else:
                self.failed += 1
        if kind == "ok":
            request.future._resolve(payload)
        else:
            request.future._reject(RuntimeError(f"worker error: {payload}"))

    def _finish_batch(self, handle: _WorkerHandle, message) -> None:
        """Resolve one ("okb", ...) frame: copy out, time, settle futures."""
        _, batch_id, _request_ids, payload, timings = message
        with self._lock:
            batch = handle.batches.pop(batch_id, None)
        rings = self._rings.get(handle.worker_id)
        via, data = payload
        outputs = None
        if via == "shm" and rings is not None:
            try:
                # The one consumer-side copy: detach the rows from the slot
                # so it can be released (and re-leased) immediately.
                outputs = np.array(rings.response.read(data))
            except (StaleFrame, ValueError):
                outputs = None            # reclaimed under us — batch is gone too
            finally:
                try:
                    rings.response.release(data.slot, data.seq)
                except (StaleFrame, ValueError, RuntimeError):
                    pass
        elif via == "inline":
            outputs = np.asarray(data)
        if batch is None:
            return      # answered after we gave up on it (reaped/closed)
        if outputs is None or len(outputs) != len(batch.requests):
            self._fail_batch(handle, ("errb", batch_id,
                                      [r.request_id for r in batch.requests],
                                      "response frame was lost in transport"),
                             batch=batch)
            return
        compute_list = split_batch_timings(
            (timings or {}).get("compute_ms"), len(batch.requests))
        now = time.perf_counter()
        with self._lock:
            for request, compute_ms in zip(batch.requests, compute_list):
                self._requests.pop(request.request_id, None)
                handle.in_flight.pop(request.request_id, None)
                handle.served += 1
                self.completed += 1
                if via == "inline" and rings is not None:
                    self.inline_responses += 1
                t_admit = request.t_admit if request.t_admit is not None else now
                t_dispatch = (request.t_dispatch
                              if request.t_dispatch is not None else t_admit)
                queue_ms = max((t_dispatch - t_admit) * 1000.0, 0.0)
                total_ms = max((now - t_admit) * 1000.0, 0.0)
                transport_ms = max(total_ms - queue_ms - compute_ms, 0.0)
                self.stage_metrics.record(queue_ms, transport_ms,
                                          compute_ms, total_ms)
                self.admission.observe(total_ms - queue_ms)
            self._pump_locked()
        if self.offline is not None:
            # Per-request protocol accounting measured by the worker — one
            # ProtocolTrace.totals() per answered request.
            secure_totals = (timings or {}).get("secure")
            if secure_totals:
                self.offline.record_served(secure_totals)
        for index, request in enumerate(batch.requests):
            request.future._resolve(np.array(outputs[index]))

    def _fail_batch(self, handle: _WorkerHandle, message,
                    batch: Optional[Batch] = None) -> None:
        _, batch_id, _request_ids, error_message = message
        with self._lock:
            if batch is None:
                batch = handle.batches.pop(batch_id, None)
            if batch is None:
                return
            for request in batch.requests:
                self._requests.pop(request.request_id, None)
                handle.in_flight.pop(request.request_id, None)
                self.failed += 1
            self._pump_locked()
        for request in batch.requests:
            request.future._reject(RuntimeError(f"worker error: {error_message}"))

    def _reap_dead_workers(self) -> None:
        """Respawn crashed workers; requeue or reject their orphaned requests."""
        with self._lock:
            dead = [handle for handle in self._workers.values()
                    if not handle.alive and not handle.stopping]
        if not dead:
            return
        # Collect any answers a worker managed to send before dying, so those
        # requests resolve normally instead of being retried (done outside
        # the lock — _handle_message locks per message).
        for handle in dead:
            self._drain_responses(handle)
        # Charge never-ready deaths against the slot's crash budget, then
        # spawn replacements OUTSIDE the lock — a spawn re-imports the
        # library and pickles the weights (~1 s), and holding the lock that
        # long would stall every submit and response in the pool.  Only this
        # (dispatcher) thread reaps, so there is no double-spawn race.
        with self._lock:
            closed = self._closed
            for handle in dead:
                if (self._workers.get(handle.worker_id) is handle
                        and not handle.ready.is_set()):
                    self._early_crashes[handle.worker_id] = \
                        self._early_crashes.get(handle.worker_id, 0) + 1
            budgets = dict(self._early_crashes)
            # Reclaim every ring slot the dead generation held — leased
            # request slots it never released, response slots it never got to
            # send — and bump their sequence numbers so any frame it did emit
            # is stale.  Must happen before the replacement attaches.
            for handle in dead:
                if self._workers.get(handle.worker_id) is handle:
                    rings = self._rings.get(handle.worker_id)
                    if rings is not None:
                        try:
                            rings.reclaim_all()
                        except Exception:
                            pass
        replacements: Dict[int, _WorkerHandle] = {}
        if not closed:
            respawn_ids = [handle.worker_id for handle in dead
                           if budgets.get(handle.worker_id, 0) < MAX_EARLY_CRASHES]
            with self._lock:
                ring_map = {worker_id: self._ensure_rings(worker_id)
                            for worker_id in respawn_ids}
            for handle in dead:
                if handle.worker_id not in ring_map:
                    continue  # deterministic startup crash: give the slot up
                replacements[handle.worker_id] = self._spawn(
                    handle.worker_id, generation=handle.generation + 1,
                    rings=ring_map[handle.worker_id])
        to_requeue: List[_Request] = []
        to_retry_direct: List[_Request] = []
        to_reject: List[_Request] = []
        with self._lock:
            for handle in dead:
                if self._workers.get(handle.worker_id) is not handle:
                    continue  # already replaced by an earlier reap
                orphans = list(handle.in_flight.values())
                handle.in_flight.clear()
                handle.batches.clear()
                replacement = replacements.get(handle.worker_id)
                if replacement is not None and not self._closed:
                    self._workers[handle.worker_id] = replacement
                    self.respawns += 1
                else:
                    # Slot given up (crash budget spent) or pool closing:
                    # stop re-reaping this dead handle every supervisor tick.
                    handle.stopping = True
                for request in orphans:
                    if request.attempts <= self.config.max_retries and not self._closed:
                        if request.kind == "predict":
                            to_requeue.append(request)
                        else:
                            self._requests.pop(request.request_id, None)
                            to_retry_direct.append(request)
                    else:
                        self._requests.pop(request.request_id, None)
                        to_reject.append(request)
            # Crash retries go to the *front* of the backlog: they were
            # admitted before everything queued behind them.
            if to_requeue:
                self.retried += len(to_requeue)
                self._backlog.requeue(to_requeue)
            for request in to_retry_direct:
                self.retried += 1
                try:
                    self._dispatch_direct(request)
                except PoolSaturated:
                    to_reject.append(request)
            for request in to_reject:
                self.failed += 1
            self._pump_locked()
        # A replacement that lost the install race (pool closed mid-spawn)
        # must not leak as an orphan process.
        for worker_id, replacement in replacements.items():
            with self._lock:
                installed = self._workers.get(worker_id) is replacement
            if not installed:
                replacement.process.terminate()
        for request in to_reject:
            request.future._reject(WorkerCrashed(
                f"worker {request.worker_id} died with this request in flight "
                f"(attempt {request.attempts}/{1 + self.config.max_retries})"))

    # -------------------------------------------------------------------- state
    @property
    def accepting(self) -> bool:
        with self._lock:
            return self._started and self._accepting and not self._closed

    def in_flight(self) -> int:
        with self._lock:
            return len(self._requests)

    def backlog_depth(self) -> int:
        with self._lock:
            return len(self._backlog)

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for handle in self._workers.values() if handle.alive)

    def stats(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the pool (for ``GET /stats``)."""
        with self._lock:
            ring_stats = {str(worker_id): rings.stats()
                          for worker_id, rings in sorted(self._rings.items())}
            return {
                "workers": [handle.describe() for handle in self._workers.values()],
                "accepting": self._started and self._accepting and not self._closed,
                "in_flight": len(self._requests),
                "backlog": len(self._backlog),
                "watermark": self.config.effective_watermark,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "retried": self.retried,
                "respawns": self.respawns,
                "rejected_saturated": self.rejected_saturated,
                "rejected_budget": self.rejected_budget,
                "transport": {
                    "kind": self.config.transport,
                    "fused_batching": self.config.fused_batching,
                    "inline_dispatches": self.inline_dispatches,
                    "inline_responses": self.inline_responses,
                    "assembly_fallbacks": self.assembly_fallbacks,
                    "rings": ring_stats or None,
                },
                "pipeline": {
                    "configured_depth": self.config.pipeline_depth,
                    "min_depth": MIN_PIPELINE_DEPTH,
                    "max_depth": MAX_PIPELINE_DEPTH,
                    "pipeline_depth_current": {
                        str(handle.worker_id): handle.pipeline.depth
                        for handle in self._workers.values()},
                    "raises": sum(handle.pipeline.raises
                                  for handle in self._workers.values()),
                    "lowers": sum(handle.pipeline.lowers
                                  for handle in self._workers.values()),
                },
                "latency": self.stage_metrics.to_dict(),
                "admission": self.admission.stats(),
                "secure": self._secure_stats_locked(),
            }

    def _secure_stats_locked(self) -> Optional[Dict[str, Any]]:
        """The ``secure`` subtree of :meth:`stats` (``None`` on float pools)."""
        if self.offline is None:
            return None
        protocol, frac_bits, truncation = self._secure_default
        return {
            "protocol": protocol,
            "frac_bits": frac_bits,
            "truncation": truncation,
            "strategy": self.secure_strategy,
            "rejected_precompute": self.rejected_precompute,
            "offline": self.offline.stats(),
        }

    def __repr__(self) -> str:
        return (f"WorkerPool(workers={self.config.workers}, "
                f"alive={self.alive_workers()}, in_flight={self.in_flight()})")
