"""Tests of seeding, logging tables and serialization helpers."""

import numpy as np
import pytest

from repro.nn import init
from repro.utils import (
    MetricLogger,
    current_seed,
    format_table,
    seed_everything,
    spawn_rng,
)


class TestSeeding:
    def test_seed_everything_reproducible_init(self):
        seed_everything(7)
        a = init.kaiming_normal((8, 8))
        seed_everything(7)
        b = init.kaiming_normal((8, 8))
        assert np.allclose(a, b)

    def test_current_seed(self):
        seed_everything(42)
        assert current_seed() == 42

    def test_spawn_rng_independent_streams(self):
        seed_everything(1)
        a = spawn_rng(0).random(5)
        b = spawn_rng(1).random(5)
        assert not np.allclose(a, b)

    def test_spawn_rng_reproducible(self):
        seed_everything(1)
        a = spawn_rng(3).random(5)
        seed_everything(1)
        b = spawn_rng(3).random(5)
        assert np.allclose(a, b)

    def test_numpy_global_seeded(self):
        seed_everything(9)
        a = np.random.rand(3)
        seed_everything(9)
        b = np.random.rand(3)
        assert np.allclose(a, b)


class TestMetricLogger:
    def test_log_and_mean(self):
        logger = MetricLogger()
        logger.log(loss=1.0)
        logger.log(loss=3.0)
        assert logger.mean("loss") == pytest.approx(2.0)
        assert logger.last("loss") == pytest.approx(3.0)

    def test_window_mean(self):
        logger = MetricLogger()
        for value in (10.0, 1.0, 3.0):
            logger.log(loss=value)
        assert logger.mean("loss", window=2) == pytest.approx(2.0)

    def test_missing_key_is_nan(self):
        assert np.isnan(MetricLogger().mean("nope"))

    def test_summary(self):
        logger = MetricLogger()
        logger.log(a=1.0, b=2.0)
        assert set(logger.summary()) == {"a", "b"}

    def test_elapsed_positive(self):
        assert MetricLogger().elapsed() >= 0.0


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["model", "acc"], [["vgg", 0.93], ["resnet", 0.91]],
                            title="Table X")
        assert "Table X" in text
        assert "model" in text and "vgg" in text
        assert "0.93" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["x", 1.0]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])  # header and separator same width

    def test_handles_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
