"""``repro.cli`` — command-line interface to the QuadraLib reproduction.

The CLI wraps the library's most common workflows so they can be driven
without writing Python — the "simple-to-use" usage mode the paper promises for
the open-source release::

    python -m repro neurons                 # Table-1 view of the neuron designs
    python -m repro profile --model vgg16 --neuron-type OURS
    python -m repro convert --model vgg16
    python -m repro train --model vgg8 --neuron-type OURS --epochs 2
    python -m repro ppml --model vgg8 --strategy quadratic_no_relu
    python -m repro explore --budget 8

Every subcommand prints fixed-width tables (the same renderer the benchmark
harness uses) and exits with status 0 on success.
"""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
