"""Factory helpers mirroring the paper's ``qua.type#()`` construction API.

The paper's code example builds models with calls like ``qua.type1(...)`` or
``qua.typenew(...)``.  This module exposes exactly that surface: every call
returns a ready-to-use layer module for the requested neuron type, choosing
the dense or convolutional implementation from the arguments.
"""

from __future__ import annotations

from typing import Optional, Union

from ..nn.module import Module
from .layers.hybrid import (
    HybridQuadraticConv2d,
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dT4,
    HybridQuadraticLinear,
)
from .layers.qconv import QuadraticConv2d, QuadraticConv2dT1
from .layers.qlinear import QuadraticLinear
from .neuron_types import ALIASES, available_types, resolve_type

#: Convolutional symbolic-backward (hybrid BP) implementations per neuron type.
_HYBRID_CONV_LAYERS = {
    "OURS": HybridQuadraticConv2d,
    "T4": HybridQuadraticConv2dT4,
    "T2_4": HybridQuadraticConv2dFan,
}


def quadratic_layer(neuron_type: str, in_features: int, out_features: int,
                    kernel_size: Optional[int] = None, stride: int = 1, padding: int = 0,
                    groups: int = 1, bias: bool = True,
                    hybrid_bp: bool = False) -> Module:
    """Create a quadratic layer of any registered type.

    If ``kernel_size`` is given a convolutional layer is built, otherwise a
    dense one.  ``hybrid_bp=True`` selects the symbolic-backward implementation
    where one exists (convolutions of the ``OURS``, ``T4`` and ``T2_4`` designs,
    dense layers of the ``OURS`` design); other designs fall back to composed
    autodiff.

    Raises
    ------
    ValueError
        If ``neuron_type`` is not a registered design or alias; the message
        lists every registered neuron type.
    """
    try:
        spec = resolve_type(neuron_type)
    except KeyError:
        # Regenerated from the registries on every raise, so newly registered
        # designs / aliases / hybrid implementations can never go missing here.
        raise ValueError(
            f"unknown neuron type {neuron_type!r} for quadratic_layer(); "
            f"registered neuron types: {', '.join(available_types())} "
            f"(aliases: {', '.join(sorted(ALIASES))}; hybrid_bp convolutions "
            f"exist for: {', '.join(sorted(_HYBRID_CONV_LAYERS))}, dense for: OURS)"
        ) from None
    if kernel_size is None:
        if hybrid_bp and spec.name == "OURS":
            return HybridQuadraticLinear(in_features, out_features, bias=bias)
        return QuadraticLinear(in_features, out_features, neuron_type=spec.name, bias=bias)
    if spec.full_rank:
        return QuadraticConv2dT1(in_features, out_features, kernel_size=kernel_size,
                                 stride=stride, padding=padding, neuron_type=spec.name,
                                 bias=bias)
    if hybrid_bp and spec.name in _HYBRID_CONV_LAYERS:
        hybrid_cls = _HYBRID_CONV_LAYERS[spec.name]
        return hybrid_cls(in_features, out_features, kernel_size=kernel_size,
                          stride=stride, padding=padding, groups=groups, bias=bias)
    return QuadraticConv2d(in_features, out_features, kernel_size=kernel_size, stride=stride,
                           padding=padding, groups=groups, neuron_type=spec.name, bias=bias)


def _make_factory(type_name: str):
    def factory(in_features: int, out_features: int, **kwargs) -> Module:
        return quadratic_layer(type_name, in_features, out_features, **kwargs)

    factory.__name__ = f"type_{type_name.lower()}"
    factory.__doc__ = (
        f"Create a quadratic layer with the {type_name} neuron design "
        f"({resolve_type(type_name).formula}). See :func:`quadratic_layer`."
    )
    return factory


#: ``qua.type#()``-style constructors, matching the paper's API naming.
type1 = _make_factory("T1")
type2 = _make_factory("T2")
type3 = _make_factory("T3")
type4 = _make_factory("T4")
type4_identity = _make_factory("T4_ID")
type_fan = _make_factory("T2_4")
typenew = _make_factory("OURS")
ours = typenew
