"""Element-wise differentiable primitives (arithmetic and pointwise math).

All operations support NumPy broadcasting; gradients are reduced back to the
operand shapes with :func:`repro.autodiff.function.unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from ..function import Context, Function, unbroadcast


class Add(Function):
    """``out = a + b`` with broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = np.shape(a), np.shape(b)
        return a + b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (
            unbroadcast(grad, ctx.a_shape) if ctx.needs_input_grad[0] else None,
            unbroadcast(grad, ctx.b_shape) if ctx.needs_input_grad[1] else None,
        )


class Sub(Function):
    """``out = a - b`` with broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = np.shape(a), np.shape(b)
        return a - b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (
            unbroadcast(grad, ctx.a_shape) if ctx.needs_input_grad[0] else None,
            unbroadcast(-grad, ctx.b_shape) if ctx.needs_input_grad[1] else None,
        )


class Mul(Function):
    """``out = a * b`` (Hadamard product) with broadcasting.

    This primitive is the computational heart of the paper's quadratic neuron:
    the second-order term ``(Wa X) ∘ (Wb X)`` is a Hadamard product of two
    first-order responses (paper Eq. 2, design insight 3).
    """

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(np.asarray(a), np.asarray(b))
        return a * b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved_tensors
        ga = unbroadcast(grad * b, a.shape) if ctx.needs_input_grad[0] else None
        gb = unbroadcast(grad * a, b.shape) if ctx.needs_input_grad[1] else None
        return ga, gb


class Div(Function):
    """``out = a / b`` with broadcasting."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(np.asarray(a), np.asarray(b))
        return a / b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved_tensors
        ga = unbroadcast(grad / b, a.shape) if ctx.needs_input_grad[0] else None
        gb = (
            unbroadcast(-grad * a / (b * b), b.shape)
            if ctx.needs_input_grad[1]
            else None
        )
        return ga, gb


class Neg(Function):
    """``out = -a``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        return -a

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (-grad,)


class Pow(Function):
    """``out = a ** exponent`` for a scalar exponent.

    The quadratic T2/T3 neuron designs square activations directly; this is
    the primitive they lower to.
    """

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, exponent: float) -> np.ndarray:
        ctx.exponent = float(exponent)
        ctx.save_for_backward(np.asarray(a))
        return a ** ctx.exponent

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved_tensors
        p = ctx.exponent
        ga = grad * p * (a ** (p - 1.0))
        return (ga, None)


class Exp(Function):
    """``out = exp(a)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved_tensors
        return (grad * out,)


class Log(Function):
    """``out = ln(a)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(np.asarray(a))
        return np.log(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved_tensors
        return (grad / a,)


class Sqrt(Function):
    """``out = sqrt(a)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = np.sqrt(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved_tensors
        return (grad / (2.0 * out),)


class Abs(Function):
    """``out = |a|`` (sub-gradient 0 at the kink)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(np.sign(a))
        return np.abs(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (sign,) = ctx.saved_tensors
        return (grad * sign,)


class ReLU(Function):
    """Rectified linear unit: ``out = max(a, 0)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        ctx.save_for_backward(mask)
        return a * mask

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved_tensors
        return (grad * mask,)


class LeakyReLU(Function):
    """Leaky ReLU with configurable negative slope."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
        mask = a > 0
        ctx.negative_slope = float(negative_slope)
        ctx.save_for_backward(mask)
        return np.where(mask, a, negative_slope * a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved_tensors
        return (np.where(mask, grad, ctx.negative_slope * grad), None)


class Sigmoid(Function):
    """Logistic sigmoid."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved_tensors
        return (grad * out * (1.0 - out),)


class Tanh(Function):
    """Hyperbolic tangent."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved_tensors
        return (grad * (1.0 - out * out),)


class Clip(Function):
    """Clamp values to ``[low, high]``; gradients vanish outside the range."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, low: float, high: float) -> np.ndarray:
        mask = (a >= low) & (a <= high)
        ctx.save_for_backward(mask)
        return np.clip(a, low, high)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (mask,) = ctx.saved_tensors
        return (grad * mask, None, None)


class Maximum(Function):
    """Element-wise maximum of two arrays (ties split evenly)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.save_for_backward((a > b).astype(a.dtype) + 0.5 * (a == b))
        return np.maximum(a, b)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (wa,) = ctx.saved_tensors
        ga = unbroadcast(grad * wa, ctx.a_shape) if ctx.needs_input_grad[0] else None
        gb = unbroadcast(grad * (1.0 - wa), ctx.b_shape) if ctx.needs_input_grad[1] else None
        return ga, gb


class Minimum(Function):
    """Element-wise minimum of two arrays (ties split evenly)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = np.asarray(a), np.asarray(b)
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.save_for_backward((a < b).astype(a.dtype) + 0.5 * (a == b))
        return np.minimum(a, b)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (wa,) = ctx.saved_tensors
        ga = unbroadcast(grad * wa, ctx.a_shape) if ctx.needs_input_grad[0] else None
        gb = unbroadcast(grad * (1.0 - wa), ctx.b_shape) if ctx.needs_input_grad[1] else None
        return ga, gb


class Where(Function):
    """Select from ``a`` where ``cond`` is true, otherwise from ``b``."""

    @staticmethod
    def forward(ctx: Context, cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cond = np.asarray(cond, dtype=bool)
        ctx.a_shape, ctx.b_shape = np.shape(a), np.shape(b)
        ctx.save_for_backward(cond)
        return np.where(cond, a, b)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (cond,) = ctx.saved_tensors
        ga = unbroadcast(grad * cond, ctx.a_shape) if ctx.needs_input_grad[1] else None
        gb = unbroadcast(grad * ~cond, ctx.b_shape) if ctx.needs_input_grad[2] else None
        return None, ga, gb
