"""Argument parsing and subcommand implementations of the QuadraLib CLI.

The CLI is a thin shell over :mod:`repro.experiment`: ``repro run`` executes a
declarative JSON spec (or a bundled preset) through the
:class:`~repro.experiment.Experiment` facade, and ``repro list`` prints the
component registries a spec may reference.  The pre-redesign workflow
subcommands (``train`` / ``convert`` / ``ppml`` / ``explore``) keep working as
deprecation shims that assemble the equivalent spec internally.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from ..backends import BACKENDS, backend_description, backend_names
from ..experiment import (
    ARCHITECTURES,
    CALLBACKS,
    DATASETS,
    MODELS,
    OPTIMIZERS,
    TRAINERS,
    DataSpec,
    Experiment,
    ExperimentSpec,
    ModelSpec,
    PPMLSpec,
    ProfileSpec,
    SearchSpec,
    TrainSpec,
    get_preset,
    neuron_names,
    preset_names,
)
from ..quadratic.neuron_types import NEURON_TYPES
from ..utils.deprecation import warn_deprecated
from ..utils.logging import format_table

#: Model families the CLI can build — the model registry's keys.
MODEL_CHOICES = tuple(MODELS.names())

#: Compute backends of the compiled inference path — the backend registry's
#: keys, so ``--backend`` help text and errors can never drift from the code.
BACKEND_CHOICES = tuple(backend_names())

#: Models usable by the image-workload subcommands (``mlp`` takes vectors).
IMAGE_MODEL_CHOICES = tuple(name for name in MODEL_CHOICES if name != "mlp")


class CLIError(Exception):
    """A user-facing CLI error (bad spec, unknown component) — no traceback."""


def _print(text: str, stream=None) -> None:
    print(text, file=stream or sys.stdout)


def _experiment(spec: ExperimentSpec, **kwargs) -> Experiment:
    """Wrap spec validation errors as :class:`CLIError` (internal errors pass)."""
    try:
        return Experiment(spec, **kwargs)
    except ValueError as error:
        raise CLIError(str(error)) from None


def _legacy_spec(args: argparse.Namespace, **overrides) -> ExperimentSpec:
    """The ExperimentSpec equivalent of the legacy model/data flag soup."""
    samples = getattr(args, "samples", 256)
    # LeNet and SmallConvNet size their classifier head from the input
    # resolution; the zoo backbones are resolution-agnostic.
    extra = ({"image_size": args.image_size}
             if args.model in ("lenet", "small_convnet") else {})
    spec = ExperimentSpec(
        seed=args.seed,
        model=ModelSpec(
            name=args.model,
            neuron_type=getattr(args, "neuron_type", "OURS"),
            num_classes=args.num_classes,
            width_multiplier=args.width_multiplier,
            extra=extra,
        ),
        data=DataSpec(
            num_samples=samples,
            test_samples=max(samples // 2, 16),
            num_classes=args.num_classes,
            image_size=args.image_size,
            seed=args.seed,
        ),
        train=TrainSpec(
            epochs=getattr(args, "epochs", 2),
            batch_size=getattr(args, "batch_size", 32),
            lr=getattr(args, "lr", 0.05),
            max_batches_per_epoch=getattr(args, "max_batches", None),
            seed=args.seed,
        ),
    )
    return spec.with_(**overrides) if overrides else spec


# --------------------------------------------------------------------------- #
# The new entry points: run / list
# --------------------------------------------------------------------------- #

def _print_run_summary(summary: dict) -> None:
    """Render the per-step results of an Experiment.run() as tables."""
    results = summary["results"]
    spec = summary["spec"]
    if "build" in results:
        build = results["build"]
        rows = [["model", build["model"]], ["neuron type", build["neuron_type"]],
                ["auto-build", "yes" if build["auto_build"] else "no"],
                ["parameters", f"{build['parameters']:,}"]]
        _print(format_table(["Metric", "Value"], rows,
                            title=f"Experiment '{spec['name']}': build"))
    if "fit" in results:
        fit = results["fit"]
        history = fit.get("history", {})
        rows = [[epoch + 1, round(loss, 4), round(train_acc, 3),
                 round(test_acc, 3) if test_acc is not None else "-"]
                for epoch, (loss, train_acc, test_acc)
                in enumerate(zip(history.get("train_loss", []),
                                 history.get("train_accuracy", []),
                                 history.get("test_accuracy", [])
                                 or [None] * len(history.get("train_loss", []))))]
        _print(format_table(["Epoch", "Train loss", "Train acc", "Test acc"], rows,
                            title=f"fit ({fit['seconds']:.1f}s)"))
    if "evaluate" in results:
        _print(format_table(["Metric", "Value"],
                            [["test accuracy", round(results["evaluate"]["test_accuracy"], 3)]],
                            title="evaluate"))
    if "profile" in results:
        profile = results["profile"]
        rows = [["parameters", f"{profile['parameters']:,}"],
                ["MACs (one sample)", f"{profile['macs']:,}"],
                [f"training memory @ batch {profile['memory_batch_size']}",
                 f"{profile['training_memory_bytes'] / 1024 ** 3:.2f} GiB"]]
        if "train_ms_per_batch" in profile:
            rows.append(["train latency / batch", f"{profile['train_ms_per_batch']:.1f} ms"])
            rows.append(["inference latency / batch",
                         f"{profile['inference_ms_per_batch']:.1f} ms"])
        _print(format_table(["Metric", "Value"], rows, title="profile"))
    if "ppml" in results:
        ppml = results["ppml"]
        rows = [["strategy", ppml["strategy"]], ["protocol", ppml["protocol"]],
                ["activations replaced", ppml["activations_replaced"]],
                ["layers quadratized", ppml["layers_quadratized"]],
                ["online latency before",
                 "not runnable" if ppml["online_latency_ms_before"] is None
                 else f"{ppml['online_latency_ms_before']:.1f} ms"],
                ["online latency after", f"{ppml['online_latency_ms_after']:.1f} ms"],
                ["online comm before",
                 "not runnable" if ppml["online_comm_mb_before"] is None
                 else f"{ppml['online_comm_mb_before']:.1f} MB"],
                ["online comm after", f"{ppml['online_comm_mb_after']:.1f} MB"]]
        _print(format_table(["Metric", "Value"], rows, title="ppml"))
    if "search" in results:
        search = results["search"]
        rows = [[entry["key"], f"{entry['parameters']:,}", round(entry["accuracy"], 3)]
                for entry in search["top"]]
        _print(format_table(["Candidate", "#Param", "Proxy acc"], rows,
                            title=f"{search['strategy']} search over "
                                  f"{search['cardinality']:,} structures "
                                  f"({search['evaluations_used']} evaluations)"))


def _load_spec(reference: str) -> ExperimentSpec:
    """Resolve a spec argument: a JSON file path or a bundled preset name."""
    if os.path.exists(reference):
        try:
            return ExperimentSpec.load(reference)
        # ValueError covers json.JSONDecodeError and spec validation;
        # TypeError/KeyError cover structurally wrong JSON (e.g. a list where
        # a section object belongs).  All are the user's file, not a bug, so
        # none deserve a traceback.
        except (ValueError, TypeError, KeyError) as error:
            raise CLIError(f"could not parse spec file '{reference}': {error}") from None
    try:
        return get_preset(reference)
    except ValueError:
        raise CLIError(
            f"'{reference}' is neither a spec file nor a bundled preset; "
            f"presets: {', '.join(preset_names())}") from None


def _checkpoint_payload(path: str) -> dict:
    """Load a training checkpoint for the CLI (readable errors, no traceback)."""
    from ..utils.serialization import load_training_checkpoint

    if not os.path.exists(path):
        raise CLIError(f"checkpoint '{path}' does not exist")
    try:
        return load_training_checkpoint(path)
    except (ValueError, OSError, KeyError) as error:
        raise CLIError(f"could not load checkpoint '{path}': {error}") from None


def _spec_from_checkpoint(payload: dict, path: str) -> ExperimentSpec:
    """The experiment spec a checkpoint embeds (written by Experiment.fit)."""
    spec_dict = payload.get("spec")
    if not spec_dict:
        raise CLIError(
            f"checkpoint '{path}' embeds no experiment spec (it was written by a "
            f"direct engine run); resume it through repro.engine.Trainer instead")
    try:
        return ExperimentSpec.from_dict(spec_dict)
    except (ValueError, TypeError, KeyError) as error:
        raise CLIError(f"checkpoint '{path}' embeds an unreadable spec: {error}") from None


def cmd_run(args: argparse.Namespace) -> int:
    """Execute a JSON experiment spec (or bundled preset) end to end."""
    spec = _load_spec(args.spec)
    if args.steps:
        spec = spec.with_(steps=[step.strip() for step in args.steps.split(",")])
    train_overrides = {}
    if args.checkpoint_dir is not None:
        train_overrides["checkpoint_dir"] = args.checkpoint_dir
    if args.checkpoint_every is not None:
        train_overrides["checkpoint_every"] = args.checkpoint_every
    if args.stop_after_epoch is not None:
        train_overrides["stop_after_epoch"] = args.stop_after_epoch
    if args.prefetch:
        train_overrides["prefetch"] = True
    if train_overrides:
        spec = spec.with_(train=spec.train.with_(**train_overrides))
    experiment = _experiment(spec)
    summary = experiment.run()
    if args.json:
        import json

        _print(json.dumps(summary, indent=2, default=float))
    else:
        _print_run_summary(summary)
    if args.out:
        experiment.save_results(args.out)
        _print(f"\nresults written to {args.out}")
    return 0


def _list_simple(title_singular: str, names, title: str):
    def printer(args: argparse.Namespace) -> int:
        _print(format_table([title_singular], [[name] for name in names()], title=title))
        return 0
    return printer


def _list_callbacks(args: argparse.Namespace) -> int:
    rows = [[name, next(iter((cls.__doc__ or "").strip().splitlines()), "")]
            for name, cls in CALLBACKS.items()]
    _print(format_table(["Callback", "Purpose"], rows,
                        title="Registered training-engine callbacks"))
    return 0


def _list_architectures(args: argparse.Namespace) -> int:
    rows = [[name, entry["family"], str(entry["cfg"])]
            for name, entry in ARCHITECTURES.items()]
    _print(format_table(["Architecture", "Family", "Configuration"], rows,
                        title="Registered structure configurations"))
    return 0


def _list_protocols(args: argparse.Namespace) -> int:
    from ..ppml import PROTOCOLS

    rows = []
    for proto in PROTOCOLS.values():
        costs = proto.costs
        rows.append([
            proto.name,
            "yes" if proto.supports_relu else "no",
            f"{costs.relu_us:g} us / {costs.relu_bytes:g} B",
            f"{costs.mult_us:g} us / {costs.mult_bytes:g} B",
            f"{proto.round_trip_us:g} us",
            proto.reference,
        ])
    _print(format_table(
        ["Protocol", "ReLU?", "ReLU cost", "Secure mult cost", "RTT", "Reference"],
        rows, title="Registered PPML protocols"))
    return 0


def _list_backends(args: argparse.Namespace) -> int:
    from ..inference.optimizer import OPT_LEVELS

    rows = [[name, "yes" if cls.exact else "no", backend_description(name)]
            for name, cls in BACKENDS.items()]
    _print(format_table(["Backend", "Exact?", "Description"], rows,
                        title="Registered compute backends (compiled inference)"))
    _print(f"\ngraph-optimizer levels: {', '.join(OPT_LEVELS)} "
           f"(compile_model(optimize=...), default 'default')")
    return 0


#: ``repro list`` families, generated from the registries themselves so the
#: help text, the error message and the dispatch can never drift apart.
_LIST_FAMILIES = {
    "models": _list_simple("Model", MODELS.names, "Registered models"),
    "neurons": lambda args: cmd_neurons(args),
    "datasets": _list_simple("Dataset", DATASETS.names, "Registered datasets"),
    "trainers": _list_simple("Trainer", TRAINERS.names, "Registered trainers"),
    "optimizers": _list_simple("Optimizer", OPTIMIZERS.names, "Registered optimizers"),
    "callbacks": _list_callbacks,
    "architectures": _list_architectures,
    "protocols": _list_protocols,
    "backends": _list_backends,
    "presets": _list_simple("Preset", preset_names, "Bundled experiment presets"),
}

#: Component families ``repro list`` can print (derived, not hand-maintained).
LIST_CHOICES = tuple(_LIST_FAMILIES)


def cmd_list(args: argparse.Namespace) -> int:
    """Print one component registry as a table."""
    printer = _LIST_FAMILIES.get(args.what)
    if printer is None:
        raise CLIError(
            f"unknown component family '{args.what}'; valid families: "
            f"{', '.join(LIST_CHOICES)}")
    return printer(args)


def cmd_infer(args: argparse.Namespace) -> int:
    """Serve a spec's model through the compiled micro-batching inference path."""
    import numpy as np

    from ..inference import measure_serving

    spec = _load_spec(args.spec)
    experiment = _experiment(spec)
    model = experiment.build()
    model.eval()

    rng = np.random.default_rng(spec.seed)
    input_shape = spec.data.input_shape
    samples = rng.standard_normal((args.samples,) + tuple(input_shape)).astype(np.float32)

    try:
        compiled = experiment.compile_inference(backend=args.backend,
                                                optimize=args.optimize)
    except ValueError as error:
        raise CLIError(str(error)) from None
    results = {
        "model": spec.model.name,
        "neuron_type": spec.model.effective_neuron_type,
        "backend": compiled.backend.name,
        "optimization": compiled.optimization.to_dict(),
        **measure_serving(model, compiled, samples,
                          max_batch_size=args.max_batch_size,
                          max_wait=args.max_wait, repeats=args.repeats),
    }
    experiment.results["infer"] = results
    if args.json:
        import json

        _print(json.dumps(results, indent=2, default=float))
    else:
        rows = [
            ["model", f"{results['model']} ({results['neuron_type']})"],
            ["compiled steps", results["compiled_steps"]],
            ["backend", results["backend"]],
            ["optimizer rewrites", sum(v for k, v in results["optimization"].items()
                                       if k != "level")],
            ["fallback modules", results["fallback_modules"]],
            ["max |compiled - eager|", f"{results['max_abs_diff']:.2e}"],
            ["eager latency / sample", f"{results['eager_ms_per_sample']:.2f} ms"],
            ["compiled latency / sample", f"{results['compiled_ms_per_sample']:.2f} ms"],
            ["speedup", f"{results['speedup']:.2f}x"],
            ["batched throughput", f"{results['throughput_samples_per_s']:,.0f} samples/s"],
            ["micro-batches", f"{results['batches']} "
                              f"(mean size {results['mean_batch_size']:.1f})"],
        ]
        _print(format_table(["Metric", "Value"], rows,
                            title=f"Compiled inference: {args.samples} samples, "
                                  f"max batch {args.max_batch_size}"))
    if args.out:
        experiment.save_results(args.out)
        _print(f"\nresults written to {args.out}")
    return 0


def cmd_secure_infer(args: argparse.Namespace) -> int:
    """Run a spec's model under the fixed-point secure-inference runtime.

    Builds the model, converts it with the requested PPML strategy, executes
    ``--samples`` single-sample queries under hybrid-protocol semantics
    (fixed-point arithmetic with truncation after every secure
    multiplication), and reports the executed protocol trace: measured MACs /
    Beaver-triple multiplications / garbled-circuit comparisons, whether they
    match the static ``ppml.analyse_model`` counts exactly, the estimated
    online latency/communication, and the fixed-point vs float drift.
    Exits 1 when the measured trace disagrees with the static analysis.
    """
    import json

    import numpy as np

    from .. import ppml
    from ..inference import compile_model

    if args.samples < 1:
        raise CLIError(f"--samples needs at least 1 query, got {args.samples}")
    spec = _load_spec(args.spec)
    experiment = _experiment(spec)
    model = experiment.build()
    model.eval()

    strategy = args.strategy if args.strategy is not None else spec.ppml.strategy
    protocol = args.protocol if args.protocol is not None else spec.ppml.protocol
    target = model
    conversion = None
    if strategy != "none":
        try:
            target, conversion = ppml.to_ppml_friendly(model, strategy=strategy,
                                                       inplace=False)
        except ValueError as error:
            raise CLIError(str(error)) from None
    try:
        secure = ppml.secure_compile(target, ppml.SecureConfig(
            protocol=protocol, frac_bits=args.frac_bits,
            truncation=args.truncation, seed=spec.seed))
    except (ppml.SecureExecutionError, ValueError, KeyError) as error:
        raise CLIError(str(error)) from None

    input_shape = tuple(spec.data.input_shape)
    static = ppml.analyse_model(target, input_shape, protocol=secure.protocol)
    reference = compile_model(target)
    rng = np.random.default_rng(spec.seed)
    samples = rng.standard_normal((args.samples,) + input_shape).astype(np.float32)

    max_drift = 0.0
    agreement = 0
    trace = None
    for sample in samples:
        batch = sample[None, ...]
        secure_out, trace_i = secure.run(batch)      # one client query at a time
        trace = trace if trace is not None else trace_i
        float_out = reference(batch)
        max_drift = max(max_drift, float(np.max(np.abs(secure_out - float_out))))
        agreement += int(np.argmax(secure_out) == np.argmax(float_out))
    estimate = trace.estimate()
    matches = trace.matches_report(static)

    results = {
        "model": spec.model.name,
        "neuron_type": spec.model.effective_neuron_type,
        "strategy": strategy,
        "protocol": secure.protocol.name,
        "frac_bits": args.frac_bits,
        "truncation": args.truncation,
        "samples": args.samples,
        "activations_replaced": conversion.activations_replaced if conversion else 0,
        "layers_quadratized": conversion.layers_quadratized if conversion else 0,
        "trace": trace.to_dict(),
        "matches_static": matches,
        "garbled_free": trace.garbled_free,
        "online_latency_ms": estimate.online_milliseconds,
        "online_comm_mb": estimate.online_megabytes,
        "runnable": estimate.runnable,
        "max_abs_drift": max_drift,
        "top1_agreement": agreement / max(args.samples, 1),
    }
    experiment.results["secure_infer"] = results
    if args.json:
        _print(json.dumps(results, indent=2, default=float))
    else:
        if args.per_layer:
            _print(ppml.format_trace(trace, per_layer=True))
            _print("")
        totals = trace.totals()
        rows = [
            ["model", f"{spec.model.name} ({spec.model.effective_neuron_type})"],
            ["conversion strategy", strategy],
            ["protocol", secure.protocol.name],
            ["fixed point", f"{args.frac_bits} fractional bits, {args.truncation} truncation"],
            ["measured MACs", f"{totals['macs']:,}"],
            ["measured secure mults", f"{totals['mult_ops']:,}"],
            ["measured GC comparisons", f"{totals['relu_ops']:,}"],
            ["garbled-circuit free", "yes" if trace.garbled_free else "no"],
            ["matches static analysis", "yes" if matches else "NO"],
            ["online latency (est.)",
             "not runnable" if not estimate.runnable
             else f"{estimate.online_milliseconds:.2f} ms "
                  f"({totals['rounds']} rounds)"],
            ["online communication",
             "not runnable" if not estimate.runnable
             else f"{estimate.online_megabytes:.2f} MB"],
            ["max |fixed - float|", f"{max_drift:.2e}"],
            ["top-1 agreement", f"{agreement}/{args.samples}"],
        ]
        _print(format_table(["Metric", "Value"], rows,
                            title=f"Secure inference: {args.samples} queries under "
                                  f"{secure.protocol.name}"))
        if not matches:
            diff = trace.count_diff([layer.operations for layer in static.layers])
            _print(f"\nmeasured/static disagreement: {diff}", stream=sys.stderr)
    if args.out:
        experiment.save_results(args.out)
        _print(f"\nresults written to {args.out}")
    return 0 if matches else 1


def _serve_config(args: argparse.Namespace):
    """Build a ServeConfig from the serve subcommand's flags."""
    from ..serve import ServeConfig

    if not args.secure:
        # The shared secure flag family only means something under --secure;
        # silently ignoring it would serve floats the caller thought were
        # fixed-point.
        touched = [flag for flag, untouched in (
            ("--protocol", args.protocol is None),
            ("--frac-bits", args.frac_bits == 12),
            ("--truncation", args.truncation == "nearest"),
            ("--strategy", args.strategy is None),
            ("--triple-pool-depth", args.triple_pool_depth == 0),
            ("--producer-workers", args.producer_workers == 0),
        ) if not untouched]
        if touched:
            raise CLIError(f"{', '.join(touched)} require(s) --secure")
    try:
        return ServeConfig(workers=args.workers, host=args.host, port=args.port,
                           max_batch_size=args.max_batch_size, max_wait=args.max_wait,
                           queue_depth=args.queue_depth, watermark=args.watermark,
                           cache_size=args.cache_size, backend=args.backend,
                           transport=args.transport,
                           latency_budget_ms=args.latency_budget_ms,
                           fused_batching=args.fused_batching,
                           secure=args.secure,
                           protocol=args.protocol or "",
                           frac_bits=args.frac_bits,
                           truncation=args.truncation,
                           strategy=args.strategy or "",
                           triple_pool_depth=args.triple_pool_depth,
                           pipeline_depth=args.pipeline_depth,
                           producer_workers=args.producer_workers)
    except ValueError as error:
        raise CLIError(str(error)) from None


def _serve_self_test(experiment: Experiment, server, num_requests: int,
                     as_json: bool) -> int:
    """POST synthetic samples at our own front door; verify against the
    in-process predictor bit for bit.  Returns the process exit code.

    On a secure server the reference is ``Experiment.secure_predictor()``
    with the same protocol / frac_bits / truncation / strategy: nearest
    truncation is deterministic, so the served fixed-point answers must
    match it bit for bit too.
    """
    import json
    import time
    import urllib.error
    import urllib.request

    import numpy as np

    spec = experiment.spec
    config = server.config
    rng = np.random.default_rng(spec.seed)
    samples = rng.standard_normal(
        (num_requests,) + tuple(spec.data.input_shape)).astype(np.float32)
    if config.secure:
        strategy = config.strategy or spec.ppml.strategy
        with experiment.secure_predictor(
                frac_bits=config.frac_bits, truncation=config.truncation,
                protocol=config.protocol or None,
                strategy=None if strategy == "none" else strategy,
                convert=strategy != "none") as predictor:
            expected = [predictor.predict(sample) for sample in samples]
    else:
        # max_batch_size=1 so both sides run strict batch-of-1 forwards — the
        # sequential HTTP requests below are batch-of-1 in the workers too.
        with experiment.predictor(max_batch_size=1) as predictor:
            expected = [predictor.predict(sample) for sample in samples]

    def post(sample: "np.ndarray") -> dict:
        body = json.dumps({"input": sample.tolist()}).encode()
        request = urllib.request.Request(
            f"{server.url}/predict", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            raise CLIError(
                f"self-test POST /predict failed with HTTP {error.code}: "
                f"{error.read().decode(errors='replace')[:200]}") from None
        except urllib.error.URLError as error:
            raise CLIError(f"self-test could not reach {server.url}: "
                           f"{error.reason}") from None

    outputs = []
    start = time.perf_counter()
    for sample in samples:
        outputs.append(np.asarray(post(sample)["output"], dtype=np.float32))
    elapsed = time.perf_counter() - start
    # A repeat of the *most recent* sample must come from the LRU cache —
    # the first one may legitimately have been evicted when N > cache size.
    # Skipped entirely when the operator disabled the cache (--cache-size 0).
    cache_hit = None
    if server.config.cache_size > 0:
        repeat = post(samples[-1])
        cache_hit = bool(repeat["cached"]) and np.array_equal(
            np.asarray(repeat["output"], dtype=np.float32), outputs[-1])

    identical = all(np.array_equal(out, exp) for out, exp in zip(outputs, expected))
    results = {
        "requests": num_requests,
        "bit_identical": identical,
        "cache_hit_identical": cache_hit,
        "seconds": elapsed,
        "throughput_rps": num_requests / elapsed if elapsed > 0 else float("inf"),
        "workers_alive": server.pool.alive_workers(),
    }
    if as_json:
        _print(json.dumps(results, indent=2, default=float))
    else:
        reference = ("Experiment.secure_predictor()" if config.secure
                     else "Experiment.predictor()")
        rows = [["requests answered", num_requests],
                [f"bit-identical to {reference}", "yes" if identical else "NO"],
                ["cache hit bit-identical",
                 "skipped (cache disabled)" if cache_hit is None
                 else ("yes" if cache_hit else "NO")],
                ["throughput", f"{results['throughput_rps']:.1f} req/s"],
                ["workers alive", results["workers_alive"]]]
        _print(format_table(["Check", "Result"], rows,
                            title=f"Serve self-test against {server.url}"))
    return 0 if identical and cache_hit is not False else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a spec's model over HTTP from a pool of worker processes.

    ``--from-checkpoint`` serves *trained* weights: the spec is read from the
    checkpoint file and the model's parameters are restored from it before
    the worker pool ships them out.
    """
    if (args.spec is None) == (args.from_checkpoint is None):
        raise CLIError("pass either a spec (file or preset) or --from-checkpoint, "
                       "not both and not neither")
    config = _serve_config(args)          # flag validation before the build
    if args.self_test is not None and args.self_test < 1:
        raise CLIError(f"--self-test needs at least 1 request, got {args.self_test}")
    origin = ""
    if args.from_checkpoint is not None:
        payload = _checkpoint_payload(args.from_checkpoint)
        if payload.get("task") != "classification":
            raise CLIError(
                f"--from-checkpoint needs a classification checkpoint, got task "
                f"'{payload.get('task')}'")
        spec = _spec_from_checkpoint(payload, args.from_checkpoint)
        experiment = _experiment(spec)
        model = experiment.build()
        try:
            model.load_state_dict(payload["adapter"]["model"])
        except (KeyError, ValueError) as error:
            raise CLIError(f"checkpoint weights do not fit the embedded spec's "
                           f"model: {error}") from None
        origin = f" (checkpoint epoch {payload.get('epoch')})"
    else:
        spec = _load_spec(args.spec)
        experiment = _experiment(spec)
        experiment.build()
    server = experiment.serve(config=config)
    with server:
        mode = ""
        if config.secure:
            mode = (f" [secure: {config.protocol or spec.ppml.protocol}, "
                    f"{config.frac_bits} frac bits, {config.truncation}]")
        _print(f"serving '{spec.name}'{origin} on {server.url} with {config.workers} "
               f"worker(s){mode} — POST /predict, GET /healthz, GET /stats")
        if args.self_test is not None:
            return _serve_self_test(experiment, server, args.self_test, args.json)
        _print("press Ctrl+C to drain and stop")
        import time

        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            _print("draining ...")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Predict serving capacity for a spec's model — no load test required.

    Combines the model's exact per-layer work counts, this host's measured
    kernel rates and an M/M/c model of the worker pool into predicted
    throughput, p50/p99 latency at the offered ``--qps`` and the worker
    count the rate requires (see :mod:`repro.capacity` / docs/capacity.md).
    With ``--secure`` one traced fixed-point forward adds the protocol round
    structure and the offline triple-pool refill requirements.
    """
    import json

    from ..serve import ServeConfig

    if args.qps <= 0:
        raise CLIError(f"--qps must be > 0, got {args.qps}")
    if not args.secure:
        # Same contract as `repro serve`: the shared secure flag family only
        # means something under --secure.
        touched = [flag for flag, untouched in (
            ("--protocol", args.protocol is None),
            ("--frac-bits", args.frac_bits == 12),
            ("--truncation", args.truncation == "nearest"),
            ("--strategy", args.strategy is None),
            ("--triple-pool-depth", args.triple_pool_depth == 0),
        ) if not untouched]
        if touched:
            raise CLIError(f"{', '.join(touched)} require(s) --secure")
    input_shape = None
    if args.input_shape:
        try:
            input_shape = tuple(int(dim) for dim in args.input_shape.split(","))
        except ValueError:
            raise CLIError(f"--input-shape must be comma-separated integers "
                           f"(e.g. '3,32,32' or '16'), got '{args.input_shape}'") from None
    spec = _load_spec(args.spec)
    experiment = _experiment(spec)
    try:
        config = ServeConfig(workers=args.workers,
                             max_batch_size=args.max_batch_size,
                             max_wait=args.max_wait, backend=args.backend,
                             secure=args.secure, protocol=args.protocol or "",
                             frac_bits=args.frac_bits, truncation=args.truncation,
                             strategy=args.strategy or "",
                             triple_pool_depth=args.triple_pool_depth)
        plan = experiment.plan(args.qps, input_shape=input_shape, config=config)
    except ValueError as error:
        raise CLIError(str(error)) from None
    results = experiment.results["plan"]
    if args.json:
        _print(json.dumps(results, indent=2, default=float))
    else:
        def _ms(value):
            return "over capacity" if value is None or value == float("inf") \
                else f"{value:.2f} ms"

        rows = [
            ["model", f"{results['model']} ({spec.model.effective_neuron_type})"],
            ["backend", results["backend"]],
            ["workers", plan.workers],
            ["offered load", f"{plan.qps:g} req/s"],
            ["expected batch", f"{plan.expected_batch:.2f} "
                               f"(cap {plan.max_batch_size})"],
            ["service time", f"{plan.service_ms:.3f} ms (compute "
                             f"{plan.compute_ms:.3f} + copy {plan.copy_ms:.3f} + "
                             f"dispatch {plan.dispatch_ms:.3f} + ipc "
                             f"{plan.ipc_ms:.3f})"],
            ["utilization", "over capacity" if not plan.stable
                            else f"{plan.utilization:.1%}"],
            ["predicted throughput", f"{plan.throughput_rps:,.1f} req/s "
                                     f"(ceiling {plan.max_throughput_rps:,.1f})"],
            ["predicted p50", _ms(plan.p50_ms if plan.stable else None)],
            ["predicted p99", _ms(plan.p99_ms if plan.stable else None)],
            ["required workers", f"{plan.required_workers} "
                                 f"(for {plan.qps:g} req/s)"],
        ]
        if plan.secure is not None:
            secure = plan.secure
            rows.extend([
                ["secure online time", f"{secure.work.online_ms:.3f} ms "
                                       f"({secure.work.rounds} rounds)"],
                ["offline refill needed", f"{secure.required_refill_rps:g} quanta/s "
                                          f"({secure.triples_per_s:,.0f} triples/s, "
                                          f"{secure.labels_per_s:,.0f} labels/s)"],
                ["pool depth", f"{secure.pool_depth} quanta "
                               f"(absorbs {secure.burst_absorbed_s:.2f} s burst)"],
            ])
        _print(format_table(["Metric", "Value"], rows,
                            title=f"Capacity plan at {plan.qps:g} req/s"))
    if args.out:
        experiment.save_results(args.out)
        _print(f"\nresults written to {args.out}")
    return 0


# --------------------------------------------------------------------------- #
# Informational subcommands
# --------------------------------------------------------------------------- #

def cmd_neurons(args: argparse.Namespace) -> int:
    """List the registered quadratic neuron designs (the paper's Table 1)."""
    rows = []
    for spec in NEURON_TYPES.values():
        rows.append([spec.name, spec.formula, spec.time_complexity, spec.space_complexity,
                     ", ".join(spec.issues) if spec.issues else "-", spec.reference])
    _print(format_table(
        ["Type", "Neuron format", "Time", "Space", "Issues", "Reference"], rows,
        title="Registered quadratic neuron designs (paper Table 1)",
    ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Parameters, MACs, training memory and latency of one model."""
    spec = _legacy_spec(args)
    try:
        spec = spec.with_(profile=ProfileSpec(batch_size=args.batch_size,
                                              latency=args.latency,
                                              latency_repeats=args.latency_repeats,
                                              per_layer=args.per_layer,
                                              compiled=args.compiled,
                                              backend=args.backend))
    except ValueError as error:
        raise CLIError(str(error)) from None
    experiment = _experiment(spec)
    profile = experiment.profile()
    rows = [
        ["parameters", f"{profile['parameters']:,}"],
        ["MACs (one sample)", f"{profile['macs']:,}"],
        ["training memory @ batch "
         f"{args.batch_size}", f"{profile['training_memory_bytes'] / 1024 ** 3:.2f} GiB"],
    ]
    if args.latency:
        rows.append(["train latency / batch", f"{profile['train_ms_per_batch']:.1f} ms"])
        rows.append(["inference latency / batch",
                     f"{profile['inference_ms_per_batch']:.1f} ms"])
        if "compiled_ms_per_batch" in profile:
            rows.append(["compiled latency / batch "
                         f"({profile['compiled_backend']})",
                         f"{profile['compiled_ms_per_batch']:.1f} ms"])
    _print(format_table(["Metric", "Value"], rows,
                        title=f"{args.model} (neuron type {args.neuron_type})"))
    if args.per_layer:
        layer_rows = [[layer["name"], layer["type"], f"{layer['parameters']:,}",
                       f"{layer['macs']:,}"] for layer in profile["layers"]]
        _print("")
        _print(format_table(["Layer", "Type", "#Param", "MACs"], layer_rows,
                            title="Per-layer profile"))
    return 0


# --------------------------------------------------------------------------- #
# Legacy workflow subcommands (deprecation shims over the experiment API)
# --------------------------------------------------------------------------- #

def cmd_convert(args: argparse.Namespace) -> int:
    """Convert a first-order model to a QDNN with the auto-builder."""
    from ..builder.auto_builder import AutoBuilder
    from ..utils.seed import seed_everything

    warn_deprecated(
        "the 'repro convert' subcommand",
        "'repro run <spec.json>' with ModelSpec(auto_build=True)",
    )
    seed_everything(args.seed)
    spec = _legacy_spec(args)
    model = spec.model.with_(neuron_type="first_order").build()
    params_before = model.num_parameters()
    builder = AutoBuilder(neuron_type=args.neuron_type, hybrid_bp=args.hybrid_bp,
                          convert_linear=args.convert_linear)
    report = builder.convert(model)
    rows = [
        ["converted layers", report.converted_layers],
        ["parameters before", f"{params_before:,}"],
        ["parameters after", f"{report.parameters_after:,}"],
        ["parameter ratio", f"{report.parameter_ratio:.2f}x"],
    ]
    _print(format_table(["Metric", "Value"], rows,
                        title=f"Auto-builder conversion of {args.model} to {args.neuron_type}"))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train a model on the synthetic classification workload.

    With ``--resume <checkpoint>`` the run is rebuilt entirely from the spec
    embedded in the checkpoint file — model, data, recipe and RNG streams all
    restore, so the completed training is bit-identical to one that was never
    interrupted.
    """
    if args.resume is not None:
        payload = _checkpoint_payload(args.resume)
        spec = _spec_from_checkpoint(payload, args.resume)
        # Clear any stop request the interrupted run carried; keep its
        # checkpoint_dir so the resumed run goes on writing checkpoints.
        spec = spec.with_(train=spec.train.with_(resume_from=args.resume,
                                                 stop_after_epoch=None))
        experiment = _experiment(spec)
        history = experiment.fit()
        title = (f"Resumed '{spec.name}' from epoch {payload.get('epoch')} "
                 f"of {spec.train.epochs}")
    else:
        warn_deprecated(
            "the 'repro train' subcommand",
            "'repro run <spec.json>' (see 'repro list presets' for starting points)",
        )
        experiment = _experiment(_legacy_spec(args))
        history = experiment.fit()
        title = f"Training {args.model} ({args.neuron_type}) on synthetic data"
    test_accuracy = history.test_accuracy or [None] * len(history.train_loss)
    rows = [[epoch + 1, round(loss, 4), round(train_acc, 3),
             round(test_acc, 3) if test_acc is not None else "-"]
            for epoch, (loss, train_acc, test_acc)
            in enumerate(zip(history.train_loss, history.train_accuracy, test_accuracy))]
    _print(format_table(["Epoch", "Train loss", "Train acc", "Test acc"], rows,
                        title=title))
    return 0


def cmd_ppml(args: argparse.Namespace) -> int:
    """PPML online-cost analysis before/after conversion."""
    warn_deprecated(
        "the 'repro ppml' subcommand",
        "'repro run <spec.json>' with a PPMLSpec and steps=['build', 'ppml']",
    )
    spec = _legacy_spec(args)
    spec = spec.with_(model=spec.model.with_(neuron_type="first_order"),
                      ppml=PPMLSpec(strategy=args.strategy, protocol=args.protocol))
    experiment = _experiment(spec)
    _, result = experiment.to_ppml()
    rows = [
        ["strategy", args.strategy],
        ["protocol", args.protocol],
        ["activations replaced", result["activations_replaced"]],
        ["layers quadratized", result["layers_quadratized"]],
        ["online latency before",
         "not runnable" if result["online_latency_ms_before"] is None
         else f"{result['online_latency_ms_before']:.1f} ms"],
        ["online latency after", f"{result['online_latency_ms_after']:.1f} ms"],
        ["online comm before",
         "not runnable" if result["online_comm_mb_before"] is None
         else f"{result['online_comm_mb_before']:.1f} MB"],
        ["online comm after", f"{result['online_comm_mb_after']:.1f} MB"],
    ]
    _print(format_table(["Metric", "Value"], rows,
                        title=f"PPML conversion of {args.model} under {args.protocol}"))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Random / evolutionary exploration on the synthetic proxy task."""
    warn_deprecated(
        "the 'repro explore' subcommand",
        "'repro run <spec.json>' with a SearchSpec and steps=['search']",
    )
    spec = _legacy_spec(args)
    spec = spec.with_(
        search=SearchSpec(
            strategy=args.strategy, budget=args.budget, top=args.top,
            epochs=args.epochs, batch_size=args.batch_size,
            max_batches_per_epoch=args.max_batches, lr=args.lr,
            space={"min_stages": 2, "max_stages": 3,
                   "min_convs_per_stage": 1, "max_convs_per_stage": 2,
                   "width_choices": [16, 32, 64],
                   "neuron_types": ["first_order", "OURS"]},
        ),
        steps=["search"],
    )
    experiment = _experiment(spec)
    result = experiment.search()
    search = experiment.results["search"]
    rows = [[e.genome.key(), e.genome.neuron_type, e.genome.num_conv_layers,
             f"{e.parameters:,}", round(e.accuracy, 3)] for e in result.top(args.top)]
    _print(format_table(["Candidate", "Neuron", "#Conv", "#Param", "Proxy acc"], rows,
                        title=f"{args.strategy} search over {search['cardinality']:,} structures "
                              f"({search['evaluations_used']} evaluations)"))
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #

def _add_model_arguments(parser: argparse.ArgumentParser, default_model: str = "vgg8") -> None:
    parser.add_argument("--model", default=default_model, choices=IMAGE_MODEL_CHOICES,
                        help="model family from the registry ('repro list models')")
    parser.add_argument("--neuron-type", default="OURS",
                        help="neuron design (first_order, OURS, T2, T3, T4, fan, ...)")
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--width-multiplier", type=float, default=1.0,
                        help="scale every channel count (use <1 on slow machines)")
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)


def _add_training_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--samples", type=int, default=256, help="synthetic training samples")
    parser.add_argument("--max-batches", type=int, default=None,
                        help="cap batches per epoch (for quick smoke runs)")
    parser.add_argument("--lr", type=float, default=0.05)


def build_parser() -> argparse.ArgumentParser:
    """The top-level ``python -m repro`` argument parser."""
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="QuadraLib reproduction: quadratic neural network tooling",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="execute a declarative experiment spec (JSON file or preset name)")
    run.add_argument("spec", help="path to a spec JSON file, or a bundled preset name")
    run.add_argument("--steps", default=None,
                     help="comma-separated pipeline steps overriding the spec "
                          "(build,fit,evaluate,profile,ppml,search)")
    run.add_argument("--out", default=None, help="write the results JSON to this path")
    run.add_argument("--json", action="store_true",
                     help="print the results as JSON instead of tables")
    run.add_argument("--checkpoint-dir", default=None,
                     help="write full training checkpoints (model + optimizer + "
                          "scheduler + RNG + history) to this directory")
    run.add_argument("--checkpoint-every", type=int, default=None, metavar="K",
                     help="checkpoint every K completed epochs (default 1)")
    run.add_argument("--stop-after-epoch", type=int, default=None, metavar="N",
                     help="stop the fit step cleanly after N total epochs "
                          "(simulates an interrupt; resume with 'repro train --resume')")
    run.add_argument("--prefetch", action="store_true",
                     help="overlap batch assembly with compute via the "
                          "prefetching data pipeline")
    run.set_defaults(func=cmd_run)

    lister = subparsers.add_parser("list", help="list registered components")
    lister.add_argument("what", metavar="family",
                        help=f"component family: {', '.join(LIST_CHOICES)}")
    lister.set_defaults(func=cmd_list)

    infer = subparsers.add_parser(
        "infer", help="compiled micro-batched inference on a spec's model")
    infer.add_argument("spec", help="path to a spec JSON file, or a bundled preset name")
    infer.add_argument("--samples", type=int, default=64,
                       help="synthetic samples to serve through the predictor")
    infer.add_argument("--max-batch-size", type=int, default=8,
                       help="micro-batch size cap of the BatchedPredictor")
    infer.add_argument("--max-wait", type=float, default=0.002,
                       help="seconds the predictor waits to fill a micro-batch")
    infer.add_argument("--repeats", type=int, default=5,
                       help="timing repetitions for the latency comparison")
    infer.add_argument("--backend", default=None,
                       help="compute backend for the compiled path: "
                            f"{', '.join(BACKEND_CHOICES)} (see 'repro list backends')")
    infer.add_argument("--optimize", default=None,
                       help="graph-optimizer level: none, default, full")
    infer.add_argument("--out", default=None, help="write the results JSON to this path")
    infer.add_argument("--json", action="store_true",
                       help="print the results as JSON instead of a table")
    infer.set_defaults(func=cmd_infer)

    # One flag family for every secure entry point: 'secure-infer' and
    # 'serve --secure' inherit these via parents=[], so the two commands can
    # never drift apart (tests/cli/test_secure_infer.py asserts this).
    secure_flags = argparse.ArgumentParser(add_help=False)
    secure_flags.add_argument("--protocol", default=None,
                              help="PPML protocol preset costing the trace (default: "
                                   "the spec's; see 'repro list protocols')")
    secure_flags.add_argument("--frac-bits", type=int, default=12,
                              help="fixed-point fractional bits of the secure execution")
    secure_flags.add_argument("--truncation", default="nearest",
                              choices=("nearest", "stochastic"),
                              help="rounding after each secure multiplication")
    secure_flags.add_argument("--strategy", default=None,
                              help="PPML conversion applied before compilation: square, "
                                   "quadratic, quadratic_no_relu, or 'none' to run the "
                                   "model as-is (default: the spec's)")

    secure = subparsers.add_parser(
        "secure-infer",
        parents=[secure_flags],
        help="execute a spec's model under fixed-point PPML protocol semantics "
             "and validate the measured protocol trace")
    secure.add_argument("spec", help="path to a spec JSON file, or a bundled preset name")
    secure.add_argument("--samples", type=int, default=4,
                        help="single-sample client queries to execute")
    secure.add_argument("--per-layer", action="store_true",
                        help="also print the executed trace step by step")
    secure.add_argument("--out", default=None, help="write the results JSON to this path")
    secure.add_argument("--json", action="store_true",
                        help="print the results as JSON instead of a table")
    secure.set_defaults(func=cmd_secure_infer)

    serve = subparsers.add_parser(
        "serve", parents=[secure_flags],
        help="serve a spec's model over HTTP from a pool of worker processes")
    serve.add_argument("spec", nargs="?", default=None,
                       help="path to a spec JSON file, or a bundled preset name "
                            "(omit when using --from-checkpoint)")
    serve.add_argument("--from-checkpoint", default=None, metavar="CKPT",
                       help="serve the trained weights of a training checkpoint "
                            "(spec and parameters both come from the file)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes, each with its own compiled model")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="TCP port for the HTTP front door (0 = OS-assigned)")
    serve.add_argument("--max-batch-size", type=int, default=8,
                       help="micro-batch cap of each worker's predictor")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="seconds each worker waits to fill a micro-batch")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="bound of each worker's request queue")
    serve.add_argument("--watermark", type=int, default=0,
                       help="shed load (HTTP 503) beyond this many requests in "
                            "flight (0 = workers * queue-depth)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="LRU response cache entries (0 disables caching)")
    serve.add_argument("--backend", default="numpy",
                       help="compute backend each worker compiles with: "
                            f"{', '.join(BACKEND_CHOICES)} (see 'repro list backends')")
    serve.add_argument("--transport", default="shm", choices=("shm", "pipe"),
                       help="tensor transport to the workers: zero-copy "
                            "shared-memory rings (default) or pickled pipes "
                            "(the bit-identical reference path)")
    serve.add_argument("--latency-budget-ms", type=float, default=0.0,
                       help="admission control: shed requests (HTTP 429 + "
                            "Retry-After) whose estimated queue wait exceeds "
                            "this budget (0 disables)")
    serve.add_argument("--fused-batching", action="store_true",
                       help="run each coalesced batch as one fused forward "
                            "(max throughput; trades away bit-identity with "
                            "the batch-of-1 reference)")
    serve.add_argument("--secure", action="store_true",
                       help="serve int64 fixed-point PPML inference: workers host "
                            "SecurePredictors, a traced warm-up sizes the offline "
                            "Beaver-triple/GC-label pools, and /stats reports "
                            "per-request protocol accounting")
    serve.add_argument("--pipeline-depth", type=int, default=0,
                       help="batches in flight per worker: 0 (default) adapts "
                            "within 1..4 from measured stage percentiles, "
                            "1..4 pins the depth")
    serve.add_argument("--triple-pool-depth", type=int, default=0,
                       help="offline pool depth in request quanta (0 = sized from "
                            "workers * max pipeline depth * max-batch-size)")
    serve.add_argument("--producer-workers", type=int, default=0,
                       help="offline-phase producer processes per triple pool "
                            "(0 = in-process producer thread; requires --secure)")
    serve.add_argument("--self-test", type=int, default=None, metavar="N",
                       help="serve N synthetic requests against this server, verify "
                            "them bit-for-bit against the in-process predictor, then exit")
    serve.add_argument("--json", action="store_true",
                       help="print the self-test results as JSON instead of a table")
    serve.set_defaults(func=cmd_serve)

    plan = subparsers.add_parser(
        "plan", parents=[secure_flags],
        help="predict serving throughput / latency / worker count from first "
             "principles (measured kernel rates + M/M/c queueing; no load test)")
    plan.add_argument("spec", help="path to a spec JSON file, or a bundled preset name")
    plan.add_argument("--qps", type=float, required=True,
                      help="offered request rate to plan for (requests/second)")
    plan.add_argument("--workers", type=int, default=2,
                      help="worker processes of the deployment being planned")
    plan.add_argument("--max-batch-size", type=int, default=8,
                      help="micro-batch cap of each worker's predictor")
    plan.add_argument("--max-wait", type=float, default=0.002,
                      help="seconds each worker waits to fill a micro-batch")
    plan.add_argument("--backend", default="numpy",
                      help="compute backend whose measured rates price the plan: "
                           f"{', '.join(BACKEND_CHOICES)}")
    plan.add_argument("--secure", action="store_true",
                      help="plan secure serving: one traced fixed-point forward "
                           "adds protocol rounds and triple-pool refill needs")
    plan.add_argument("--triple-pool-depth", type=int, default=0,
                      help="offline pool depth in request quanta (0 = sized from "
                           "workers * max pipeline depth * max-batch-size)")
    plan.add_argument("--input-shape", default=None, metavar="D0,D1,...",
                      help="per-sample input shape override (e.g. '16' for the "
                           "mlp zoo model; default: the spec's image shape)")
    plan.add_argument("--out", default=None, help="write the results JSON to this path")
    plan.add_argument("--json", action="store_true",
                      help="print the plan as JSON instead of a table")
    plan.set_defaults(func=cmd_plan)

    neurons = subparsers.add_parser("neurons", help="list the quadratic neuron designs (Table 1)")
    neurons.set_defaults(func=cmd_neurons)

    profile = subparsers.add_parser("profile", help="parameters / MACs / memory of a model")
    _add_model_arguments(profile, default_model="vgg16")
    profile.add_argument("--batch-size", type=int, default=256)
    profile.add_argument("--per-layer", action="store_true", help="also print per-layer rows")
    profile.add_argument("--latency", action="store_true", help="measure forward latency")
    profile.add_argument("--latency-repeats", type=int, default=3)
    profile.add_argument("--compiled", action="store_true",
                         help="with --latency, also time the compiled forward")
    profile.add_argument("--backend", default="numpy",
                         help="compute backend of the compiled timing: "
                              f"{', '.join(BACKEND_CHOICES)}")
    profile.set_defaults(func=cmd_profile)

    convert = subparsers.add_parser(
        "convert", help="[deprecated: use 'run'] auto-build a QDNN from a first-order model")
    _add_model_arguments(convert, default_model="vgg16")
    convert.add_argument("--hybrid-bp", action="store_true",
                         help="use the memory-efficient symbolic-backward layers")
    convert.add_argument("--convert-linear", action="store_true",
                         help="also convert dense layers")
    convert.set_defaults(func=cmd_convert)

    train = subparsers.add_parser(
        "train", help="train on the synthetic workload (--resume continues a "
                      "checkpoint; the flag-soup form is deprecated: use 'run')")
    _add_model_arguments(train)
    _add_training_arguments(train)
    train.add_argument("--resume", default=None, metavar="CKPT",
                       help="resume from a training checkpoint written by "
                            "'repro run --checkpoint-dir' (model flags are ignored; "
                            "the run rebuilds from the spec inside the checkpoint)")
    train.set_defaults(func=cmd_train)

    ppml = subparsers.add_parser(
        "ppml", help="[deprecated: use 'run'] PPML online-cost analysis and conversion")
    _add_model_arguments(ppml)
    ppml.add_argument("--strategy", default="quadratic_no_relu",
                      choices=("square", "quadratic", "quadratic_no_relu"))
    ppml.add_argument("--protocol", default="delphi", choices=("delphi", "gazelle", "cryptonets"))
    ppml.set_defaults(func=cmd_ppml)

    explore = subparsers.add_parser(
        "explore", help="[deprecated: use 'run'] architecture search on the proxy task")
    _add_model_arguments(explore)
    _add_training_arguments(explore)
    explore.add_argument("--strategy", default="random", choices=("random", "evolution"))
    explore.add_argument("--budget", type=int, default=8, help="proxy evaluations")
    explore.add_argument("--top", type=int, default=5, help="candidates to print")
    explore.set_defaults(func=cmd_explore)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    import warnings

    # Deprecation shims must be visible on the console (Python hides
    # DeprecationWarning outside __main__ by default).
    warnings.simplefilter("default", DeprecationWarning)
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except CLIError as error:
        # Spec validation and registry lookups; a traceback would bury the
        # message.  Internal errors still propagate with a full traceback.
        _print(f"error: {error}", stream=sys.stderr)
        return 2
