"""Deterministic load generation + tail-latency assertion helpers.

Shared by the serving tests and ``benchmarks/bench_serving_scaleout.py`` so
the numbers CI gates on and the numbers the benchmark reports come from the
same code path.  Two load models:

* **closed loop** — N concurrent clients, each issuing its next request the
  moment the previous one answers.  Measures saturated throughput; latency
  under a closed loop is flattered by coordinated omission (a slow server
  slows its own clients down).
* **open loop** — requests fire at schedule offsets drawn from a seeded
  Poisson process, *regardless* of how slow the server is.  This is the
  model SLOs are written against: queueing delay shows up in the tail
  instead of silently lowering the offered load.

Everything random is seeded (schedules are reproducible run to run), and
latency percentiles reuse :func:`repro.serve.metrics.percentile` — the same
nearest-rank estimator ``GET /stats`` reports, so a test asserting on the
generator and a dashboard reading the server can never disagree about what
"p99" means.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.serve.metrics import PERCENTILES, percentile

#: a submit callable: (request index) -> HTTP-ish status code (int).
Submit = Callable[[int], int]


@dataclass
class RequestRecord:
    """One issued request, as the *client* saw it."""

    index: int
    scheduled_s: float      # intended offset from run start (0 = closed loop)
    started_s: float        # actual offset the request fired at
    latency_ms: float
    status: int

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass
class LoadReport:
    """Everything a load run produced, with percentile accessors."""

    records: List[RequestRecord]
    duration_s: float
    mode: str = "closed"

    def latencies_ms(self, only_ok: bool = True) -> List[float]:
        return [record.latency_ms for record in self.records
                if record.ok or not only_ok]

    def percentile_ms(self, q: float, only_ok: bool = True) -> float:
        return percentile(self.latencies_ms(only_ok), q)

    def status_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def completed(self) -> int:
        return sum(1 for record in self.records if record.ok)

    @property
    def shed(self) -> int:
        return sum(1 for record in self.records if record.status in (429, 503))

    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest (what the benchmark prints per scenario)."""
        return {
            "mode": self.mode,
            "requests": len(self.records),
            "completed": self.completed,
            "shed": self.shed,
            "status_counts": {str(k): v for k, v in self.status_counts().items()},
            "duration_s": round(self.duration_s, 3),
            "throughput_rps": round(self.throughput_rps(), 2),
            **{f"p{q:g}_ms": round(self.percentile_ms(q), 3)
               for q in PERCENTILES},
        }


def poisson_schedule(rate_rps: float, count: int, seed: int = 0) -> List[float]:
    """Arrival offsets (seconds) of ``count`` Poisson arrivals at ``rate_rps``.

    Deterministic for a given ``(rate, count, seed)`` — reruns replay the
    exact same schedule, so a latency regression is a server change, not a
    load-generator roll of the dice.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=count)
    return np.cumsum(gaps).tolist()


def run_open_loop(submit: Submit, schedule: Sequence[float],
                  join_timeout_s: float = 120.0) -> LoadReport:
    """Fire one request per schedule entry, at that offset, come what may.

    Each request runs on its own thread so a slow answer never delays the
    arrivals behind it — the definition of an open loop.
    """
    records: List[Optional[RequestRecord]] = [None] * len(schedule)
    start = time.perf_counter()

    def fire(index: int, offset: float) -> None:
        delay = offset - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        issued = time.perf_counter()
        status = _safe_submit(submit, index)
        records[index] = RequestRecord(
            index=index, scheduled_s=offset, started_s=issued - start,
            latency_ms=(time.perf_counter() - issued) * 1000.0, status=status)

    threads = [threading.Thread(target=fire, args=(index, offset), daemon=True)
               for index, offset in enumerate(schedule)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=join_timeout_s)
    duration = time.perf_counter() - start
    return LoadReport([record for record in records if record is not None],
                      duration, mode="open")


def run_closed_loop(submit: Submit, clients: int,
                    requests_per_client: int,
                    join_timeout_s: float = 120.0) -> LoadReport:
    """``clients`` workers, each issuing its next request on completion."""
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    counter = itertools.count()
    records: List[RequestRecord] = []
    lock = threading.Lock()
    start = time.perf_counter()

    def client() -> None:
        for _ in range(requests_per_client):
            index = next(counter)
            issued = time.perf_counter()
            status = _safe_submit(submit, index)
            record = RequestRecord(
                index=index, scheduled_s=0.0, started_s=issued - start,
                latency_ms=(time.perf_counter() - issued) * 1000.0,
                status=status)
            with lock:
                records.append(record)

    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=join_timeout_s)
    duration = time.perf_counter() - start
    records.sort(key=lambda record: record.index)
    return LoadReport(records, duration, mode="closed")


def _safe_submit(submit: Submit, index: int) -> int:
    try:
        return int(submit(index))
    except Exception:  # noqa: BLE001 — a client error is a failed request
        return 599


def check_percentile(report: LoadReport, q: float, limit_ms: float,
                     slack_ms: float = 0.0) -> Dict[str, Any]:
    """Evaluate one tail-latency SLO; returns a verdict dict (never raises).

    ``slack_ms`` is the CI-safety tolerance: shared runners stall whole
    processes for tens of milliseconds, and a tail assertion without slack
    converts scheduler noise into red builds.  The benchmark prints the
    verdict in report-only mode; the tests feed it to
    :func:`assert_percentile_under`.
    """
    value = report.percentile_ms(q)
    return {
        "percentile": q,
        "value_ms": round(value, 3),
        "limit_ms": limit_ms,
        "slack_ms": slack_ms,
        "ok": value <= limit_ms + slack_ms,
    }


def assert_percentile_under(report: LoadReport, q: float, limit_ms: float,
                            slack_ms: float = 0.0) -> None:
    verdict = check_percentile(report, q, limit_ms, slack_ms)
    assert verdict["ok"], (
        f"p{q:g} latency {verdict['value_ms']}ms exceeds SLO "
        f"{limit_ms}ms (+{slack_ms}ms CI slack) over {len(report.records)} "
        f"requests; status mix: {report.status_counts()}")
