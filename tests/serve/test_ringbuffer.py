"""Property/soak tests for the shared-memory ring transport.

The ring is the foundation the zero-copy data plane stands on, so this file
leans adversarial: randomized producer/consumer interleavings, constant
wraparound, full-ring backpressure, crash-style reclamation — asserting no
frame is ever lost, torn, reordered within a lease, or served stale.
All randomness is seeded; the soak is sized to stay well under CI budgets.
"""

from __future__ import annotations

import queue
import threading

import numpy as np
import pytest

from repro.serve.shm import (
    RingFull,
    ShmRing,
    StaleFrame,
    WorkerRings,
)


@pytest.fixture()
def ring():
    with ShmRing(slots=4, slot_bytes=4096) as r:
        yield r


def payload(seed: int, shape=(4, 8)) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestRoundTrip:
    def test_write_read_is_bit_identical(self, ring):
        tensor = payload(0)
        slot, seq = ring.lease()
        frame = ring.write(slot, seq, tensor)
        assert frame.shape == tensor.shape and frame.dtype == "float32"
        out = ring.read(frame)
        assert np.array_equal(out, tensor)
        assert out.flags.writeable is False     # consumers get a frozen view
        ring.release(slot, seq)

    def test_views_are_zero_copy(self, ring):
        tensor = payload(1)
        slot, seq = ring.lease()
        ring.write(slot, seq, tensor)
        view = ring.view(slot, seq, tensor.shape, "float32", writable=True)
        view[0, 0] = 42.0                       # write through the mapping...
        frame_view = ring.view(slot, seq, tensor.shape, "float32")
        assert frame_view[0, 0] == 42.0         # ...is what a reader sees
        ring.release(slot, seq)

    def test_oversized_tensor_is_refused_not_truncated(self, ring):
        slot, seq = ring.lease()
        with pytest.raises(ValueError, match="does not fit"):
            ring.write(slot, seq, np.zeros(10_000, dtype=np.float32))
        ring.release(slot, seq)

    def test_dtype_and_shape_travel_in_the_frame(self, ring):
        tensor = np.arange(12, dtype=np.int64).reshape(3, 4)
        slot, seq = ring.lease()
        frame = ring.write(slot, seq, tensor)
        out = ring.read(frame)
        assert out.dtype == np.int64 and np.array_equal(out, tensor)
        ring.release(slot, seq)


class TestBackpressureAndWraparound:
    def test_full_ring_raises_ring_full(self, ring):
        leases = [ring.lease() for _ in range(4)]
        with pytest.raises(RingFull):
            ring.lease()
        assert ring.stats()["full_rejections"] == 1
        slot, seq = leases[0]
        ring.release(slot, seq)
        assert ring.lease()[0] == slot           # freed slot is usable again

    def test_cursor_wraps_and_reuses_slots_round_robin(self, ring):
        seen = []
        for _ in range(12):                      # 3 full revolutions of 4 slots
            slot, seq = ring.lease()
            seen.append(slot)
            ring.release(slot, seq)
        assert seen == [0, 1, 2, 3] * 3

    def test_sequence_numbers_increase_per_slot_forever(self, ring):
        seqs = []
        for _ in range(8):
            slot, seq = ring.lease()
            if slot == 0:
                seqs.append(seq)
            ring.release(slot, seq)
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


class TestStaleness:
    def test_release_then_read_raises_stale(self, ring):
        tensor = payload(2)
        slot, seq = ring.lease()
        frame = ring.write(slot, seq, tensor)
        ring.release(slot, seq)
        with pytest.raises(StaleFrame):
            ring.read(frame)

    def test_double_release_raises_stale(self, ring):
        slot, seq = ring.lease()
        ring.release(slot, seq)
        with pytest.raises(StaleFrame):
            ring.release(slot, seq)

    def test_reclaim_frees_everything_and_invalidates_old_frames(self, ring):
        frames = []
        for seed in range(3):
            slot, seq = ring.lease()
            frames.append(ring.write(slot, seq, payload(seed)))
        assert len(ring.leased_slots()) == 3
        assert ring.reclaim() == 3
        assert ring.leased_slots() == []
        for frame in frames:                     # the dead generation is inert
            with pytest.raises(StaleFrame):
                ring.read(frame)
            with pytest.raises(StaleFrame):
                ring.release(frame.slot, frame.seq)

    def test_release_after_reclaim_gets_a_fresh_sequence(self, ring):
        slot, seq = ring.lease()
        ring.reclaim()
        slot2, seq2 = ring.lease()
        assert (slot2, seq2) != (slot, seq)


class TestCrossAttach:
    def test_attached_ring_sees_the_creators_bytes(self):
        with ShmRing(slots=2, slot_bytes=1024) as owner:
            tensor = payload(3)
            slot, seq = owner.lease()
            frame = owner.write(slot, seq, tensor)
            reader = ShmRing(2, 1024, name=owner.name, create=False,
                             unregister=False)
            try:
                assert np.array_equal(reader.read(frame), tensor)
                reader.release(slot, seq)        # consumer-side release...
                assert owner.leased_slots() == []  # ...is visible to the owner
            finally:
                reader.close()

    def test_attach_with_wrong_geometry_is_rejected(self):
        with ShmRing(slots=2, slot_bytes=1024) as owner:
            with pytest.raises(ValueError, match="geometry"):
                ShmRing(64, 1 << 20, name=owner.name, create=False,
                        unregister=False)

    def test_worker_rings_descriptor_round_trips(self):
        rings = WorkerRings(slots=3, slot_bytes=2048)
        try:
            descriptor = rings.descriptor()
            request, response = WorkerRings.attach(descriptor, unregister=False)
            try:
                tensor = payload(4)
                slot, seq = rings.request.lease()
                frame = rings.request.write(slot, seq, tensor)
                assert np.array_equal(request.read(frame), tensor)
                request.release(slot, seq)
            finally:
                request.close()
                response.close()
        finally:
            rings.close()

    def test_owner_close_unlinks_the_segment(self):
        ring = ShmRing(slots=2, slot_bytes=256)
        name = ring.name
        ring.close()
        with pytest.raises(FileNotFoundError):
            ShmRing(2, 256, name=name, create=False, unregister=False)


class TestConcurrentSoak:
    """Threaded producer/consumer over one ring: the full transport contract.

    The producer leases, writes a seeded pattern, and ships the frame over a
    queue (exactly the pool's happens-before mechanism); the consumer applies
    a randomized service delay (so the ring constantly runs near full and
    wraps), verifies every frame bit-for-bit, and releases.  Assertions:
    nothing lost, nothing torn, strict FIFO, ring empty at the end.
    """

    FRAMES = 400
    SLOTS = 4

    def test_soak_no_loss_no_tearing_fifo(self):
        rng = np.random.default_rng(1234)
        with ShmRing(slots=self.SLOTS, slot_bytes=4096) as ring:
            channel: "queue.Queue" = queue.Queue()
            failures: list = []

            def pattern(index: int) -> np.ndarray:
                # Cheap but position-sensitive: tearing or slot aliasing
                # cannot produce another frame's exact pattern.
                base = np.arange(512, dtype=np.float32)
                return (base * (index + 1)).reshape(8, 64)

            def produce() -> None:
                for index in range(self.FRAMES):
                    while True:
                        try:
                            slot, seq = ring.lease()
                            break
                        except RingFull:         # backpressure: consumer lags
                            pass
                    frame = ring.write(slot, seq, pattern(index))
                    channel.put((index, frame))
                channel.put(None)

            def consume() -> None:
                expected_index = 0
                while True:
                    item = channel.get()
                    if item is None:
                        return
                    index, frame = item
                    try:
                        if index != expected_index:
                            failures.append(f"out of order: {index} != {expected_index}")
                        out = ring.read(frame)
                        if not np.array_equal(out, pattern(index)):
                            failures.append(f"frame {index} torn/aliased")
                        ring.release(frame.slot, frame.seq)
                    except Exception as error:  # noqa: BLE001
                        failures.append(f"frame {index}: {type(error).__name__}: {error}")
                    expected_index += 1
                    if rng.random() < 0.05:      # jitter: force wraparound mixes
                        threading.Event().wait(0.001)

            producer = threading.Thread(target=produce)
            consumer = threading.Thread(target=consume)
            producer.start(); consumer.start()
            producer.join(timeout=60); consumer.join(timeout=60)
            assert not producer.is_alive() and not consumer.is_alive()
            assert failures == []
            stats = ring.stats()
            assert stats["leases"] == self.FRAMES
            assert stats["releases"] == self.FRAMES
            assert stats["leased"] == 0          # everything returned
            assert stats["stale_drops"] == 0
