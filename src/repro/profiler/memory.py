"""Training-memory profiler.

The paper's quadratic optimizer decides whether to switch a model to hybrid
back-propagation by first *profiling* its training-memory footprint
(Sec. 4.3, Fig. 5, Fig. 8).  On a GPU that quantity is
``torch.cuda.memory_allocated()``; here the same signal is reconstructed by
observing which arrays the autodiff engine caches for the backward pass:

* every ``ctx.save_for_backward`` reports its arrays ("save" events),
* every node release after backward reports them again ("release" events),
* arrays are de-duplicated by identity, so an input reused by three
  convolutions inside one quadratic layer is only counted once — matching how
  a real allocator would behave.

Two front-ends are provided:

``MemoryTracker``
    low-level context manager that records a timeline of cached-intermediate
    bytes across a forward+backward iteration (the curve of Fig. 8);

``estimate_training_memory``
    one-shot estimate of a model's total training footprint (parameters +
    gradients + optimizer state + cached activations), with the activation
    part measured at a probe batch size and scaled linearly to the requested
    batch size — this regenerates Fig. 5 without a GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autodiff import hooks
from ..autodiff.function import Context
from ..autodiff.tensor import Tensor
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Module

# Patch point: Context.save_for_backward already notifies total bytes, but for
# identity-level de-duplication the tracker also needs the arrays themselves.
# We wrap save_for_backward/release_saved once at import time so that, when a
# tracker is active, it receives the array ids.

_active_trackers: List["MemoryTracker"] = []

_original_save = Context.save_for_backward
_original_release = Context.release_saved


def _tracked_save(self: Context, *arrays: np.ndarray) -> None:
    _original_save(self, *arrays)
    # Only report what was actually cached (no_grad saves nothing).
    if _active_trackers and self._saved:
        for tracker in _active_trackers:
            tracker._on_save(arrays, self.op_name)


def _tracked_release(self: Context) -> None:
    if _active_trackers and self._saved:
        for tracker in _active_trackers:
            tracker._on_release(self._saved, self.op_name)
    _original_release(self)


Context.save_for_backward = _tracked_save      # type: ignore[method-assign]
Context.release_saved = _tracked_release       # type: ignore[method-assign]


@dataclass
class MemorySample:
    """One point on the cached-intermediate-bytes timeline."""

    event_index: int
    event: str
    op_name: str
    cached_bytes: int


class MemoryTracker:
    """Record cached-for-backward bytes over a forward/backward iteration.

    Usage::

        with MemoryTracker() as tracker:
            loss = model(x).sum()
            loss.backward()
        print(tracker.peak_bytes, tracker.current_bytes)
        curve = tracker.timeline_bytes()   # Fig. 8 style curve
    """

    def __init__(self) -> None:
        self._refcounts: Dict[int, int] = {}
        self._sizes: Dict[int, int] = {}
        self.current_bytes = 0
        self.peak_bytes = 0
        self.samples: List[MemorySample] = []
        self._event_index = 0

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "MemoryTracker":
        _active_trackers.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            _active_trackers.remove(self)
        except ValueError:
            pass

    # ---------------------------------------------------------------- events
    def _on_save(self, arrays: Tuple[np.ndarray, ...], op_name: str) -> None:
        for array in arrays:
            if not isinstance(array, np.ndarray):
                continue
            key = id(array)
            if key in self._refcounts:
                self._refcounts[key] += 1
            else:
                self._refcounts[key] = 1
                self._sizes[key] = array.nbytes
                self.current_bytes += array.nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self._record("save", op_name)

    def _on_release(self, arrays: Tuple[np.ndarray, ...], op_name: str) -> None:
        for array in arrays:
            if not isinstance(array, np.ndarray):
                continue
            key = id(array)
            if key not in self._refcounts:
                continue
            self._refcounts[key] -= 1
            if self._refcounts[key] <= 0:
                self.current_bytes -= self._sizes.pop(key)
                del self._refcounts[key]
        self._record("release", op_name)

    def _record(self, event: str, op_name: str) -> None:
        self.samples.append(
            MemorySample(self._event_index, event, op_name, self.current_bytes)
        )
        self._event_index += 1

    # ----------------------------------------------------------------- views
    def timeline_bytes(self) -> List[int]:
        """Cached-intermediate bytes after every save/release event."""
        return [sample.cached_bytes for sample in self.samples]

    def per_op_peak(self) -> Dict[str, int]:
        """Peak cached bytes attributed to each op name (coarse attribution)."""
        peaks: Dict[str, int] = {}
        for sample in self.samples:
            peaks[sample.op_name] = max(peaks.get(sample.op_name, 0), sample.cached_bytes)
        return peaks


@dataclass
class MemoryEstimate:
    """Breakdown of a model's training-memory footprint."""

    parameter_bytes: int
    gradient_bytes: int
    optimizer_state_bytes: int
    activation_bytes_per_sample: float
    probe_batch_size: int

    def total_bytes(self, batch_size: int) -> float:
        """Estimated footprint at the given batch size (activations scale linearly)."""
        return (
            self.parameter_bytes
            + self.gradient_bytes
            + self.optimizer_state_bytes
            + self.activation_bytes_per_sample * batch_size
        )

    def total_gib(self, batch_size: int) -> float:
        return self.total_bytes(batch_size) / (1024 ** 3)


#: Memory budgets (bytes) of the GPUs shown as horizontal lines in Fig. 5.
GPU_MEMORY_BUDGETS = {
    "GTX 1080 Ti": 11 * 1024 ** 3,
    "RTX 2080": 8 * 1024 ** 3,
    "TITAN X": 12 * 1024 ** 3,
}


def estimate_training_memory(model: Module, input_shape: Tuple[int, int, int],
                             probe_batch_size: int = 2, num_classes: Optional[int] = None,
                             optimizer_states_per_param: int = 1) -> MemoryEstimate:
    """Measure a model's training-memory footprint with a probe iteration.

    Parameters
    ----------
    model : Module
        Classification-style model mapping (N, C, H, W) to (N, num_classes).
    input_shape : (C, H, W)
    probe_batch_size : int
        Batch size of the probe forward/backward; cached-activation bytes are
        divided by this to obtain a per-sample figure.
    num_classes : int, optional
        If given, a cross-entropy loss on random labels is used so that the
        probe exercises the same graph as real training.
    optimizer_states_per_param : int
        1 for SGD+momentum, 2 for Adam.
    """
    was_training = model.training
    model.train(True)
    c, h, w = input_shape
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((probe_batch_size, c, h, w)).astype(np.float32))

    with MemoryTracker() as tracker:
        out = model(x)
        if num_classes is not None and out.ndim == 2:
            labels = rng.integers(0, num_classes, size=probe_batch_size)
            loss = CrossEntropyLoss()(out, labels)
        else:
            loss = out.sum()
        loss.backward()
    model.zero_grad()
    model.train(was_training)

    param_bytes = sum(p.nbytes for p in model.parameters())
    return MemoryEstimate(
        parameter_bytes=param_bytes,
        gradient_bytes=param_bytes,
        optimizer_state_bytes=optimizer_states_per_param * param_bytes,
        activation_bytes_per_sample=tracker.peak_bytes / probe_batch_size,
        probe_batch_size=probe_batch_size,
    )
