"""Shared pytest fixtures and numerical-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import seed_everything


@pytest.fixture(autouse=True)
def _seed_everything():
    """Make every test deterministic."""
    seed_everything(0)
    yield


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar function w.r.t. ``array`` (in place)."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad.astype(np.float32)


@pytest.fixture
def numgrad():
    """Expose the numeric gradient helper as a fixture."""
    return numeric_gradient
