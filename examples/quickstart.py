"""Quickstart: one declarative spec drives everything in the library.

Run with::

    python examples/quickstart.py

The script shows the unified ``repro.experiment`` API: an
:class:`~repro.experiment.ExperimentSpec` describes the model / data /
training recipe as plain data, and the :class:`~repro.experiment.Experiment`
facade builds and trains it.  It then repeats the classic demonstration that
a quadratic neuron separates what a linear neuron cannot (XOR, circle
boundary), with both contenders expressed as specs — and shows that every
spec round-trips losslessly through JSON (the same file format
``python -m repro run`` executes).
"""

from repro import nn
from repro import quadratic as qua
from repro.autodiff import randn
from repro.experiment import (
    DataSpec,
    Experiment,
    ExperimentSpec,
    ModelSpec,
    TrainSpec,
    neuron_names,
)
from repro.utils import print_table, seed_everything


def build_a_quadratic_model() -> nn.Module:
    """Quadratic layers stay ordinary modules for ad-hoc composition (paper P4)."""
    layers = []
    in_channels = 3
    for width in (16, 32):
        layers += [qua.typenew(in_channels, width, kernel_size=3, padding=1),
                   nn.BatchNorm2d(width), nn.ReLU(), nn.MaxPool2d(2)]
        in_channels = width
    layers += [nn.GlobalAvgPool2d(), nn.Linear(in_channels, 10)]
    return nn.Sequential(*layers)


def toy_spec(dataset: str, quadratic: bool) -> ExperimentSpec:
    """A one-hidden-layer quadratic MLP vs. a linear classifier, as specs."""
    if quadratic:
        model = ModelSpec(name="mlp", neuron_type="OURS", num_classes=2,
                          extra={"layer_sizes": [2, 4]})
    else:
        model = ModelSpec(name="mlp", neuron_type="first_order", num_classes=2,
                          extra={"layer_sizes": [2], "activation": False})
    return ExperimentSpec(
        name=f"{dataset}-{'quadratic' if quadratic else 'linear'}",
        model=model,
        data=DataSpec(name=dataset, num_samples=400, test_samples=100),
        train=TrainSpec(epochs=15, batch_size=64, lr=0.05),
        steps=["build", "fit"],
    )


def main() -> None:
    seed_everything(0)

    # 1. The composition API still works: quadratic layers are plain modules.
    model = build_a_quadratic_model()
    logits = model(randn(4, 3, 32, 32))
    print(f"Quadratic CNN built with qua.typenew(): output shape {logits.shape}, "
          f"{model.num_parameters():,} parameters\n")

    # 2. XOR and the circle boundary, driven entirely by declarative specs.
    rows = []
    for task_name, dataset in (("XOR gate", "xor"), ("circle boundary", "circle")):
        accuracies = {}
        for quadratic in (True, False):
            spec = toy_spec(dataset, quadratic)
            # Specs are pure data: they survive a JSON round-trip unchanged.
            spec = ExperimentSpec.from_json(spec.to_json())
            history = Experiment(spec).fit()
            accuracies[quadratic] = history.final_train_accuracy
        rows.append([task_name, f"{accuracies[True]:.3f}", f"{accuracies[False]:.3f}"])

    print_table(["Task", "Quadratic (1 hidden layer)", "Linear classifier"], rows,
                title="Quadratic vs. linear neurons on toy tasks")

    # 3. The registries every spec references: neuron designs from Table 1.
    print("\nRegistered quadratic neuron designs (paper Table 1):")
    for name in neuron_names():
        if name == "first_order":
            continue
        print(f"  {qua.resolve_type(name).describe()}")
    print("\nThe same flow from the shell:  python -m repro run smoke")


if __name__ == "__main__":
    main()
