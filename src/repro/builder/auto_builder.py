"""QDNN auto-builder (paper Sec. 4.2).

Manually designing a quadratic model for a new task requires domain
experience; the auto-builder instead starts from an existing first-order model
and performs two operations:

1. **Layer replacement** — every first-order convolution (and optionally every
   dense layer) is swapped for the equivalent quadratic layer of the requested
   neuron type, shallow to deep, keeping kernel size / stride / padding /
   groups identical (:func:`quadratize_module`).

2. **Heuristic layer reduction** — because quadratic neurons have higher
   capacity, the converted model can be made shallower.  Layers are ranked by
   the RI indicator (Eq. 5, :mod:`repro.builder.indicator`) and removed until
   a parameter budget or target depth is met
   (:meth:`AutoBuilder.reduce_structure` and the config-level helpers
   ``reduce_vgg_cfg`` / ``reduce_resnet_blocks`` / ``reduce_mobilenet_cfg``).

The "QuadraNN (no auto-builder)" rows of Table 3 correspond to step 1 alone;
the "QuadraNN" rows apply both steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Module
from ..quadratic.layers.hybrid import HybridQuadraticLinear
from ..quadratic.layers.qlinear import QuadraticLinear
from ..quadratic.neuron_types import resolve_type
from .config import QuadraticModelConfig
from .indicator import LayerIndicator, compute_layer_indicators


# --------------------------------------------------------------------------- #
# Step 1: layer replacement on live modules
# --------------------------------------------------------------------------- #

def _convert_conv(layer: Conv2d, neuron_type: str, hybrid_bp: bool) -> Module:
    from ..quadratic.factory import quadratic_layer

    return quadratic_layer(
        neuron_type,
        layer.in_channels,
        layer.out_channels,
        kernel_size=layer.kernel_size,
        stride=layer.stride,
        padding=layer.padding,
        groups=layer.groups,
        bias=layer.bias is not None,
        hybrid_bp=hybrid_bp,
    )


def _convert_linear(layer: Linear, neuron_type: str, hybrid_bp: bool) -> Module:
    if hybrid_bp and resolve_type(neuron_type).name == "OURS":
        return HybridQuadraticLinear(layer.in_features, layer.out_features,
                                     bias=layer.bias is not None)
    return QuadraticLinear(layer.in_features, layer.out_features, neuron_type=neuron_type,
                           bias=layer.bias is not None)


def quadratize_module(model: Module, neuron_type: str = "OURS", hybrid_bp: bool = False,
                      convert_linear: bool = False, skip_depthwise: bool = True,
                      skip_names: Sequence[str] = ()) -> int:
    """Deprecated free-function conversion; kept as a thin shim.

    The behaviour is unchanged, but new code should either declare
    ``ModelSpec(auto_build=True)`` in a :class:`repro.experiment.ExperimentSpec`
    or use :meth:`AutoBuilder.convert`, both of which report what changed.
    """
    from ..utils.deprecation import warn_deprecated

    warn_deprecated(
        "repro.builder.quadratize_module(model, ...)",
        "repro.experiment.ModelSpec(auto_build=True) / AutoBuilder(...).convert(model)",
    )
    return _quadratize_module_impl(model, neuron_type=neuron_type, hybrid_bp=hybrid_bp,
                                   convert_linear=convert_linear,
                                   skip_depthwise=skip_depthwise, skip_names=skip_names)


def _quadratize_module_impl(model: Module, neuron_type: str = "OURS", hybrid_bp: bool = False,
                            convert_linear: bool = False, skip_depthwise: bool = True,
                            skip_names: Sequence[str] = ()) -> int:
    """Replace first-order layers with quadratic ones in place (shallow → deep).

    Parameters
    ----------
    model : Module
        Modified in place.
    neuron_type : str
        Quadratic design for the converted layers.
    hybrid_bp : bool
        Use the symbolic-backward implementations where available.
    convert_linear : bool
        Also convert dense layers (classifier heads usually stay first-order).
    skip_depthwise : bool
        Leave depthwise convolutions (groups == in_channels > 1) first-order;
        the quadratic capacity lives in the pointwise/ordinary convolutions.
    skip_names : sequence of str
        Dotted-name substrings to leave untouched (e.g. detector heads).

    Returns
    -------
    int
        Number of layers converted.
    """
    converted = 0
    for name, module in list(model.named_modules()):
        for child_name, child in list(module._modules.items()):
            full_name = f"{name}.{child_name}" if name else child_name
            if any(skip in full_name for skip in skip_names):
                continue
            if isinstance(child, Conv2d):
                if skip_depthwise and child.groups == child.in_channels and child.groups > 1:
                    continue
                module.register_module(child_name,
                                       _convert_conv(child, neuron_type, hybrid_bp))
                converted += 1
            elif convert_linear and isinstance(child, Linear):
                module.register_module(child_name,
                                       _convert_linear(child, neuron_type, hybrid_bp))
                converted += 1
    return converted


# --------------------------------------------------------------------------- #
# Step 2: heuristic layer reduction at the configuration level
# --------------------------------------------------------------------------- #

def reduce_vgg_cfg(cfg: Sequence[Union[int, str]], target_conv_layers: int) -> List[Union[int, str]]:
    """Shrink a VGG channel configuration to ``target_conv_layers`` convolutions.

    Within each pooling stage the later (duplicate-width) convolutions carry
    the largest parameter/compute share but the smallest marginal accuracy —
    they are removed first, which is what the RI ranking selects on trained
    VGGs.  At least one convolution per stage is always kept so the spatial
    reduction schedule is preserved.
    """
    stages: List[List[int]] = []
    current: List[int] = []
    for item in cfg:
        if item == "M":
            stages.append(current)
            current = []
        else:
            current.append(int(item))
    if current:
        stages.append(current)

    def total_convs() -> int:
        return sum(len(stage) for stage in stages)

    while total_convs() > target_conv_layers:
        # Remove from the stage with the most convolutions, deepest first
        # (deep stages have the widest, most expensive duplicates).
        candidates = [i for i, stage in enumerate(stages) if len(stage) > 1]
        if not candidates:
            break
        stage_idx = max(candidates, key=lambda i: (len(stages[i]), i))
        stages[stage_idx].pop()

    reduced: List[Union[int, str]] = []
    for stage in stages:
        reduced.extend(stage)
        reduced.append("M")
    return reduced


def reduce_resnet_blocks(blocks: Sequence[int], target_blocks_per_stage: int) -> List[int]:
    """Reduce the per-stage residual block counts (e.g. [5, 5, 5] → [2, 2, 2])."""
    return [max(min(count, target_blocks_per_stage), 1) for count in blocks]


def reduce_mobilenet_cfg(cfg: Sequence[Tuple[int, int]],
                         target_blocks: int) -> List[Tuple[int, int]]:
    """Reduce a MobileNet block list, always keeping stride-2 (resolution) blocks."""
    cfg = list(cfg)
    if target_blocks >= len(cfg):
        return cfg
    keep = [i for i, (_, stride) in enumerate(cfg) if stride != 1]
    stride1 = [i for i, (_, stride) in enumerate(cfg) if stride == 1]
    # Drop stride-1 blocks from the deepest repeats first.
    budget = target_blocks - len(keep)
    keep.extend(stride1[:max(budget, 0)])
    keep.sort()
    return [cfg[i] for i in keep]


# --------------------------------------------------------------------------- #
# The auto-builder facade
# --------------------------------------------------------------------------- #

@dataclass
class ConversionReport:
    """What the auto-builder did to a model."""

    converted_layers: int
    removed_layers: List[str]
    parameters_before: int
    parameters_after: int

    @property
    def parameter_ratio(self) -> float:
        return self.parameters_after / max(self.parameters_before, 1)


class AutoBuilder:
    """Convert first-order models into QDNNs (layer replacement + reduction).

    Parameters
    ----------
    neuron_type : str
        Quadratic design used for converted layers (default: the paper's).
    hybrid_bp : bool
        Build memory-efficient symbolic-backward layers where available.
    convert_linear : bool
        Also convert dense layers.
    """

    def __init__(self, neuron_type: str = "OURS", hybrid_bp: bool = False,
                 convert_linear: bool = False) -> None:
        self.neuron_type = resolve_type(neuron_type).name
        self.hybrid_bp = hybrid_bp
        self.convert_linear = convert_linear

    # -- live-module conversion --------------------------------------------------
    def convert(self, model: Module, skip_names: Sequence[str] = ()) -> ConversionReport:
        """Replace first-order layers in ``model`` (in place) and report the change."""
        params_before = model.num_parameters()
        converted = _quadratize_module_impl(model, neuron_type=self.neuron_type,
                                            hybrid_bp=self.hybrid_bp,
                                            convert_linear=self.convert_linear,
                                            skip_names=skip_names)
        return ConversionReport(
            converted_layers=converted,
            removed_layers=[],
            parameters_before=params_before,
            parameters_after=model.num_parameters(),
        )

    # -- RI-driven structural reduction ------------------------------------------
    def rank_layers(self, model: Module, input_shape: Tuple[int, int, int],
                    eval_fn: Optional[Callable[[Module], float]] = None,
                    candidate_layers: Optional[Sequence[str]] = None) -> List[LayerIndicator]:
        """RI ranking (Eq. 5) of the model's layers, most-removable first."""
        return compute_layer_indicators(model, input_shape, candidate_layers=candidate_layers,
                                        eval_fn=eval_fn)

    def reduce_structure(self, model: Module, input_shape: Tuple[int, int, int],
                         eval_fn: Optional[Callable[[Module], float]] = None,
                         max_removals: int = 2,
                         max_accuracy_drop: float = 0.02) -> ConversionReport:
        """Bypass the highest-RI layers of a (converted) model in place.

        Layers are replaced with identity mappings one at a time, most
        removable first, stopping when ``max_removals`` is reached, the
        accuracy drop exceeds ``max_accuracy_drop`` (when ``eval_fn`` is
        given), or a removal breaks the forward pass.
        """
        from ..nn.layers.activations import Identity
        from .indicator import _set_submodule

        params_before = model.num_parameters()
        removed: List[str] = []
        indicators = self.rank_layers(model, input_shape, eval_fn=eval_fn)
        for item in indicators:
            if len(removed) >= max_removals:
                break
            if eval_fn is not None and item.accuracy_drop > max_accuracy_drop:
                continue
            original = _set_submodule(model, item.name, Identity())
            try:
                # Verify the forward pass still works with the layer bypassed.
                from ..autodiff import no_grad
                from ..autodiff.tensor import Tensor

                probe = Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
                with no_grad():
                    model(probe)
                removed.append(item.name)
            except Exception:
                _set_submodule(model, item.name, original)
        return ConversionReport(
            converted_layers=0,
            removed_layers=removed,
            parameters_before=params_before,
            parameters_after=model.num_parameters(),
        )
