"""Cost models of privacy-preserving inference protocols.

The paper's introduction motivates quadratic layers as a way to cut the cost
of Privacy-Preserving Machine Learning (PPML) protocols: in hybrid protocols
such as Delphi or Gazelle the *linear* layers are cheap online (pre-processed
homomorphic encryption or secret sharing) while every ReLU is evaluated with a
garbled circuit, which dominates both communication and latency.  Replacing
ReLUs with polynomial activations — a square, or an entire quadratic layer —
turns each comparison into one secure multiplication (a Beaver triple), which
is orders of magnitude cheaper.

This module captures that trade-off as explicit per-operation cost constants.
The absolute constants are order-of-magnitude figures taken from the protocol
papers (Delphi, Gazelle, CryptoNets); what the analysis in
:mod:`repro.ppml.cost` relies on is only the *relative* structure — garbled
ReLU ≫ secure multiplication ≈ secret-shared MAC — which is common to every
published hybrid protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class OperationCosts:
    """Per-operation online cost of one protocol, in bytes and microseconds.

    Attributes
    ----------
    linear_mac_bytes, linear_mac_us :
        Online cost of one multiply-accumulate inside a linear/convolution
        layer (zero for protocols that pre-process linear layers offline).
    relu_bytes, relu_us :
        Online cost of one ReLU (garbled-circuit comparison for hybrid
        protocols; ``float('inf')`` for HE-only protocols that cannot
        evaluate a comparison at all).
    mult_bytes, mult_us :
        Online cost of one secure element-wise multiplication (Beaver triple
        or ciphertext-ciphertext multiplication) — the primitive behind a
        square activation or the Hadamard product of a quadratic layer.
    """

    linear_mac_bytes: float
    linear_mac_us: float
    relu_bytes: float
    relu_us: float
    mult_bytes: float
    mult_us: float


@dataclass(frozen=True)
class Protocol:
    """A named privacy-preserving inference protocol and its cost model.

    Attributes
    ----------
    name, reference :
        Display name and the paper the constants are modelled on.
    costs :
        Per-operation :class:`OperationCosts`.
    supports_relu :
        Whether the protocol can evaluate an exact ReLU at all.  HE-only
        protocols (CryptoNets) cannot — models must be converted to
        polynomial activations before they can run.
    multiplicative_depth_limit :
        For levelled-HE protocols, the maximum number of successive
        ciphertext multiplications before bootstrapping/re-encryption is
        needed.  ``0`` means unlimited (interactive protocols).
    round_trip_us :
        Network round-trip time charged per communication round by the
        secure runtime's trace estimator (interactive protocols pay one RTT
        per Beaver reconstruction / garbled-circuit exchange; ``0`` for
        non-interactive HE evaluation).  The static per-operation cost model
        does not use it — only executed traces know their round structure.
    """

    name: str
    reference: str
    costs: OperationCosts
    supports_relu: bool = True
    multiplicative_depth_limit: int = 0
    round_trip_us: float = 0.0

    def relu_cost(self, count: int) -> "ProtocolCost":
        """Online cost of ``count`` ReLU evaluations (zero ReLUs are always free)."""
        if count <= 0:
            return ProtocolCost()
        if not self.supports_relu:
            return ProtocolCost(bytes=float("inf"), microseconds=float("inf"))
        return ProtocolCost(bytes=count * self.costs.relu_bytes,
                            microseconds=count * self.costs.relu_us)

    def mult_cost(self, count: int) -> "ProtocolCost":
        """Online cost of ``count`` secure element-wise multiplications."""
        if count <= 0:
            return ProtocolCost()
        return ProtocolCost(bytes=count * self.costs.mult_bytes,
                            microseconds=count * self.costs.mult_us)

    def linear_cost(self, macs: int) -> "ProtocolCost":
        """Online cost of ``macs`` multiply-accumulates in linear layers."""
        if macs <= 0:
            return ProtocolCost()
        return ProtocolCost(bytes=macs * self.costs.linear_mac_bytes,
                            microseconds=macs * self.costs.linear_mac_us)


@dataclass
class ProtocolCost:
    """An accumulated online cost (communication bytes + latency)."""

    bytes: float = 0.0
    microseconds: float = 0.0

    def __add__(self, other: "ProtocolCost") -> "ProtocolCost":
        return ProtocolCost(bytes=self.bytes + other.bytes,
                            microseconds=self.microseconds + other.microseconds)

    def __iadd__(self, other: "ProtocolCost") -> "ProtocolCost":
        self.bytes += other.bytes
        self.microseconds += other.microseconds
        return self

    @property
    def megabytes(self) -> float:
        return self.bytes / 1e6

    @property
    def milliseconds(self) -> float:
        return self.microseconds / 1e3

    def finite(self) -> bool:
        """Whether the cost is evaluable at all under the protocol."""
        import math

        return math.isfinite(self.bytes) and math.isfinite(self.microseconds)


# --------------------------------------------------------------------------- #
# Protocol presets
# --------------------------------------------------------------------------- #

#: Delphi-style hybrid protocol (Mishra et al., USENIX Security 2020): linear
#: layers are pre-processed, so their online cost is a cheap secret-shared MAC;
#: every ReLU is a garbled circuit (~2 KB communication, ~10 µs amortised);
#: a secure multiplication consumes one pre-generated Beaver triple.
DELPHI = Protocol(
    name="delphi",
    reference="Mishra et al., Delphi (2020)",
    costs=OperationCosts(
        linear_mac_bytes=0.0, linear_mac_us=0.001,
        relu_bytes=2048.0, relu_us=10.0,
        mult_bytes=32.0, mult_us=0.05,
    ),
    supports_relu=True,
    round_trip_us=100.0,   # LAN round trip, as in the Delphi evaluation
)

#: Gazelle-style hybrid (Juvekar et al.): linear layers are evaluated with
#: packed homomorphic encryption *online*, so MACs are not free; ReLUs still
#: use garbled circuits.
GAZELLE = Protocol(
    name="gazelle",
    reference="Juvekar et al., Gazelle (2018)",
    costs=OperationCosts(
        linear_mac_bytes=0.05, linear_mac_us=0.01,
        relu_bytes=2048.0, relu_us=10.0,
        mult_bytes=64.0, mult_us=0.5,
    ),
    supports_relu=True,
    round_trip_us=100.0,
)

#: CryptoNets-style levelled HE (Gilad-Bachrach et al.): everything is
#: evaluated under homomorphic encryption, comparisons are impossible, and the
#: multiplicative depth is bounded — ReLU models simply cannot run until they
#: are converted to polynomial activations.
CRYPTONETS = Protocol(
    name="cryptonets",
    reference="Gilad-Bachrach et al., CryptoNets (2016)",
    costs=OperationCosts(
        linear_mac_bytes=0.0, linear_mac_us=5.0,
        relu_bytes=float("inf"), relu_us=float("inf"),
        mult_bytes=0.0, mult_us=50.0,
    ),
    supports_relu=False,
    multiplicative_depth_limit=10,
)

#: Registry of the built-in protocol presets, keyed by name.
PROTOCOLS: Dict[str, Protocol] = {
    DELPHI.name: DELPHI,
    GAZELLE.name: GAZELLE,
    CRYPTONETS.name: CRYPTONETS,
}


def resolve_protocol(name_or_protocol) -> Protocol:
    """Return a :class:`Protocol` from a name, accepting Protocol instances as-is."""
    if isinstance(name_or_protocol, Protocol):
        return name_or_protocol
    key = str(name_or_protocol).strip().lower()
    if key not in PROTOCOLS:
        raise KeyError(
            f"unknown PPML protocol '{name_or_protocol}'; known protocols: {sorted(PROTOCOLS)}"
        )
    return PROTOCOLS[key]


def available_protocols() -> List[str]:
    """Names of every registered protocol preset."""
    return list(PROTOCOLS)
