"""The worker-process side of the serving pool.

Each worker is an independent OS process that receives the experiment spec
and the trained weights over IPC (both pickle cleanly: the spec as a plain
dict, the weights as a name → ``np.ndarray`` state dict), rebuilds the model,
compiles it, and serves requests from its own bounded queue through a private
:class:`~repro.inference.BatchedPredictor`.  Because every worker starts from
the same serialized weights and the compiled path is deterministic, any
worker answers any request with the same bits.

The wire protocol is deliberately tiny — picklable tuples in both directions:

* parent → worker: ``(request_id, kind, payload)`` where ``kind`` is
  ``"predict"`` (payload: one float32 sample) or ``"sleep"`` (payload:
  seconds; used by drain tests and warm-up probes to occupy a worker
  deterministically); ``None`` tells the worker to drain and exit.
* worker → parent, on the shared response queue:
  ``("ready", worker_id, pid)`` once serving can begin,
  ``("ok", request_id, output)`` / ``("err", request_id, message)`` per
  request, and ``("bye", worker_id)`` on graceful exit.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Tuple

import numpy as np

#: Message kinds a worker understands.
REQUEST_KINDS = ("predict", "sleep")


def execute_request(predictor, kind: str, payload: Any, timeout: float) -> Any:
    """Run one already-parsed request on this worker's predictor."""
    if kind == "predict":
        return predictor.predict(np.asarray(payload, dtype=np.float32), timeout=timeout)
    if kind == "sleep":
        time.sleep(float(payload))
        return None
    raise ValueError(f"unknown request kind '{kind}'; valid: {REQUEST_KINDS}")


def build_serving_predictor(spec_dict: Dict[str, Any], state: Dict[str, np.ndarray],
                            max_batch_size: int, max_wait: float,
                            backend: str = "numpy"):
    """Rebuild the model from its IPC form and wrap it for serving.

    Split out of :func:`worker_main` so tests can exercise the
    deserialize → build → load → compile path in-process.  ``backend`` is the
    compute backend each worker compiles with (a :mod:`repro.backends` name).
    """
    from ..experiment import ExperimentSpec
    from ..inference import BatchedPredictor
    from ..utils.seed import seed_everything

    spec = ExperimentSpec.from_dict(spec_dict)
    # Seeded exactly like Experiment.build(), so even a worker that receives
    # no weights reproduces the parent's freshly built model.
    seed_everything(spec.seed)
    model = spec.model.build()
    if state:
        model.load_state_dict(dict(state))
    model.eval()
    return BatchedPredictor(model, max_batch_size=max_batch_size,
                            max_wait=max_wait, backend=backend)


def worker_main(worker_id: int, spec_dict: Dict[str, Any], state: Dict[str, np.ndarray],
                max_batch_size: int, max_wait: float, request_timeout: float,
                request_queue, response_queue, backend: str = "numpy") -> None:
    """Entry point executed inside each pool process.

    Top-level (not a closure) so it imports cleanly under the ``spawn`` start
    method.  The loop coalesces whatever is already queued into one submit
    wave so the predictor's micro-batching sees real batches, not a strict
    one-at-a-time stream.
    """
    import queue as queue_module
    import signal

    # A terminal Ctrl+C delivers SIGINT to the whole foreground process
    # group.  The *parent* owns the shutdown (drain, then sentinel/terminate)
    # — a worker that died on the KeyboardInterrupt would fail every request
    # it had in flight instead of draining gracefully.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass

    predictor = build_serving_predictor(spec_dict, state, max_batch_size,
                                        max_wait, backend=backend)
    response_queue.put(("ready", worker_id, os.getpid()))
    running = True
    try:
        while running:
            message = request_queue.get()
            if message is None:
                break
            wave = [message]
            # Greedily pull everything already waiting (up to one predictor
            # batch) so concurrent requests share a compiled forward.
            while len(wave) < max_batch_size:
                try:
                    extra = request_queue.get_nowait()
                except queue_module.Empty:
                    break
                if extra is None:
                    running = False
                    break
                wave.append(extra)
            _serve_wave(predictor, wave, request_timeout, response_queue)
    finally:
        predictor.shutdown()
        response_queue.put(("bye", worker_id))


def _serve_wave(predictor, wave, request_timeout: float, response_queue) -> None:
    """Answer one coalesced wave of requests, isolating per-request errors."""
    pending: list[Tuple[int, Any]] = []
    for request_id, kind, payload in wave:
        if kind == "predict":
            # Submit the whole wave before collecting so the predictor can
            # batch it; errors surface per-handle below.
            try:
                pending.append((request_id, predictor.submit(
                    np.asarray(payload, dtype=np.float32))))
            except BaseException as error:  # noqa: BLE001 — must answer the caller
                response_queue.put(("err", request_id, f"{type(error).__name__}: {error}"))
        else:
            try:
                result = execute_request(predictor, kind, payload, request_timeout)
                response_queue.put(("ok", request_id, result))
            except BaseException as error:  # noqa: BLE001
                response_queue.put(("err", request_id, f"{type(error).__name__}: {error}"))
    for request_id, handle in pending:
        try:
            response_queue.put(("ok", request_id, handle.result(timeout=request_timeout)))
        except BaseException as error:  # noqa: BLE001
            response_queue.put(("err", request_id, f"{type(error).__name__}: {error}"))
