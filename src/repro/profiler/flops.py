"""Parameter and MAC counting by module traversal.

Produces the ``#Param`` column of Table 3 and feeds the RI layer-performance
indicator (Eq. 5) with the per-layer parameter and computation ratios it
needs.  Counting is shape-aware: a probe input is pushed through the model
with forward hooks attached, so output resolutions (and hence conv MACs) are
exact rather than estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Module
from ..quadratic.layers.hybrid import HybridQuadraticConv2d, HybridQuadraticLinear
from ..quadratic.layers.qconv import QuadraticConv2d, QuadraticConv2dT1
from ..quadratic.layers.qlinear import QuadraticLinear


@dataclass
class LayerProfile:
    """Parameter count and MACs of a single leaf layer."""

    name: str
    layer_type: str
    parameters: int
    macs: int
    output_shape: Tuple[int, ...] = ()


@dataclass
class ModelProfile:
    """Aggregate profile of a model."""

    layers: List[LayerProfile] = field(default_factory=list)

    @property
    def total_parameters(self) -> int:
        return sum(l.parameters for l in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    def by_name(self, name: str) -> LayerProfile:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named '{name}' in profile")


def _conv_macs(out_shape: Tuple[int, ...], weight_shape: Tuple[int, ...], groups: int,
               n_weight_sets: int = 1, elementwise: int = 0) -> int:
    # out_shape: (N, F, OH, OW); weight_shape: (F, C/g, kh, kw)
    _, f, oh, ow = out_shape
    _, c_g, kh, kw = weight_shape
    per_position = c_g * kh * kw
    return (n_weight_sets * f * per_position + elementwise * f) * oh * ow


def _count_layer(module: Module, out_shape: Tuple[int, ...]) -> Optional[Tuple[str, int, int]]:
    """(type name, parameters, MACs) for a leaf layer, or None for containers."""
    params = sum(p.size for p in module._parameters.values() if p is not None)

    if isinstance(module, Conv2d):
        macs = _conv_macs(out_shape, module.weight.shape, module.groups)
        return "Conv2d", params, macs
    if isinstance(module, (QuadraticConv2d, HybridQuadraticConv2d)):
        n_sets = len([n for n in module._parameters if n.startswith("weight")])
        weight = next(p for n, p in module._parameters.items() if n.startswith("weight"))
        macs = _conv_macs(out_shape, weight.shape, getattr(module, "groups", 1),
                          n_weight_sets=n_sets, elementwise=2)
        return type(module).__name__, params, macs
    if isinstance(module, QuadraticConv2dT1):
        _, f, oh, ow = out_shape
        patch = module.patch_size
        macs = f * patch * patch * oh * ow
        return "QuadraticConv2dT1", params, macs
    if isinstance(module, Linear):
        macs = module.in_features * module.out_features * int(np.prod(out_shape[:-1]))
        return "Linear", params, macs
    if isinstance(module, (QuadraticLinear, HybridQuadraticLinear)):
        n_sets = len([n for n in module._parameters if n.startswith("weight")])
        macs = n_sets * module.in_features * module.out_features * int(np.prod(out_shape[:-1]))
        return type(module).__name__, params, macs
    if params:
        # BatchNorm and other small parametric layers: count params, negligible MACs.
        return type(module).__name__, params, int(np.prod(out_shape))
    return None


def profile_model(model: Module, input_shape: Tuple[int, int, int],
                  batch_size: int = 1) -> ModelProfile:
    """Profile parameters and MACs of every leaf layer with a probe forward pass."""
    profile = ModelProfile()
    output_shapes: Dict[int, Tuple[int, ...]] = {}
    removers = []

    def make_hook(module_id: int):
        def hook(_module, _inputs, output):
            if isinstance(output, Tensor):
                output_shapes[module_id] = output.shape
        return hook

    leaf_modules = []
    for name, module in model.named_modules():
        if not module._modules and (module._parameters or True):
            leaf_modules.append((name, module))
            removers.append(module.register_forward_hook(make_hook(id(module))))

    probe = Tensor(np.zeros((batch_size,) + tuple(input_shape), dtype=np.float32))
    was_training = model.training
    model.train(False)
    with no_grad():
        model(probe)
    model.train(was_training)
    for remove in removers:
        remove()

    for name, module in leaf_modules:
        out_shape = output_shapes.get(id(module), (batch_size,))
        counted = _count_layer(module, out_shape)
        if counted is None:
            continue
        layer_type, params, macs = counted
        if params == 0 and macs <= int(np.prod(out_shape)):
            continue
        profile.layers.append(LayerProfile(name, layer_type, params, macs, out_shape))
    return profile


def count_parameters(model: Module) -> int:
    """Trainable parameter count (the paper's #Param column)."""
    return model.num_parameters()
