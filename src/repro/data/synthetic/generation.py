"""Synthetic image distribution for the GAN experiments (Table 5).

The "real" distribution is a mixture of structured images — rings, blobs and
interference patterns with smoothly varying latent parameters — so that a
generator must capture multi-modal structure and the proxy IS/FID metrics
(see ``repro.metrics.generation``) can discriminate between good and bad
generators.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dataset import Dataset


class SyntheticGenerationDataset(Dataset):
    """Unconditional image dataset used as the real distribution for GAN training."""

    def __init__(self, num_samples: int = 512, image_size: int = 32, channels: int = 3,
                 num_modes: int = 8, seed: int = 0) -> None:
        self.image_size = int(image_size)
        self.channels = int(channels)
        self.num_modes = int(num_modes)
        rng = np.random.default_rng(seed)
        ys, xs = np.meshgrid(np.linspace(-1, 1, image_size), np.linspace(-1, 1, image_size),
                             indexing="ij")

        mode_centers = rng.uniform(-0.5, 0.5, size=(num_modes, 2))
        mode_radii = rng.uniform(0.25, 0.6, size=num_modes)
        mode_freqs = rng.uniform(2.0, 5.0, size=num_modes)
        mode_colors = rng.dirichlet(np.ones(channels), size=num_modes).astype(np.float32)

        images = np.empty((num_samples, channels, image_size, image_size), dtype=np.float32)
        modes = rng.integers(0, num_modes, size=num_samples)
        for i in range(num_samples):
            m = int(modes[i])
            cx, cy = mode_centers[m] + rng.normal(0, 0.05, size=2)
            radius = mode_radii[m] * rng.uniform(0.85, 1.15)
            freq = mode_freqs[m]
            dist = np.sqrt((xs - cx) ** 2 + (ys - cy) ** 2)
            ring = np.exp(-((dist - radius) ** 2) / 0.02)
            texture = 0.3 * np.sin(2 * np.pi * freq * xs) * np.sin(2 * np.pi * freq * ys)
            gray = ring + texture + rng.normal(0, 0.03, size=ring.shape)
            images[i] = mode_colors[m][:, None, None] * gray[None]

        self.images = images
        self.modes = modes.astype(np.int64)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.images[index]

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` real images uniformly at random (for FID reference batches)."""
        rng = rng if rng is not None else np.random.default_rng()
        idx = rng.integers(0, len(self.images), size=n)
        return self.images[idx]
