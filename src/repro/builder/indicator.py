"""Layer performance indicator (paper Eq. 5).

The auto-builder's heuristic layer reduction ranks layers by

.. math::

    RI = \\frac{P(M_{par}) \\; P(T_{lat})}{\\Delta Acc}

where ``P(Mpar)`` and ``P(Tlat)`` are the layer's share of the model's
parameters and computation, and ``ΔAcc`` is the accuracy drop caused by
removing the layer.  A layer that is expensive but contributes little accuracy
has a high RI and is removed first.

``ΔAcc`` is measured by temporarily bypassing the layer (replacing it with an
identity mapping when shapes permit) and re-evaluating the model on a
calibration set; when no evaluation function is supplied the indicator falls
back to the cost-only numerator, which still orders layers sensibly for
untrained models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers.activations import Identity
from ..nn.module import Module
from ..profiler.flops import ModelProfile, profile_model


@dataclass
class LayerIndicator:
    """RI score and its ingredients for one layer."""

    name: str
    param_ratio: float
    compute_ratio: float
    accuracy_drop: float
    ri: float


def _set_submodule(root: Module, dotted_name: str, new_module: Module) -> Module:
    """Replace the module at ``dotted_name`` and return the original."""
    parts = dotted_name.split(".")
    parent = root
    for part in parts[:-1]:
        parent = parent._modules[part]
    original = parent._modules[parts[-1]]
    parent.register_module(parts[-1], new_module)
    return original


def measure_accuracy_drop(model: Module, layer_name: str,
                          eval_fn: Callable[[Module], float]) -> float:
    """Accuracy drop when the named layer is bypassed with an identity mapping.

    If the bypass breaks the forward pass (shape mismatch), the layer is
    treated as irremovable (``inf`` drop) so the RI score pushes it to the
    bottom of the removal ranking.
    """
    baseline = eval_fn(model)
    original = _set_submodule(model, layer_name, Identity())
    try:
        ablated = eval_fn(model)
        drop = max(baseline - ablated, 0.0)
    except Exception:
        drop = float("inf")
    finally:
        _set_submodule(model, layer_name, original)
    return drop


def compute_layer_indicators(model: Module, input_shape: Tuple[int, int, int],
                             candidate_layers: Optional[Sequence[str]] = None,
                             eval_fn: Optional[Callable[[Module], float]] = None,
                             min_accuracy_drop: float = 1e-3) -> List[LayerIndicator]:
    """RI scores (Eq. 5) for the candidate layers, sorted high→low.

    Parameters
    ----------
    model : Module
    input_shape : (C, H, W)
        Probe input used to obtain per-layer parameter/MAC shares.
    candidate_layers : list of str, optional
        Dotted module names eligible for removal; defaults to every profiled
        layer that holds parameters.
    eval_fn : callable, optional
        ``eval_fn(model) -> accuracy`` on a calibration set.  When omitted the
        accuracy-drop denominator is 1 for every layer (cost-only ranking).
    min_accuracy_drop : float
        Floor for the denominator so RI stays finite for harmless layers.
    """
    profile: ModelProfile = profile_model(model, input_shape)
    total_params = max(profile.total_parameters, 1)
    total_macs = max(profile.total_macs, 1)

    if candidate_layers is None:
        candidate_layers = [l.name for l in profile.layers if l.parameters > 0]

    indicators: List[LayerIndicator] = []
    for layer in profile.layers:
        if layer.name not in candidate_layers:
            continue
        param_ratio = layer.parameters / total_params
        compute_ratio = layer.macs / total_macs
        if eval_fn is not None:
            drop = measure_accuracy_drop(model, layer.name, eval_fn)
        else:
            drop = min_accuracy_drop
        denom = max(drop, min_accuracy_drop)
        ri = (param_ratio * compute_ratio) / denom if np.isfinite(denom) else 0.0
        if not np.isfinite(drop):
            ri = 0.0
        indicators.append(LayerIndicator(layer.name, param_ratio, compute_ratio,
                                         drop if np.isfinite(drop) else float("inf"), ri))
    indicators.sort(key=lambda item: item.ri, reverse=True)
    return indicators


def removal_order(indicators: Sequence[LayerIndicator]) -> List[str]:
    """Layer names in the order the auto-builder should remove them."""
    return [item.name for item in indicators if item.ri > 0]
