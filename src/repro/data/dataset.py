"""Dataset abstractions (map-style datasets, subsets, splits)."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

import numpy as np


class Dataset:
    """Map-style dataset: implements ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int):  # pragma: no cover - abstract
        raise NotImplementedError


class TensorDataset(Dataset):
    """Wrap equal-length arrays; ``__getitem__`` returns one slice of each."""

    def __init__(self, *arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("TensorDataset requires at least one array")
        length = len(arrays[0])
        for a in arrays:
            if len(a) != length:
                raise ValueError(
                    f"all arrays must share the first dimension; got {length} and {len(a)}"
                )
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, ...]:
        item = tuple(a[index] for a in self.arrays)
        return item if len(item) > 1 else item[0]


class TransformDataset(Dataset):
    """Apply a per-sample transform to the first element of each item.

    For ``(image, label)`` datasets the transform runs on the image and the
    label passes through; for single-array datasets it runs on the sample
    itself.  This is how transform-heavy pipelines are expressed for the
    prefetching loader without baking augmentation into every dataset class.
    """

    def __init__(self, dataset: Dataset, transform) -> None:
        self.dataset = dataset
        self.transform = transform

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int):
        item = self.dataset[index]
        if isinstance(item, tuple):
            return (self.transform(item[0]),) + item[1:]
        return self.transform(item)

    # ------------------------------------------------------------- persistence
    def rng_state(self):
        """The transform pipeline's RNG state, if it exposes one (checkpoints)."""
        if hasattr(self.transform, "rng_state"):
            return self.transform.rng_state()
        return None

    def set_rng_state(self, state) -> None:
        if state is not None and hasattr(self.transform, "set_rng_state"):
            self.transform.set_rng_state(state)


class Subset(Dataset):
    """A view of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]

    # ------------------------------------------------------------- persistence
    def rng_state(self):
        """Delegate to the underlying dataset so augmentation RNG streams
        behind a split/view still land in training checkpoints."""
        if hasattr(self.dataset, "rng_state"):
            return self.dataset.rng_state()
        return None

    def set_rng_state(self, state) -> None:
        if state is not None and hasattr(self.dataset, "set_rng_state"):
            self.dataset.set_rng_state(state)


def random_split(dataset: Dataset, lengths: Sequence[int],
                 rng: np.random.Generator | None = None) -> List[Subset]:
    """Randomly partition a dataset into subsets of the given lengths."""
    if sum(lengths) != len(dataset):
        raise ValueError(
            f"sum of lengths ({sum(lengths)}) must equal dataset size ({len(dataset)})"
        )
    rng = rng if rng is not None else np.random.default_rng()
    permutation = rng.permutation(len(dataset))
    splits: List[Subset] = []
    offset = 0
    for length in lengths:
        splits.append(Subset(dataset, permutation[offset:offset + length].tolist()))
        offset += length
    return splits


class ConcatDataset(Dataset):
    """Concatenate several datasets end to end (VOC2007+VOC2012-style trainval)."""

    def __init__(self, datasets: Iterable[Dataset]) -> None:
        self.datasets = list(datasets)
        if not self.datasets:
            raise ValueError("ConcatDataset requires at least one dataset")
        self.cumulative = np.cumsum([len(d) for d in self.datasets])

    def __len__(self) -> int:
        return int(self.cumulative[-1])

    def __getitem__(self, index: int):
        dataset_idx = int(np.searchsorted(self.cumulative, index, side="right"))
        prev = 0 if dataset_idx == 0 else int(self.cumulative[dataset_idx - 1])
        return self.datasets[dataset_idx][index - prev]

    # ------------------------------------------------------------- persistence
    def rng_state(self):
        """Per-member RNG states (``None`` for members without one)."""
        states = [d.rng_state() if hasattr(d, "rng_state") else None
                  for d in self.datasets]
        return states if any(state is not None for state in states) else None

    def set_rng_state(self, states) -> None:
        if states is None:
            return
        for dataset, state in zip(self.datasets, states):
            if state is not None and hasattr(dataset, "set_rng_state"):
                dataset.set_rng_state(state)
