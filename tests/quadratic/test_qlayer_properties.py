"""Property-based tests across every registered quadratic neuron design.

These complement the per-type unit tests in ``test_qlayers.py``: instead of
checking one hand-picked configuration per design, they assert invariants that
must hold for *any* registered type — the parameter count predicted by the
Table-1 registry, second-order polynomial behaviour of the layer function,
numeric gradient correctness and state-dict round-tripping.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.quadratic import NEURON_TYPES, QuadraticLinear, quadratic_layer, resolve_type
from repro.quadratic.layers.qconv import QuadraticConv2d, QuadraticConv2dT1

#: Types usable with the dense QuadraticLinear layer (every registered design).
ALL_TYPES = sorted(NEURON_TYPES)
#: Types whose convolutional form composes from first-order convs (non-full-rank).
COMPOSABLE_TYPES = sorted(name for name, spec in NEURON_TYPES.items() if not spec.full_rank)

neuron_type = st.sampled_from(ALL_TYPES)
composable_type = st.sampled_from(COMPOSABLE_TYPES)


def dense_layer(name: str, in_features: int = 4, out_features: int = 3,
                bias: bool = True) -> QuadraticLinear:
    if resolve_type(name).name == "T4_ID":
        out_features = in_features  # the identity path needs matching dimensions
    return QuadraticLinear(in_features, out_features, neuron_type=name, bias=bias)


# --------------------------------------------------------------------------- #
# Parameter counts follow the Table-1 registry
# --------------------------------------------------------------------------- #

@given(name=neuron_type, in_features=st.integers(2, 6), out_features=st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_dense_parameter_count_matches_registry(name, in_features, out_features):
    spec = resolve_type(name)
    if name == "T4_ID" and in_features != out_features:
        in_features = out_features  # identity path needs matching dimensions
    layer = QuadraticLinear(in_features, out_features, neuron_type=name, bias=False)
    expected = spec.weight_sets * in_features * out_features
    if spec.full_rank:
        expected += out_features * in_features * in_features
    assert layer.num_parameters() == expected


@given(name=composable_type, channels=st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_conv_parameter_count_matches_registry(name, channels):
    spec = resolve_type(name)
    layer = QuadraticConv2d(channels, channels, kernel_size=3, padding=1, neuron_type=name,
                            bias=False)
    assert layer.num_parameters() == spec.weight_sets * channels * channels * 3 * 3


# --------------------------------------------------------------------------- #
# Every design computes a polynomial of degree exactly two in its input
# --------------------------------------------------------------------------- #

@given(name=neuron_type, seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_dense_layer_output_is_second_order_polynomial(name, seed):
    rng = np.random.default_rng(seed)
    layer = dense_layer(name, in_features=3, out_features=3, bias=False)
    x0 = rng.normal(size=(1, 3)).astype(np.float64)
    direction = rng.normal(size=(1, 3)).astype(np.float64)

    h = 0.5
    with no_grad():
        values = np.array([
            float(layer(Tensor((x0 + i * h * direction).astype(np.float32))).sum().item())
            for i in range(4)
        ], dtype=np.float64)
    third_difference = np.diff(np.diff(np.diff(values)))
    scale = max(np.abs(values).max(), 1.0)
    # Third finite differences of a quadratic polynomial vanish (float32 noise aside).
    assert np.all(np.abs(third_difference) <= 5e-3 * scale)


@given(name=neuron_type, seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_pure_second_order_terms_scale_quadratically(name, seed):
    """For designs without a linear path, f(t·x) == t²·f(x) when bias is off."""
    spec = resolve_type(name)
    if spec.has_linear_path:
        return  # mixed first/second order terms are covered by the polynomial test
    rng = np.random.default_rng(seed)
    layer = dense_layer(name, bias=False)
    x = rng.normal(size=(2, 4)).astype(np.float32)
    with no_grad():
        base = layer(Tensor(x)).data
        scaled = layer(Tensor(3.0 * x)).data
    np.testing.assert_allclose(scaled, 9.0 * base, rtol=1e-4, atol=1e-5)


# --------------------------------------------------------------------------- #
# Gradients are correct for every design (numeric check, dense layers)
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", ALL_TYPES)
def test_dense_weight_gradients_match_numeric(name, numgrad):
    layer = dense_layer(name, in_features=3, out_features=2)
    x_data = np.random.default_rng(7).normal(size=(2, 3)).astype(np.float32)

    def loss_value():
        with no_grad():
            return float(layer(Tensor(x_data)).sum().item())

    weight_name = layer.weight_parameter_names()[0]
    weight = layer._parameters[weight_name]
    expected = numgrad(loss_value, weight.data)

    layer.zero_grad()
    layer(Tensor(x_data)).sum().backward()
    np.testing.assert_allclose(weight.grad, expected, rtol=2e-2, atol=2e-2)


@pytest.mark.parametrize("name", ALL_TYPES)
def test_dense_input_gradients_are_finite_and_nonzero(name):
    layer = dense_layer(name)
    x = Tensor(np.random.default_rng(3).normal(size=(2, 4)).astype(np.float32),
               requires_grad=True)
    layer(x).sum().backward()
    assert x.grad is not None
    assert np.isfinite(x.grad).all()
    assert np.abs(x.grad).sum() > 0


# --------------------------------------------------------------------------- #
# Factory / state dict round trips
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", COMPOSABLE_TYPES)
def test_factory_conv_forward_shape_for_every_composable_type(name):
    layer = quadratic_layer(name, 3, 6, kernel_size=3, stride=1, padding=1) \
        if name != "T4_ID" else quadratic_layer(name, 6, 6, kernel_size=3, padding=1)
    in_channels = layer.in_channels
    x = Tensor(np.random.default_rng(0).normal(size=(2, in_channels, 8, 8)).astype(np.float32))
    assert layer(x).shape == (2, layer.out_channels, 8, 8)


@given(name=neuron_type)
@settings(max_examples=15, deadline=None)
def test_state_dict_roundtrip_reproduces_outputs(name):
    source = dense_layer(name, in_features=4, out_features=4)
    target = dense_layer(name, in_features=4, out_features=4)
    target.load_state_dict(source.state_dict())
    x = Tensor(np.random.default_rng(11).normal(size=(3, 4)).astype(np.float32))
    with no_grad():
        np.testing.assert_allclose(source(x).data, target(x).data, rtol=1e-6, atol=1e-7)


def test_full_rank_conv_parameter_count_is_quadratic_in_patch():
    small = QuadraticConv2dT1(2, 4, kernel_size=3, bias=False)
    large = QuadraticConv2dT1(4, 4, kernel_size=3, bias=False)
    # Doubling the input channels doubles the patch size and quadruples the
    # bilinear tensor (the P2 memory-explosion mechanism).
    assert large.num_parameters() == 4 * small.num_parameters()
