"""The compute-backend interface and registry of the compiled inference path.

Every numerical primitive the inference compiler emits — the GEMMs behind
dense layers, the ``im2col`` lowering and grouped projections behind
convolutions, the fused quadratic combination, pooling and the element-wise
glue — is dispatched through exactly one object: a :class:`Backend`.  The
compile rules in :mod:`repro.inference.compiler` close over the backend
instead of calling NumPy directly, so swapping the execution engine of a
model is a one-word change (``compile_model(model, backend="threaded")``)
and adding an engine is a subclass plus a :func:`register_backend` call —
the same shape as neon's ``NervanaObject.be`` seam, where every layer talks
to one shared backend object.

The base class is itself the **reference implementation**: plain
single-threaded NumPy, the exact arithmetic the eager forward performs.
Subclasses override only the primitives they accelerate; anything they leave
alone keeps reference numerics, so partial backends are always correct.

Registered engines (see the sibling modules):

========== ====== ======================================================
name       exact  description
========== ====== ======================================================
numpy      yes    reference single-threaded NumPy (the eager numerics)
threaded   yes    multi-threaded cache-blocked GEMM/im2col, probe-verified
int8       no     dynamic int8 quantized execution (fixed-point scales)
========== ====== ======================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple, Type, Union

import numpy as np

from ..autodiff.function import Context
from ..autodiff.ops import conv as conv_ops
from ..autodiff.ops.conv import im2col as _im2col
from ..quadratic.functional import FUSED_COMBINERS


class Backend:
    """One execution engine for compiled inference.

    The class doubles as the ``numpy`` reference backend: each method is the
    exact NumPy computation the eager forward performs, so a compiled model
    on the base backend is bit-identical to eager evaluation.  Subclasses
    override individual primitives; ``exact`` declares whether every override
    preserves reference bits (``threaded``) or trades accuracy for speed
    (``int8``).

    A fresh instance is created per :func:`~repro.inference.compile_model`
    call (instances may cache per-weight state, e.g. quantized weights), so
    backends must be cheap to construct.
    """

    #: registry key; subclasses must override.
    name = "numpy"
    #: True when every primitive reproduces the eager float32 bits.
    exact = True

    # ------------------------------------------------------------ buffers
    def make_pool(self):
        """A fresh :class:`~repro.inference.BufferPool` for scratch arrays."""
        from ..inference.buffers import BufferPool  # lazy: avoids import cycle

        return BufferPool()

    # --------------------------------------------------------- element-wise
    # NumPy-ufunc-compatible handles (``out=`` supported).  The fused
    # quadratic combiners receive the backend as their ``ops`` argument, so
    # these six names are the element-wise surface a backend can redirect.
    multiply = staticmethod(np.multiply)
    add = staticmethod(np.add)
    subtract = staticmethod(np.subtract)
    maximum = staticmethod(np.maximum)
    copyto = staticmethod(np.copyto)
    where = staticmethod(np.where)

    # ----------------------------------------------------------------- GEMM
    def gemm(self, x: np.ndarray, weight_t: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        """``x @ weight_t`` (dense projection; ``weight_t`` is already W.T)."""
        if out is None:
            return x @ weight_t
        return np.matmul(x, weight_t, out=out)

    # ----------------------------------------------------------- convolution
    def im2col(self, x: np.ndarray, kh: int, kw: int,
               stride: Tuple[int, int], padding: Tuple[int, int],
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """Lower input patches to columns (strided copies, no arithmetic)."""
        return _im2col(x, kh, kw, stride, padding, out=out)

    def conv_project(self, cols: np.ndarray, wmat: np.ndarray, out: np.ndarray,
                     cache: dict) -> np.ndarray:
        """One grouped-conv projection on pre-lowered columns.

        The eager convolution computes ``einsum("gfk,ngko->ngfo")`` with
        ``optimize=True``; for most shapes NumPy resolves that to exactly one
        batched ``matmul``, which is ~6× cheaper to dispatch.  Whether the
        two routes are bit-identical depends only on the operand shapes (BLAS
        picks its reduction order from shapes and strides, never from
        values), so the first call per shape compares both routes on *dense
        random probes* of the same shapes and caches the verdict in
        ``cache`` — matmul where it provably matches the training-path
        numerics, eager einsum everywhere else.  Probes (rather than the live
        operands) keep a degenerate first input — an all-zero image,
        untrained zero weights — from locking in a trivially-equal
        comparison.
        """
        shape_key = (wmat.shape, cols.shape)
        use_matmul = cache.get(shape_key)
        if use_matmul is None:
            probe_rng = np.random.default_rng(0)
            probe_w = probe_rng.standard_normal(wmat.shape).astype(wmat.dtype)
            probe_c = probe_rng.standard_normal(cols.shape).astype(cols.dtype)
            reference = np.einsum("gfk,ngko->ngfo", probe_w, probe_c, optimize=True)
            fast = np.matmul(probe_w, probe_c)
            use_matmul = bool(np.array_equal(reference, fast))
            cache[shape_key] = use_matmul
        if use_matmul:
            return np.matmul(wmat, cols, out=out)
        return np.einsum("gfk,ngko->ngfo", wmat, cols, optimize=True, out=out)

    # ------------------------------------------------------ quadratic combine
    def combine(self, neuron_type: str, responses: Sequence[np.ndarray],
                out: Optional[np.ndarray] = None) -> np.ndarray:
        """Fuse first-order responses into the quadratic neuron output.

        Delegates to the fused ``out=`` kernels of
        :mod:`repro.quadratic.functional`, handing itself over as the
        element-wise ``ops`` provider so subclasses that redirect
        ``multiply``/``add``/``copyto`` automatically redirect the combine.
        """
        return FUSED_COMBINERS[neuron_type](*responses, out=out, ops=self)

    # --------------------------------------------------------------- pooling
    def maxpool(self, x: np.ndarray, kernel_size, stride, padding) -> np.ndarray:
        """General max pooling (the autodiff op's forward; bit-identical).

        Under ``inference_mode`` the op's ``save_for_backward`` is a no-op,
        so this is pure forward arithmetic.
        """
        return conv_ops.MaxPool2d.forward(Context(), x, kernel_size=kernel_size,
                                          stride=stride, padding=padding)

    def avgpool(self, x: np.ndarray, kernel_size, stride=None,
                padding=0) -> np.ndarray:
        """General average pooling (the autodiff op's forward)."""
        return conv_ops.AvgPool2d.forward(Context(), x, kernel_size=kernel_size,
                                          stride=stride, padding=padding)

    # ------------------------------------------------------------ measurement
    def measure_rates(self, budget_ms: float = 60.0, refresh: bool = False):
        """Measured sustained per-kernel throughput of this engine on this host.

        Runs the :mod:`repro.backends.rates` micro-probes (GEMM, conv
        lowering, element-wise glue, dispatch/IPC/copy overheads) and
        returns a :class:`~repro.backends.rates.KernelRates` record — the
        empirical half of the capacity model (:mod:`repro.capacity`), which
        prices a model's per-layer work counts with these slopes.  Results
        are cached per (backend, host) in-process and on disk, so only the
        first call per host pays the ~6 x ``budget_ms`` probe cost.
        """
        from .rates import measure_backend_rates  # lazy: keep base import-light

        return measure_backend_rates(self, budget_ms=budget_ms, refresh=refresh)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, exact={self.exact})"


#: backend name -> Backend subclass.  Populated by :func:`register_backend`;
#: ``repro list backends``, the CLI flags and :class:`repro.serve.ServeConfig`
#: validation are all generated from this single table.
BACKENDS: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator adding a :class:`Backend` subclass to the registry."""
    if not cls.name or cls.name != cls.name.lower():
        raise ValueError(f"backend name must be a non-empty lowercase string, "
                         f"got {cls.name!r}")
    BACKENDS[cls.name] = cls
    return cls


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(BACKENDS)


def backend_description(name: str) -> str:
    """First docstring line of a registered backend (for tables/help text)."""
    doc = BACKENDS[name].__doc__ or ""
    return next(iter(doc.strip().splitlines()), "")


def get_backend(backend: Union[str, Backend, None] = None) -> Backend:
    """Resolve a backend argument to a fresh :class:`Backend` instance.

    ``None`` means the reference ``numpy`` backend; strings are looked up
    case-insensitively in :data:`BACKENDS`; instances pass through untouched
    (callers that pre-configured one, e.g. a thread count, keep it).
    """
    if isinstance(backend, Backend):
        return backend
    name = "numpy" if backend is None else str(backend).strip().lower()
    cls = BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend '{backend}'; registered backends: "
            f"{', '.join(backend_names())}")
    return cls()
