"""Micro-batching BatchedPredictor behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.experiment import Experiment, get_preset
from repro.inference import BatchedPredictor, compile_model
from repro.utils import seed_everything


def small_model() -> nn.Sequential:
    seed_everything(0)
    return nn.Sequential(nn.Flatten(), nn.Linear(12, 8), nn.ReLU(), nn.Linear(8, 3))


def samples(count: int, shape=(3, 2, 2)) -> np.ndarray:
    rng = np.random.default_rng(3)
    return rng.standard_normal((count,) + shape).astype(np.float32)


class TestBatchedPredictor:
    def test_predict_matches_direct_compiled_forward(self):
        model = small_model()
        compiled = compile_model(model)
        with BatchedPredictor(compiled, max_batch_size=4) as predictor:
            batch = samples(1)
            out = predictor.predict(batch[0])
        np.testing.assert_array_equal(out, compiled(batch)[0])

    def test_submissions_are_coalesced_into_micro_batches(self):
        model = small_model()
        predictor = BatchedPredictor(model, max_batch_size=4, max_wait=0.05,
                                     autostart=False)
        batch = samples(10)
        handles = [predictor.submit(sample) for sample in batch]
        predictor.start()
        outputs = np.stack([handle.result(timeout=10.0) for handle in handles])
        predictor.close()

        direct = predictor.compiled(batch)
        np.testing.assert_allclose(outputs, direct, atol=1e-6, rtol=1e-5)
        stats = predictor.stats
        assert stats.requests == 10
        assert stats.batches < stats.requests          # batching happened
        assert stats.max_batch_size_seen <= 4
        assert stats.batched_samples == 10
        assert stats.mean_batch_size > 1.0

    def test_results_keep_request_order_identity(self):
        # Distinct inputs must map to their own outputs even when coalesced.
        model = small_model()
        predictor = BatchedPredictor(model, max_batch_size=8, max_wait=0.05,
                                     autostart=False)
        batch = samples(6)
        handles = [predictor.submit(sample) for sample in batch]
        predictor.start()
        outputs = [handle.result(timeout=10.0) for handle in handles]
        predictor.close()
        for sample, out in zip(batch, outputs):
            np.testing.assert_allclose(out, predictor.compiled(sample[None])[0],
                                       atol=1e-6, rtol=1e-5)

    def test_predict_batch_chunks_by_max_batch_size(self):
        model = small_model()
        predictor = BatchedPredictor(model, max_batch_size=4)
        batch = samples(9)
        out = predictor.predict_batch(batch)
        assert out.shape == (9, 3)
        assert list(predictor.stats.batch_sizes) == [4, 4, 1]
        predictor.close()

    def test_worker_errors_propagate_to_the_caller(self):
        model = small_model()
        with BatchedPredictor(model, max_batch_size=2) as predictor:
            bad = np.zeros((5,), dtype=np.float32)  # wrong feature count
            with pytest.raises(Exception):
                predictor.predict(bad, timeout=10.0)

    def test_submit_after_close_raises(self):
        predictor = BatchedPredictor(small_model())
        predictor.close()
        with pytest.raises(RuntimeError, match="shut down"):
            predictor.submit(samples(1)[0])

    def test_close_is_idempotent(self):
        predictor = BatchedPredictor(small_model())
        predictor.predict(samples(1)[0])
        predictor.close()
        predictor.close()

    def test_close_rejects_samples_the_worker_never_served(self):
        # Worker intentionally never started: queued handles must fail fast
        # instead of blocking until their timeout.
        predictor = BatchedPredictor(small_model(), autostart=False)
        handle = predictor.submit(samples(1)[0])
        predictor.close()
        with pytest.raises(RuntimeError, match="closed"):
            handle.result(timeout=5.0)

    def test_start_after_close_raises(self):
        predictor = BatchedPredictor(small_model(), autostart=False)
        predictor.close()
        with pytest.raises(RuntimeError, match="shut down"):
            predictor.start()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BatchedPredictor(small_model(), max_batch_size=0)
        with pytest.raises(ValueError):
            BatchedPredictor(small_model(), max_wait=-1.0)


class TestShutdownRobustness:
    """Shutdown semantics hardened for the repro.serve pool integration."""

    def test_shutdown_is_an_idempotent_alias_of_close(self):
        predictor = BatchedPredictor(small_model())
        predictor.predict(samples(1)[0])
        predictor.shutdown()
        predictor.shutdown()          # double-shutdown must be a no-op
        predictor.close()             # and mixing the two names is fine

    def test_submit_after_shutdown_raises_a_clear_error(self):
        predictor = BatchedPredictor(small_model())
        predictor.predict(samples(1)[0])
        predictor.shutdown()
        with pytest.raises(RuntimeError, match="create a new BatchedPredictor"):
            predictor.submit(samples(1)[0])
        # A second violation gets the same clear answer, not a hang.
        with pytest.raises(RuntimeError, match="create a new BatchedPredictor"):
            predictor.submit(samples(1)[0])

    def test_worker_thread_is_daemonized(self):
        predictor = BatchedPredictor(small_model())
        predictor.predict(samples(1)[0])
        assert predictor._worker is not None and predictor._worker.daemon
        predictor.shutdown()

    def test_abandoned_predictor_does_not_hang_interpreter_exit(self):
        # A predictor that was never closed must not keep the interpreter
        # alive: its worker is a daemon thread.  Run a real interpreter so we
        # observe actual process exit, with a hard timeout as the failure mode.
        import subprocess
        import sys

        script = (
            "import numpy as np\n"
            "from repro import nn\n"
            "from repro.inference import BatchedPredictor\n"
            "model = nn.Sequential(nn.Flatten(), nn.Linear(12, 8))\n"
            "predictor = BatchedPredictor(model, max_batch_size=4)\n"
            "out = predictor.predict(np.zeros((3, 2, 2), dtype=np.float32))\n"
            "assert out.shape == (8,)\n"
            "print('served-without-close')\n"   # predictor deliberately abandoned
        )
        result = subprocess.run([sys.executable, "-c", script], timeout=60,
                                capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        assert "served-without-close" in result.stdout


class TestBatchDependenceWarning:
    def test_micro_batching_a_batch_stat_model_warns(self):
        model = nn.Sequential(nn.Flatten(), nn.Linear(12, 8),
                              nn.BatchNorm1d(8, track_running_stats=False))
        with pytest.warns(RuntimeWarning, match="batch statistics"):
            predictor = BatchedPredictor(model, max_batch_size=4)
        predictor.close()

    def test_max_batch_size_one_does_not_warn(self):
        import warnings

        model = nn.Sequential(nn.Flatten(), nn.Linear(12, 8),
                              nn.BatchNorm1d(8, track_running_stats=False))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            predictor = BatchedPredictor(model, max_batch_size=1)
        predictor.close()


class TestMeasureServing:
    def test_shared_measurement_pipeline(self):
        from repro.inference import compile_model, measure_serving

        model = small_model()
        model.eval()
        compiled = compile_model(model)
        results = measure_serving(model, compiled, samples(6),
                                  max_batch_size=4, max_wait=0.01, repeats=1)
        assert results["max_abs_diff"] == 0.0       # bit-exact on this model
        assert results["fallback_modules"] == 0
        assert results["eager_ms_per_sample"] > 0
        assert results["compiled_ms_per_sample"] > 0
        assert results["samples"] == 6
        assert results["batches"] >= 2              # 6 samples, cap 4
        assert results["throughput_samples_per_s"] > 0

    def test_measure_serving_forces_and_restores_eval_semantics(self):
        from repro.inference import compile_model, measure_serving

        model = nn.Sequential(nn.Flatten(), nn.Linear(12, 8), nn.BatchNorm1d(8))
        model.train(True)
        bn = model[2]
        mean_before = bn.running_mean.copy()
        results = measure_serving(model, compile_model(model), samples(4),
                                  max_batch_size=2, repeats=1)
        np.testing.assert_array_equal(bn.running_mean, mean_before)
        assert model.training                       # restored
        assert results["max_abs_diff"] == 0.0       # compared in eval mode

    def test_max_abs_diff_treats_matching_nonfinite_as_agreement(self):
        from repro.inference import max_abs_diff

        a = np.array([1.0, np.inf, np.nan, -np.inf], dtype=np.float32)
        assert max_abs_diff(a, a.copy()) == 0.0
        b = np.array([1.0, np.inf, 0.0, -np.inf], dtype=np.float32)
        assert np.isnan(max_abs_diff(a, b))         # NaN vs finite surfaces
        c = np.array([1.5, np.inf, np.nan, -np.inf], dtype=np.float32)
        assert max_abs_diff(a, c) == 0.5


class TestExperimentIntegration:
    def test_experiment_predictor_and_compile_inference(self):
        experiment = Experiment(get_preset("smoke"))
        model = experiment.build()
        compiled = experiment.compile_inference()
        assert experiment.results["compile"]["steps"] == compiled.num_steps
        assert experiment.results["compile"]["fallback_modules"] == 0

        rng = np.random.default_rng(0)
        batch = rng.standard_normal((3, 3, 32, 32)).astype(np.float32)
        with experiment.predictor(max_batch_size=4, max_wait=0.01) as predictor:
            out = predictor.predict(batch[0], timeout=30.0)
        np.testing.assert_allclose(out, compiled(batch[:1])[0], atol=0, rtol=1e-5)
