"""``repro.metrics`` — accuracy, VOC mAP and generative-model scores."""

from .classification import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from .detection import average_precision, evaluate_detections
from .generation import (
    GenerationScores,
    ProxyInception,
    evaluate_generator,
    frechet_distance,
    inception_score,
)

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "average_precision",
    "evaluate_detections",
    "ProxyInception",
    "GenerationScores",
    "inception_score",
    "frechet_distance",
    "evaluate_generator",
]
