"""Per-endpoint latency and outcome counters for the HTTP front door.

Nothing fancy — a lock-guarded counter set per endpoint (requests, errors,
shed requests, total/max latency) that serializes to the ``GET /stats``
payload.  Kept separate from the pool's own counters so the front door can
report both: what HTTP saw, and what the pool did about it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict


class EndpointMetrics:
    """Counters for one endpoint (requests, status classes, latency)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0       # 4xx: the caller's fault
        self.failures = 0     # 5xx: our fault (includes shed load)
        self.shed = 0         # the 503 subset rejected by backpressure
        self.total_ms = 0.0
        self.max_ms = 0.0

    def record(self, latency_ms: float, status: int, shed: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if 400 <= status < 500:
                self.errors += 1
            elif status >= 500:
                self.failures += 1
            if shed:
                self.shed += 1
            self.total_ms += latency_ms
            self.max_ms = max(self.max_ms, latency_ms)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            mean = self.total_ms / self.requests if self.requests else 0.0
            return {
                "requests": self.requests,
                "errors_4xx": self.errors,
                "failures_5xx": self.failures,
                "shed": self.shed,
                "mean_ms": round(mean, 3),
                "max_ms": round(self.max_ms, 3),
            }


class ServingMetrics:
    """All endpoint counters plus uptime/throughput for ``GET /stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self.started_at = time.time()

    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            metrics = self._endpoints.get(name)
            if metrics is None:
                metrics = self._endpoints[name] = EndpointMetrics(name)
            return metrics

    def to_dict(self) -> Dict[str, Any]:
        uptime = time.time() - self.started_at
        with self._lock:
            endpoints = {name: metrics.to_dict()
                         for name, metrics in sorted(self._endpoints.items())}
        predict = endpoints.get("/predict", {})
        served = predict.get("requests", 0)
        return {
            "uptime_seconds": round(uptime, 3),
            "throughput_rps": round(served / uptime, 3) if uptime > 0 else 0.0,
            "endpoints": endpoints,
        }
