"""LRU response cache: digests, eviction, bit-identical hits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import LRUCache, input_digest


class TestInputDigest:
    def test_equal_arrays_share_a_digest(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        b = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert input_digest(a) == input_digest(b)

    def test_value_shape_and_dtype_all_matter(self):
        flat = np.arange(12, dtype=np.float32)
        assert input_digest(flat) != input_digest(flat.reshape(3, 4))
        assert input_digest(flat) != input_digest(flat.astype(np.float64))
        bumped = flat.copy()
        bumped[0] += 1e-7
        assert input_digest(flat) != input_digest(bumped)

    def test_non_contiguous_arrays_are_handled(self):
        base = np.arange(16, dtype=np.float32).reshape(4, 4)
        view = base[:, ::2]
        assert input_digest(view) == input_digest(np.ascontiguousarray(view))


class TestLRUCache:
    def test_hit_returns_the_exact_stored_payload(self):
        cache = LRUCache(capacity=4)
        key = input_digest(np.ones(3, dtype=np.float32))
        payload = np.array([1.5, -2.25, 3.125], dtype=np.float32)
        cache.put(key, payload)
        hit = cache.get(key)
        # Bit-identical: same bytes, same dtype — in fact the same array.
        assert hit is payload
        assert np.array_equal(hit, payload)
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_is_counted(self):
        cache = LRUCache(capacity=4)
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_least_recently_used_entry_is_evicted(self):
        cache = LRUCache(capacity=2)
        cache.put("a", np.float32(1))
        cache.put("b", np.float32(2))
        assert cache.get("a") is not None    # refresh "a"; "b" is now oldest
        cache.put("c", np.float32(3))
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.evictions == 1

    def test_capacity_zero_disables_caching(self):
        cache = LRUCache(capacity=0)
        cache.put("a", np.float32(1))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_stats_snapshot(self):
        cache = LRUCache(capacity=2)
        cache.put("a", np.float32(1))
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats == {"capacity": 2, "entries": 1, "hits": 1,
                         "misses": 1, "evictions": 0}
