"""Shape-manipulation primitives: reshape, transpose, slicing, concat, pad."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..function import Context, Function


class Reshape(Function):
    """``out = a.reshape(shape)``."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        ctx.a_shape = a.shape
        return np.reshape(a, shape)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (np.reshape(np.asarray(grad), ctx.a_shape), None)


class Transpose(Function):
    """``out = a.transpose(axes)`` (full permutation)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axes: Tuple[int, ...]) -> np.ndarray:
        ctx.axes = tuple(axes)
        return np.transpose(a, ctx.axes)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        inverse = np.argsort(ctx.axes)
        return (np.transpose(np.asarray(grad), inverse), None)


class Squeeze(Function):
    """Remove a size-1 axis."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: int) -> np.ndarray:
        ctx.a_shape = a.shape
        return np.squeeze(a, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (np.reshape(np.asarray(grad), ctx.a_shape), None)


class Unsqueeze(Function):
    """Insert a size-1 axis."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: int) -> np.ndarray:
        ctx.a_shape = a.shape
        return np.expand_dims(a, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (np.reshape(np.asarray(grad), ctx.a_shape), None)


class BroadcastTo(Function):
    """Explicit broadcast; gradient sums over the broadcast axes."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        ctx.a_shape = a.shape
        return np.broadcast_to(a, shape).copy()

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        from ..function import unbroadcast

        return (unbroadcast(np.asarray(grad), ctx.a_shape), None)


class GetItem(Function):
    """Basic/advanced indexing; gradient scatters back with accumulation."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, index) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.a_dtype = a.dtype
        ctx.index = index
        return a[index]

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        out = np.zeros(ctx.a_shape, dtype=ctx.a_dtype)
        np.add.at(out, ctx.index, np.asarray(grad))
        return (out, None)


class Concat(Function):
    """Concatenate a list of arrays along an axis.

    Unlike binary ops, ``Concat.apply`` is invoked with a variable number of
    tensor arguments followed by the keyword ``axis``.
    """

    @staticmethod
    def forward(ctx: Context, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        ctx.axis = axis
        ctx.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        splits = np.cumsum(ctx.sizes)[:-1]
        pieces = np.split(np.asarray(grad), splits, axis=ctx.axis)
        return tuple(pieces)


class Stack(Function):
    """Stack arrays along a new axis."""

    @staticmethod
    def forward(ctx: Context, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        ctx.axis = axis
        return np.stack(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        grad = np.asarray(grad)
        n = grad.shape[ctx.axis]
        pieces = np.split(grad, n, axis=ctx.axis)
        return tuple(np.squeeze(p, axis=ctx.axis) for p in pieces)


class Pad(Function):
    """Zero / constant padding (NumPy ``pad_width`` convention)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, pad_width, constant: float = 0.0) -> np.ndarray:
        ctx.pad_width = tuple(tuple(p) for p in pad_width)
        return np.pad(a, ctx.pad_width, mode="constant", constant_values=constant)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        grad = np.asarray(grad)
        slices = tuple(
            slice(before, grad.shape[i] - after)
            for i, (before, after) in enumerate(ctx.pad_width)
        )
        return (grad[slices], None, None)


class Flip(Function):
    """Reverse an array along the given axes (used by data augmentation)."""

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axes: Tuple[int, ...]) -> np.ndarray:
        ctx.axes = tuple(axes)
        return np.flip(a, axis=ctx.axes).copy()

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (np.flip(np.asarray(grad), axis=ctx.axes).copy(), None)
