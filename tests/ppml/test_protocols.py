"""Tests for the PPML protocol cost models."""

from __future__ import annotations

import math

import pytest

from repro.ppml import (
    CRYPTONETS,
    DELPHI,
    GAZELLE,
    PROTOCOLS,
    OperationCosts,
    Protocol,
    ProtocolCost,
    available_protocols,
    resolve_protocol,
)


def test_registry_contains_presets():
    assert set(available_protocols()) == {"delphi", "gazelle", "cryptonets"}
    for name in available_protocols():
        assert PROTOCOLS[name].name == name


def test_resolve_protocol_by_name_and_instance():
    assert resolve_protocol("delphi") is DELPHI
    assert resolve_protocol("DELPHI") is DELPHI
    assert resolve_protocol(GAZELLE) is GAZELLE


def test_resolve_protocol_unknown_raises():
    with pytest.raises(KeyError):
        resolve_protocol("sgx")


def test_relu_dominates_mult_in_hybrid_protocols():
    # The structural fact the whole analysis relies on: a garbled ReLU is far
    # more expensive than a secure multiplication.
    for proto in (DELPHI, GAZELLE):
        assert proto.costs.relu_bytes > 10 * proto.costs.mult_bytes
        assert proto.costs.relu_us > 10 * proto.costs.mult_us


def test_cryptonets_cannot_evaluate_relu():
    assert not CRYPTONETS.supports_relu
    cost = CRYPTONETS.relu_cost(1)
    assert math.isinf(cost.bytes) and math.isinf(cost.microseconds)
    assert not cost.finite()
    # Zero ReLUs are free even for CryptoNets.
    assert CRYPTONETS.relu_cost(0).finite()


def test_cost_scales_linearly_with_count():
    one = DELPHI.relu_cost(1)
    thousand = DELPHI.relu_cost(1000)
    assert thousand.bytes == pytest.approx(1000 * one.bytes)
    assert thousand.microseconds == pytest.approx(1000 * one.microseconds)


def test_protocol_cost_addition_and_units():
    a = ProtocolCost(bytes=1e6, microseconds=2e3)
    b = ProtocolCost(bytes=2e6, microseconds=3e3)
    c = a + b
    assert c.bytes == 3e6 and c.microseconds == 5e3
    assert c.megabytes == pytest.approx(3.0)
    assert c.milliseconds == pytest.approx(5.0)
    a += b
    assert a.bytes == 3e6


def test_custom_protocol():
    cheap_relu = Protocol(
        name="oblivious-trusted-hw",
        reference="hypothetical",
        costs=OperationCosts(0.0, 0.001, 1.0, 0.01, 1.0, 0.01),
    )
    assert cheap_relu.relu_cost(10).bytes == 10.0
    assert resolve_protocol(cheap_relu) is cheap_relu
