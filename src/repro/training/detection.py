"""SSD detector training and evaluation (paper Sec. 5.4, scaled down)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autodiff.tensor import Tensor
from ..data.dataloader import DataLoader
from ..data.synthetic.detection import SyntheticDetectionDataset, detection_collate
from ..metrics.detection import evaluate_detections
from ..models.ssd import SSD
from ..optim.lr_scheduler import MultiStepLR
from ..optim.sgd import SGD


@dataclass
class DetectionTrainingHistory:
    """Per-epoch multibox losses."""

    loss: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss[-1] if self.loss else float("nan")


def train_detector(model: SSD, dataset: SyntheticDetectionDataset, epochs: int = 3,
                   batch_size: int = 8, lr: float = 1e-3, momentum: float = 0.9,
                   weight_decay: float = 5e-4, milestones: Sequence[int] = (),
                   max_batches_per_epoch: Optional[int] = None,
                   seed: int = 0) -> DetectionTrainingHistory:
    """Train the SSD with SGD and the paper's step-decay schedule.

    The paper decays the learning rate 10× at iterations 80 k and 100 k; the
    scaled version exposes the same mechanism through epoch ``milestones``.
    """
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, drop_last=True,
                        collate_fn=detection_collate, seed=seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    scheduler = MultiStepLR(optimizer, milestones=milestones) if milestones else None
    history = DetectionTrainingHistory()

    model.train(True)
    for _ in range(epochs):
        epoch_losses = []
        for batch_index, (images, targets) in enumerate(loader):
            if max_batches_per_epoch is not None and batch_index >= max_batches_per_epoch:
                break
            optimizer.zero_grad()
            cls_logits, box_offsets = model(Tensor(np.asarray(images, dtype=np.float32)))
            loss = model.multibox_loss(cls_logits, box_offsets, targets)
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.loss.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        if scheduler is not None:
            scheduler.step()
    return history


def evaluate_detector(model: SSD, dataset: SyntheticDetectionDataset, batch_size: int = 8,
                      score_threshold: float = 0.3, iou_threshold: float = 0.5,
                      use_11_point: bool = False) -> Dict[str, object]:
    """Run inference over a dataset and compute the VOC mAP (Table 6 metric)."""
    loader = DataLoader(dataset, batch_size=batch_size, collate_fn=detection_collate)
    predictions: List[Dict[str, np.ndarray]] = []
    ground_truths: List[Dict[str, np.ndarray]] = []
    for images, targets in loader:
        detections = model.detect(Tensor(np.asarray(images, dtype=np.float32)),
                                  score_threshold=score_threshold)
        predictions.extend(detections)
        ground_truths.extend(targets)
    return evaluate_detections(predictions, ground_truths, num_classes=model.num_classes,
                               iou_threshold=iou_threshold, use_11_point=use_11_point)
