"""Tests for the component registries behind the unified experiment API."""

from __future__ import annotations

import pytest

from repro.builder.config import MOBILENET_CFGS, RESNET_BLOCKS, VGG_CFGS
from repro.experiment import (
    ARCHITECTURES,
    DATASETS,
    MODELS,
    NEURONS,
    OPTIMIZERS,
    TRAINERS,
    ModelSpec,
    Registry,
    check_neuron_type,
    is_first_order,
    neuron_names,
)
from repro.nn.module import Module
from repro.quadratic.neuron_types import NEURON_TYPES


class TestRegistryMechanics:
    def test_register_and_get(self):
        registry = Registry("thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry and "b" not in registry
        assert len(registry) == 1

    def test_register_as_decorator(self):
        registry = Registry("thing")

        @registry.register("fn")
        def fn():
            return 42

        assert registry.get("fn") is fn

    def test_lookup_is_case_insensitive(self):
        registry = Registry("thing")
        registry.register("MiXeD", "x")
        assert registry.get("mixed") == "x"
        assert registry.get("MIXED") == "x"

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("A", 2)

    def test_unknown_name_lists_registered_entries(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(ValueError, match="alpha, beta"):
            registry.get("gamma")


class TestBuiltinRegistries:
    def test_every_zoo_model_is_registered(self):
        for name in ("vgg8", "vgg16", "vgg16_quadra", "resnet20", "resnet32",
                     "resnet32_quadra", "mobilenet_v1", "mobilenet_v1_quadra",
                     "lenet", "small_convnet", "mlp"):
            assert name in MODELS

    def test_model_factories_build_modules(self):
        spec = ModelSpec(name="lenet", neuron_type="first_order", num_classes=3)
        model = MODELS.get("lenet")(spec)
        assert isinstance(model, Module)

    def test_architecture_tables_migrated(self):
        # The former VGG_CFGS / RESNET_BLOCKS / MOBILENET_CFGS tables are all
        # reachable by name through the registry.
        for name, cfg in VGG_CFGS.items():
            entry = ARCHITECTURES.get(name)
            assert entry["family"] == "vgg" and entry["cfg"] == list(cfg)
        for name, blocks in RESNET_BLOCKS.items():
            assert ARCHITECTURES.get(name)["cfg"] == list(blocks)
        for name, cfg in MOBILENET_CFGS.items():
            assert ARCHITECTURES.get(name)["cfg"] == [list(b) for b in cfg]

    def test_neuron_registry_mirrors_table1(self):
        for name in NEURON_TYPES:
            assert name in NEURONS
        assert "first_order" in NEURONS
        assert neuron_names()[0] == "first_order"

    def test_check_neuron_type_resolves_aliases(self):
        assert check_neuron_type("typenew") == "OURS"
        assert check_neuron_type("fan") == "T2_4"
        assert check_neuron_type("linear") == "first_order"
        assert is_first_order("first_order") and not is_first_order("OURS")

    def test_check_neuron_type_unknown_raises_value_error(self):
        with pytest.raises(ValueError, match="registered neuron types"):
            check_neuron_type("T99")

    def test_trainer_and_optimizer_registries(self):
        assert "classifier" in TRAINERS
        for name in ("sgd", "adam", "adamw", "rmsprop", "adagrad"):
            assert name in OPTIMIZERS

    def test_dataset_registry(self):
        for name in ("synthetic_classification", "xor", "circle"):
            assert name in DATASETS
