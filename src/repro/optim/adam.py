"""Adam and AdamW optimizers (used by the GAN trainer)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn.parameter import Parameter
from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected first/second moments."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        defaults = dict(lr=lr, betas=tuple(betas), eps=eps, weight_decay=weight_decay)
        super().__init__(params, defaults)

    def _apply_weight_decay(self, p: Parameter, grad: np.ndarray, lr: float,
                            weight_decay: float) -> np.ndarray:
        # Classic (L2-regularised) Adam adds the decay to the gradient.
        if weight_decay:
            grad = grad + weight_decay * p.data
        return grad

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for p in group["params"]:
                if p.grad is None or not p.requires_grad:
                    continue
                grad = self._apply_weight_decay(p, p.grad, lr, weight_decay)
                state = self._get_state(p)
                if "step" not in state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(p.data)
                    state["exp_avg_sq"] = np.zeros_like(p.data)
                state["step"] += 1
                t = state["step"]
                state["exp_avg"] = beta1 * state["exp_avg"] + (1 - beta1) * grad
                state["exp_avg_sq"] = beta2 * state["exp_avg_sq"] + (1 - beta2) * grad * grad
                bias1 = 1 - beta1 ** t
                bias2 = 1 - beta2 ** t
                step_size = lr * np.sqrt(bias2) / bias1
                denom = np.sqrt(state["exp_avg_sq"]) + eps
                p.data -= (step_size * state["exp_avg"] / denom).astype(p.data.dtype)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _apply_weight_decay(self, p: Parameter, grad: np.ndarray, lr: float,
                            weight_decay: float) -> np.ndarray:
        if weight_decay:
            p.data -= lr * weight_decay * p.data
        return grad
