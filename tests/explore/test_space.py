"""Tests for the architecture genome and search space."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import randn
from repro.explore import ArchitectureGenome, SearchSpace
from repro.quadratic.layers.qconv import QuadraticConv2d


SMALL_SPACE = SearchSpace(min_stages=2, max_stages=3, min_convs_per_stage=1,
                          max_convs_per_stage=2, width_choices=(8, 16),
                          neuron_types=("first_order", "OURS"), allow_no_activation=True)


# --------------------------------------------------------------------------- #
# Genome
# --------------------------------------------------------------------------- #

def test_genome_basic_views():
    genome = ArchitectureGenome(stage_depths=(2, 1), stage_widths=(16, 32))
    assert genome.num_stages == 2
    assert genome.num_conv_layers == 3
    assert genome.is_quadratic
    assert genome.to_vgg_cfg() == [16, 16, "M", 32, "M"]


def test_genome_first_order_flag():
    genome = ArchitectureGenome((1,), (8,), neuron_type="first_order")
    assert not genome.is_quadratic


def test_genome_validation():
    with pytest.raises(ValueError):
        ArchitectureGenome(stage_depths=(1, 2), stage_widths=(8,))
    with pytest.raises(ValueError):
        ArchitectureGenome(stage_depths=(), stage_widths=())
    with pytest.raises(ValueError):
        ArchitectureGenome(stage_depths=(0,), stage_widths=(8,))
    with pytest.raises(ValueError):
        ArchitectureGenome(stage_depths=(1,), stage_widths=(0,))


def test_genome_key_is_unique_per_configuration():
    a = ArchitectureGenome((2, 1), (16, 32))
    b = ArchitectureGenome((2, 1), (16, 32), use_activation=False)
    c = ArchitectureGenome((1, 2), (16, 32))
    assert len({a.key(), b.key(), c.key()}) == 3
    assert a.key() == ArchitectureGenome((2, 1), (16, 32)).key()


def test_genome_dict_roundtrip():
    genome = ArchitectureGenome((2, 1), (16, 32), neuron_type="T4", use_activation=False)
    restored = ArchitectureGenome.from_dict(genome.to_dict())
    assert restored == genome


def test_genome_build_forward_quadratic_and_first_order():
    quadratic = ArchitectureGenome((1, 1), (8, 16), neuron_type="OURS")
    model = quadratic.build(num_classes=5, width_multiplier=1.0)
    assert any(isinstance(m, QuadraticConv2d) for _, m in model.named_modules())
    assert model(randn(2, 3, 16, 16)).shape == (2, 5)

    linear = quadratic.with_(neuron_type="first_order")
    model = linear.build(num_classes=5)
    assert not any(isinstance(m, QuadraticConv2d) for _, m in model.named_modules())
    assert model(randn(2, 3, 16, 16)).shape == (2, 5)


def test_genome_to_config_carries_switches():
    genome = ArchitectureGenome((1,), (8,), use_batchnorm=False, use_activation=False)
    config = genome.to_config(width_multiplier=0.5)
    assert not config.use_batchnorm and not config.use_activation
    assert config.width_multiplier == 0.5
    assert config.neuron_type == "OURS"


# --------------------------------------------------------------------------- #
# Search space
# --------------------------------------------------------------------------- #

def test_space_validation():
    with pytest.raises(ValueError):
        SearchSpace(min_stages=0)
    with pytest.raises(ValueError):
        SearchSpace(min_stages=3, max_stages=2)
    with pytest.raises(ValueError):
        SearchSpace(width_choices=())
    with pytest.raises(ValueError):
        SearchSpace(neuron_types=())


def test_space_cardinality_small_case():
    space = SearchSpace(min_stages=1, max_stages=1, min_convs_per_stage=1,
                        max_convs_per_stage=2, width_choices=(8, 16),
                        neuron_types=("OURS",), allow_no_activation=False)
    # One stage, 2 depth options x 2 width options, 1 neuron type.
    assert space.cardinality() == 4


def test_space_contains_rejects_out_of_range():
    genome = ArchitectureGenome((2, 2), (8, 16), neuron_type="OURS")
    assert SMALL_SPACE.contains(genome)
    assert not SMALL_SPACE.contains(genome.with_(stage_widths=(8, 64)))
    assert not SMALL_SPACE.contains(genome.with_(neuron_type="T2"))
    assert not SMALL_SPACE.contains(genome.with_(use_batchnorm=False))
    assert not SMALL_SPACE.contains(ArchitectureGenome((1,), (8,)))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_space_sample_always_in_space(seed):
    rng = np.random.default_rng(seed)
    genome = SMALL_SPACE.sample(rng)
    assert SMALL_SPACE.contains(genome)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_space_mutation_stays_in_space_and_changes_genome(seed):
    rng = np.random.default_rng(seed)
    genome = SMALL_SPACE.sample(rng)
    mutated = SMALL_SPACE.mutate(genome, rng)
    assert SMALL_SPACE.contains(mutated)
    assert mutated != genome


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_space_crossover_stays_in_space(seed):
    rng = np.random.default_rng(seed)
    first = SMALL_SPACE.sample(rng)
    second = SMALL_SPACE.sample(rng)
    child = SMALL_SPACE.crossover(first, second, rng)
    assert SMALL_SPACE.contains(child)


def test_space_crossover_inherits_genes_from_parents():
    space = SearchSpace(min_stages=2, max_stages=2, width_choices=(8, 16, 32, 64),
                        neuron_types=("first_order", "OURS"))
    first = ArchitectureGenome((1, 1), (8, 8), neuron_type="first_order")
    second = ArchitectureGenome((3, 3), (64, 64), neuron_type="OURS")
    rng = np.random.default_rng(3)
    child = space.crossover(first, second, rng)
    for depth, width in zip(child.stage_depths, child.stage_widths):
        assert depth in (1, 3)
        assert width in (8, 64)
    assert child.neuron_type in ("first_order", "OURS")
