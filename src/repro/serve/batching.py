"""Pool-level continuous cross-request batching.

The first serving PR batched *per worker*: each worker greedily coalesced
whatever happened to be in its own queue, so two compatible requests that
landed on different workers never shared a forward, and a request sent to a
busy worker queued behind it even while another worker idled.  This module
moves the decision up a level: admitted requests land in one pool-wide
FIFO :class:`RequestBacklog`, and whenever *any* worker has dispatch
capacity the pool cuts the next batch from the front of the backlog —
across connections, across submitters.

The batching is **continuous** in the vLLM sense: there is no timer waiting
for a batch to fill.  Under light load every request is dispatched alone the
moment it arrives (no added latency); under heavy load batches grow toward
``max_batch_size`` naturally, because requests accumulate exactly while all
workers are busy.  Batch size adapts to load instead of being configured.

The pool keeps a bounded number of batches in flight per worker: one
computing, plus enough parked in the worker's queue that the worker never
idles between batches.  How many "enough" is depends on the workload —
when transport dominates compute the pipe must be deeper to hide it, and
when compute dominates anything beyond one parked batch only grows queue
latency: a request is better off in the backlog (where it can still be
shed, retried or batched with later arrivals) than committed to a specific
worker.  :class:`PipelineController` picks the depth per worker from the
measured stage percentiles, bounded to
[:data:`MIN_PIPELINE_DEPTH`, :data:`MAX_PIPELINE_DEPTH`].
"""

from __future__ import annotations

import collections
import math
import time
from typing import Any, Deque, List, Optional

#: the adaptive depth never drops below one batch in flight…
MIN_PIPELINE_DEPTH = 1
#: …and never commits more than four to a single worker (beyond that the
#: marginal batch only sits in the worker's queue accruing latency it could
#: have avoided in the shed-able backlog).
MAX_PIPELINE_DEPTH = 4
#: starting depth (one computing + one parked) until measurements arrive.
DEFAULT_PIPELINE_DEPTH = 2

#: Backwards-compatible alias for the pre-adaptive constant; new code should
#: consult a :class:`PipelineController` (or ``ServeConfig.pipeline_depth``).
PIPELINE_DEPTH = DEFAULT_PIPELINE_DEPTH


def ring_slots(max_depth: int = MAX_PIPELINE_DEPTH) -> int:
    """Request/response ring slots needed to sustain ``max_depth`` in flight.

    One slot per in-flight batch, plus two spare: one so a response can be
    leased while every request slot is still occupied, one so a crash retry
    can re-lease before the reclaimed slot's frame is drained.  This is the
    single source of truth for auto ring sizing — the pool must size rings
    for the *maximum* depth the controller may reach, not the default, or
    dispatch stalls on RingFull exactly when the controller ramps up.
    """
    return int(max_depth) + 2


def coalescing_key(request: Any) -> tuple:
    """What must match for two requests to share one batch frame.

    Two requests fuse only when they agree on the stacked tensor's shape
    *and* on their secure configuration: on secure pools ``request.secure``
    is the (protocol, frac_bits, truncation) triple the answer must be
    computed under, and mixing configurations in one frame would execute
    half the batch with the wrong number format.  Float-pool requests all
    carry ``secure=None`` and coalesce purely by shape, exactly as before.
    """
    return (getattr(request, "payload").shape, getattr(request, "secure", None))


class RequestBacklog:
    """FIFO of admitted-but-undispatched requests, with batch cutting.

    Not thread-safe on its own — the pool mutates it under its lock, which
    also makes the FIFO guarantee meaningful (single ordered admitter).
    """

    def __init__(self) -> None:
        self._queue: Deque[Any] = collections.deque()

    def append(self, request: Any) -> None:
        """Admit one request at the back (stamps its enqueue time)."""
        if getattr(request, "t_admit", None) is None:
            request.t_admit = time.perf_counter()
        self._queue.append(request)

    def requeue(self, requests: List[Any]) -> None:
        """Put retried/undispatchable requests back at the *front*, in order.

        Crash retries must not lose their place behind requests that arrived
        after them, or a crashy worker could starve its oldest victims.
        """
        for request in reversed(requests):
            self._queue.appendleft(request)

    def cut(self, max_batch_size: int) -> List[Any]:
        """Remove and return the next batch (up to ``max_batch_size``)."""
        batch: List[Any] = []
        while self._queue and len(batch) < max_batch_size:
            batch.append(self._queue.popleft())
        return batch

    def drain(self) -> List[Any]:
        """Remove and return everything (pool shutdown)."""
        remaining = list(self._queue)
        self._queue.clear()
        return remaining

    def oldest_wait_s(self, now: Optional[float] = None) -> float:
        """Seconds the head request has been waiting (0 when empty)."""
        if not self._queue:
            return 0.0
        now = time.perf_counter() if now is None else now
        return max(now - self._queue[0].t_admit, 0.0)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __repr__(self) -> str:
        return f"RequestBacklog({len(self._queue)} pending)"


class PipelineController:
    """Per-worker in-flight depth, tuned from measured stage percentiles.

    The steady-state rule is Little's-law shaped: to keep a worker busy
    while a batch crosses the transport, the pool needs
    ``1 + ceil(transport_p95 / compute_p50)`` batches committed — one
    computing plus enough in the queue to cover the hand-off gap.  Two
    guard rails temper it:

    * **cold start** — below :attr:`MIN_SAMPLES` compute observations the
      controller holds :data:`DEFAULT_PIPELINE_DEPTH`; early percentiles
      are noise.
    * **variance cap** — when ``compute_p99 > 4 x compute_p50`` the service
      times are too erratic for deep commitment (a slow batch would strand
      everything queued behind it on this worker), so the target is capped
      at the default.

    Depth moves at most one step per :meth:`update` (hysteresis: the
    reservoir percentiles drift slowly, and oscillating depth would thrash
    ring occupancy).  ``fixed`` pins the depth and disables adaptation —
    the ``ServeConfig.pipeline_depth`` override.
    """

    #: compute observations required before the controller trusts percentiles
    MIN_SAMPLES = 16

    def __init__(self, stages: Any = None, fixed: int = 0) -> None:
        if fixed and not MIN_PIPELINE_DEPTH <= fixed <= MAX_PIPELINE_DEPTH:
            raise ValueError(
                f"fixed pipeline depth must be in "
                f"[{MIN_PIPELINE_DEPTH}, {MAX_PIPELINE_DEPTH}], got {fixed}")
        self._stages = stages
        self._fixed = int(fixed)
        self.depth = self._fixed or DEFAULT_PIPELINE_DEPTH
        self.raises = 0
        self.lowers = 0

    @property
    def fixed(self) -> bool:
        return bool(self._fixed)

    def update(self) -> int:
        """Re-evaluate the target depth; returns the (possibly new) depth."""
        if self._fixed or self._stages is None:
            return self.depth
        compute = self._stages.stage("compute")
        if compute.count < self.MIN_SAMPLES:
            return self.depth
        compute_p50 = compute.percentile(50)
        if compute_p50 <= 0.0:
            return self.depth
        transport_p95 = self._stages.stage("transport").percentile(95)
        target = 1 + math.ceil(transport_p95 / compute_p50)
        if compute.percentile(99) > 4.0 * compute_p50:
            target = min(target, DEFAULT_PIPELINE_DEPTH)
        target = max(MIN_PIPELINE_DEPTH, min(MAX_PIPELINE_DEPTH, target))
        if target > self.depth:
            self.depth += 1
            self.raises += 1
        elif target < self.depth:
            self.depth -= 1
            self.lowers += 1
        return self.depth

    def __repr__(self) -> str:
        mode = "fixed" if self._fixed else "adaptive"
        return f"PipelineController(depth={self.depth}, {mode})"


class Batch:
    """Parent-side bookkeeping for one dispatched batch frame."""

    __slots__ = ("batch_id", "requests", "slot", "seq", "dispatched_at")

    def __init__(self, batch_id: int, requests: List[Any],
                 slot: Optional[int] = None, seq: Optional[int] = None) -> None:
        self.batch_id = batch_id
        self.requests = requests
        self.slot = slot                  # leased request-ring slot (shm only)
        self.seq = seq
        self.dispatched_at = time.perf_counter()

    def __len__(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:
        via = "shm" if self.slot is not None else "pipe"
        return f"Batch(#{self.batch_id}, {len(self.requests)} requests, {via})"
