"""SNGAN-style generator/discriminator (Miyato et al., 2018), CIFAR scale.

The paper's Table 5 converts every convolution in the SNGAN *generator* into a
quadratic layer ("QuadraNN") while keeping the spectral-normalised
discriminator and all hyper-parameters fixed, then compares Inception Score
and FID against the first-order baseline.  These classes reproduce that setup
at a configurable width so the GAN benchmark trains in CPU time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..builder.config import QuadraticModelConfig
from ..builder.constructors import make_conv
from ..nn.module import Module


class GeneratorBlock(Module):
    """Nearest-neighbour upsample ×2 followed by a (possibly quadratic) 3×3 conv."""

    def __init__(self, in_channels: int, out_channels: int, config: QuadraticModelConfig) -> None:
        super().__init__()
        self.upsample = nn.UpsampleNearest2d(2)
        self.conv = make_conv(config, in_channels, out_channels, kernel_size=3, padding=1)
        self.bn = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()

    def forward(self, x):
        return self.relu(self.bn(self.conv(self.upsample(x))))


class SNGANGenerator(Module):
    """Generator: latent vector → 4×4 seed → three upsampling blocks → RGB image.

    The original SNGAN generator has three residual blocks; here each block is
    an upsample+conv block (the residual path adds little at this scale and
    keeps the quadratic-conversion comparison clean).
    """

    def __init__(self, latent_dim: int = 64, base_channels: int = 32, image_size: int = 32,
                 out_channels: int = 3, config: Optional[QuadraticModelConfig] = None) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        self.latent_dim = int(latent_dim)
        self.image_size = int(image_size)
        self.seed_size = image_size // 8
        base = self.config.scaled(base_channels)

        self.project = nn.Linear(latent_dim, base * 4 * self.seed_size * self.seed_size)
        self.base_channels = base * 4
        self.blocks = nn.Sequential(
            GeneratorBlock(base * 4, base * 2, self.config),
            GeneratorBlock(base * 2, base, self.config),
            GeneratorBlock(base, base, self.config),
        )
        self.to_rgb = nn.Sequential(
            nn.BatchNorm2d(base),
            nn.Conv2d(base, out_channels, kernel_size=3, padding=1),
            nn.Tanh(),
        )

    def forward(self, z):
        n = z.shape[0]
        x = self.project(z).reshape(n, self.base_channels, self.seed_size, self.seed_size)
        return self.to_rgb(self.blocks(x))

    def sample_latent(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw latent vectors for ``n`` samples."""
        rng = rng if rng is not None else np.random.default_rng()
        return rng.standard_normal((n, self.latent_dim)).astype(np.float32)


class SNGANDiscriminator(Module):
    """Spectral-normalised convolutional discriminator with hinge-loss output."""

    def __init__(self, base_channels: int = 32, in_channels: int = 3,
                 image_size: int = 32) -> None:
        super().__init__()
        base = base_channels
        self.features = nn.Sequential(
            nn.SpectralNorm(nn.Conv2d(in_channels, base, kernel_size=3, stride=1, padding=1)),
            nn.LeakyReLU(0.1),
            nn.SpectralNorm(nn.Conv2d(base, base * 2, kernel_size=4, stride=2, padding=1)),
            nn.LeakyReLU(0.1),
            nn.SpectralNorm(nn.Conv2d(base * 2, base * 4, kernel_size=4, stride=2, padding=1)),
            nn.LeakyReLU(0.1),
            nn.SpectralNorm(nn.Conv2d(base * 4, base * 4, kernel_size=4, stride=2, padding=1)),
            nn.LeakyReLU(0.1),
        )
        self.head = nn.Sequential(nn.GlobalAvgPool2d(), nn.SpectralNorm(nn.Linear(base * 4, 1)))

    def forward(self, x):
        return self.head(self.features(x))


def sngan_pair(latent_dim: int = 64, base_channels: int = 32, image_size: int = 32,
               neuron_type: str = "first_order", **kwargs):
    """Build a (generator, discriminator) pair with the requested generator neuron type."""
    config = QuadraticModelConfig(neuron_type=neuron_type, **kwargs)
    generator = SNGANGenerator(latent_dim=latent_dim, base_channels=base_channels,
                               image_size=image_size, config=config)
    discriminator = SNGANDiscriminator(base_channels=base_channels, image_size=image_size)
    return generator, discriminator
