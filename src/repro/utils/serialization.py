"""Checkpoint save/load for models, training runs and experiment results.

State dicts are plain ``name -> ndarray`` mappings, so ``.npz`` files are a
natural, dependency-free container.  Experiment results (the numbers behind
each reproduced table) are stored as JSON for easy diffing.

Training checkpoints (:func:`save_training_checkpoint`) extend the model-only
format to the full engine state: model weights and buffers, optimizer state,
LR-scheduler position, data/sampling RNG streams, the epoch counter and the
history so far.  A checkpoint is one ``.npz`` holding every array plus a JSON
tree describing the nested structure, written atomically (temp file +
``os.replace``) so an interrupted save can never corrupt the previous
checkpoint.  ``Trainer.fit(resume_from=...)`` restores all of it and produces
final weights bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import numpy as np

from ..nn.module import Module

#: Format tag written into every training checkpoint (bump on layout changes).
CHECKPOINT_FORMAT = 1

#: JSON key marking a leaf that lives in the npz archive instead of the tree.
_ARRAY_MARKER = "__ndarray__"

#: npz entry holding the JSON-encoded structure tree.
_TREE_KEY = "__checkpoint_tree__"


def save_checkpoint(module: Module, path: str) -> None:
    """Save a module's ``state_dict`` to an ``.npz`` file."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> None:
    """Load an ``.npz`` checkpoint produced by :func:`save_checkpoint`."""
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path) as data:
        state = {key: data[key] for key in data.files}
    module.load_state_dict(state, strict=strict)


# --------------------------------------------------------------------------- #
# Training checkpoints: nested {str: array | scalar | list | dict} payloads.
# --------------------------------------------------------------------------- #

def _split_arrays(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace every ndarray in a nested payload with a marker into ``arrays``."""
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_MARKER: key}
    if isinstance(node, dict):
        return {str(key): _split_arrays(value, arrays) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_split_arrays(value, arrays) for value in node]
    if isinstance(node, np.integer):
        return int(node)
    if isinstance(node, np.floating):
        return float(node)
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"cannot serialise {type(node).__name__!r} into a checkpoint")


def _join_arrays(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_split_arrays` (arrays are copied out of the npz view)."""
    if isinstance(node, dict):
        if set(node) == {_ARRAY_MARKER}:
            return np.array(arrays[node[_ARRAY_MARKER]])
        return {key: _join_arrays(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_join_arrays(value, arrays) for value in node]
    return node


def save_training_checkpoint(path: str, payload: Dict[str, Any]) -> str:
    """Atomically persist a nested training-state payload to ``path``.

    ``payload`` may mix ndarrays, scalars, strings, ``None``, lists and nested
    dicts (e.g. model/optimizer state dicts, RNG ``bit_generator.state``
    trees, a history ``to_dict()``).  The file is written next to ``path``
    first and moved into place with ``os.replace``, so readers either see the
    old checkpoint or the complete new one — never a partial write.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    tree = _split_arrays(payload, arrays)
    arrays[_TREE_KEY] = np.frombuffer(json.dumps(tree).encode("utf-8"), dtype=np.uint8)
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
    return path


def load_training_checkpoint(path: str) -> Dict[str, Any]:
    """Load a checkpoint written by :func:`save_training_checkpoint`."""
    with np.load(path) as data:
        if _TREE_KEY not in data.files:
            raise ValueError(
                f"'{path}' is not a training checkpoint (it has no structure tree); "
                f"model-only .npz files load via load_checkpoint()")
        tree = json.loads(bytes(data[_TREE_KEY].tobytes()).decode("utf-8"))
        arrays = {key: data[key] for key in data.files if key != _TREE_KEY}
        return _join_arrays(tree, arrays)


def rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-serialisable state of a NumPy generator (for checkpoints)."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a generator to a state captured by :func:`rng_state`."""
    rng.bit_generator.state = state


def save_results(results: Dict[str, Any], path: str) -> None:
    """Persist experiment results (numbers behind a reproduced table) as JSON."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    def _default(obj):
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"cannot serialise {type(obj)!r}")

    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, default=_default)


def load_results(path: str) -> Dict[str, Any]:
    """Load a results JSON file written by :func:`save_results`."""
    with open(path) as fh:
        return json.load(fh)
