"""The capacity model: first-principles serving predictions for one deployment.

A :class:`CapacityModel` combines the three ingredient measurements —

* what one request *is* (:class:`~repro.capacity.workload.RequestWork`:
  per-layer MACs bucketed by kernel class, payload bytes),
* what this host *sustains* (:class:`~repro.backends.KernelRates`: measured
  kernel slopes plus dispatch/IPC/copy overheads),
* how the deployment is *shaped* (:class:`~repro.serve.ServeConfig`:
  workers, batching window, secure knobs),

— into one :class:`CapacityPlan`: predicted per-request service time,
sustainable throughput, p50/p99 latency at an offered QPS, and the worker
count a target QPS requires.  No serving benchmark is run to produce a
plan; the benches (``bench_serving_scaleout.py``, ``bench_secure_serving.py``)
*validate* plans against measurements instead.

Model structure
---------------
Service time of one request in a coalesced batch of ``B``::

    S(B) = compute + copy + dispatch + (ipc per batch) / B

``compute`` prices the request's MAC/op counts with the measured kernel
slopes.  The pool's default execution is *exact mode* (every request runs
as its own batch-of-1 forward — see ``ServeConfig.fused_batching``), so
compute and per-step dispatch do **not** amortize with batching; only the
per-batch control traffic (queue round trips) does.  The expected batch
size under Poisson arrivals at rate λ with coalescing window ``w`` is
``B = 1 + λ·w`` (the opener plus the arrivals that land inside its
window), clamped to ``max_batch_size``.

The pool itself is an M/M/c system (:mod:`repro.capacity.queueing`):
``c = workers`` servers at rate ``μ = 1/S`` each, fed by one FIFO backlog.
Latency quantiles come from the Erlang-C wait tail plus the deterministic
service time; the same Little's-law arithmetic the admission controller
uses online (:func:`repro.serve.admission.littles_law_wait_ms`) prices the
backlog, so the planner and the front door never disagree about queueing.

Secure serving swaps the service time for the protocol-priced online time
of the measured :class:`~repro.ppml.ProtocolTrace` (per-op costs plus one
RTT per communication round) and adds the offline-phase ledger: the refill
rate the triple pools must sustain (``qps`` request quanta per second,
i.e. ``qps × triples_per_request`` Beaver triples per second) and how many
seconds of burst the configured pool depth absorbs when refill stalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from .queueing import MMcQueue
from .workload import RequestWork, SecureWork

__all__ = ["CapacityModel", "CapacityPlan", "SecureCapacity"]

#: Default utilization ceiling when sizing worker counts: running an M/M/c
#: pool hotter than ~80 % makes the wait tail explode, so "required workers"
#: means "enough servers to keep ρ at or under this".
TARGET_UTILIZATION = 0.8


@dataclass(frozen=True)
class SecureCapacity:
    """Offline-phase requirements of one secure deployment at one QPS."""

    work: SecureWork
    required_refill_rps: float      # request quanta/s the producers must sustain
    triples_per_s: float
    labels_per_s: float
    pool_depth: int                 # configured quanta target
    burst_absorbed_s: float         # seconds a full pool survives a refill stall

    def to_dict(self) -> Dict[str, Any]:
        payload = self.work.to_dict()
        payload.update({
            "required_refill_rps": self.required_refill_rps,
            "triples_per_s": self.triples_per_s,
            "labels_per_s": self.labels_per_s,
            "pool_depth": self.pool_depth,
            # inf (a full pool outlasts any stall at qps 0) is not valid JSON.
            "burst_absorbed_s": (self.burst_absorbed_s
                                 if math.isfinite(self.burst_absorbed_s) else None),
        })
        return payload


@dataclass(frozen=True)
class CapacityPlan:
    """One deployment × one offered QPS, fully priced.

    All times are milliseconds at this reporting edge; the queueing layer
    underneath works in seconds.
    """

    qps: float
    workers: int
    expected_batch: float
    max_batch_size: int
    compute_ms: float
    copy_ms: float
    dispatch_ms: float
    ipc_ms: float                   # per-request share of the batch control traffic
    service_ms: float
    queue: MMcQueue
    required_workers: int
    max_throughput_rps: float       # ceiling with full batches on this worker count
    secure: Optional[SecureCapacity] = None

    # ------------------------------------------------------------ predictions
    @property
    def capacity_rps(self) -> float:
        """Sustainable rate at the *offered-load* batch size."""
        return self.queue.capacity_rps

    @property
    def throughput_rps(self) -> float:
        """Predicted carried throughput: the offer, capped by capacity."""
        return min(self.qps, self.capacity_rps)

    @property
    def utilization(self) -> float:
        return self.queue.utilization

    @property
    def stable(self) -> bool:
        return self.queue.stable

    @property
    def p50_ms(self) -> float:
        return self.queue.response_quantile_s(0.50) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.queue.response_quantile_s(0.99) * 1e3

    @property
    def mean_latency_ms(self) -> float:
        return self.queue.mean_response_s * 1e3

    @property
    def mean_in_system(self) -> float:
        """Little's law ``L = λ·W`` over the whole pool."""
        return self.queue.mean_in_system

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested dict — the ``repro plan --json`` payload."""

        def _finite(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None

        return {
            "qps": self.qps,
            "workers": self.workers,
            "batch": {
                "expected_size": self.expected_batch,
                "max_size": self.max_batch_size,
            },
            "service": {
                "compute_ms": self.compute_ms,
                "copy_ms": self.copy_ms,
                "dispatch_ms": self.dispatch_ms,
                "ipc_ms": self.ipc_ms,
                "total_ms": self.service_ms,
            },
            "queue": {
                "offered_load": self.queue.offered_load,
                "utilization": self.utilization,
                "stable": self.stable,
                "wait_probability": self.queue.wait_probability,
                "mean_wait_ms": _finite(self.queue.mean_wait_s * 1e3),
                "mean_in_system": _finite(self.mean_in_system),
            },
            "predictions": {
                "throughput_rps": self.throughput_rps,
                "capacity_rps": self.capacity_rps,
                "max_throughput_rps": self.max_throughput_rps,
                "p50_ms": _finite(self.p50_ms),
                "p99_ms": _finite(self.p99_ms),
                "mean_latency_ms": _finite(self.mean_latency_ms),
                "required_workers": self.required_workers,
            },
            "secure": self.secure.to_dict() if self.secure else None,
        }


class CapacityModel:
    """Prices one (model work, host rates, deployment shape) combination.

    Parameters
    ----------
    work : RequestWork
        Per-request kernel-class work counts (:func:`~repro.capacity.request_work`).
    rates : KernelRates
        Measured host rates (:meth:`repro.backends.Backend.measure_rates`).
    workers : int
        Worker processes of the deployment.
    max_batch_size, max_wait :
        The pool's coalescing knobs (defaults match :class:`~repro.serve.ServeConfig`).
    secure_work : SecureWork, optional
        Protocol structure of one request (:func:`~repro.capacity.secure_work`);
        switches the service-time model to the secure online path.
    triple_pool_depth : int
        Configured offline pool depth in request quanta (secure only).
    """

    def __init__(self, work: RequestWork, rates, *, workers: int = 2,
                 max_batch_size: int = 8, max_wait: float = 0.002,
                 secure_work: Optional[SecureWork] = None,
                 triple_pool_depth: int = 0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.work = work
        self.rates = rates
        self.workers = int(workers)
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)
        self.secure_work = secure_work
        self.triple_pool_depth = int(triple_pool_depth)

    # ------------------------------------------------------------ service time
    def expected_batch(self, qps: float) -> float:
        """Mean coalesced batch size under Poisson arrivals at ``qps``.

        The request that opens a batch waits up to ``max_wait`` for company:
        ``1 + λ·w`` arrivals land in that window on average, clamped to the
        configured maximum.  ``qps → 0`` gives batches of one, which is what
        makes the planner's low-load latency collapse to pure service time.
        """
        if qps < 0:
            raise ValueError(f"qps must be >= 0, got {qps}")
        return min(float(self.max_batch_size), 1.0 + qps * self.max_wait)

    def compute_seconds(self) -> float:
        """Pure kernel time of one request (batch-independent: exact mode)."""
        if self.secure_work is not None:
            return self.secure_work.online_ms / 1e3
        rates = self.rates
        return (self.work.conv_macs / rates.conv_macs_per_s
                + self.work.gemm_macs / rates.gemm_macs_per_s
                + self.work.elementwise_ops / rates.elementwise_ops_per_s
                + self.work.pool_window_elems / rates.pool_window_elems_per_s)

    def service_breakdown(self, batch: float) -> Dict[str, float]:
        """Per-request service-time terms (seconds) at mean batch size ``batch``."""
        rates = self.rates
        compute_s = self.compute_seconds()
        copy_s = self.work.transport_bytes / rates.copy_bytes_per_s
        dispatch_s = self.work.layers * rates.dispatch_us / 1e6
        # Two queue round trips per coalesced batch (submit + response frame),
        # shared by the batch's requests.
        ipc_s = 2.0 * rates.ipc_us / 1e6 / max(batch, 1.0)
        return {
            "compute_s": compute_s,
            "copy_s": copy_s,
            "dispatch_s": dispatch_s,
            "ipc_s": ipc_s,
            "total_s": compute_s + copy_s + dispatch_s + ipc_s,
        }

    def service_seconds(self, qps: float = 0.0) -> float:
        """Per-request service time at the batch size ``qps`` induces."""
        return self.service_breakdown(self.expected_batch(qps))["total_s"]

    # ------------------------------------------------------------------ sizing
    def required_workers(self, qps: float,
                         target_utilization: float = TARGET_UTILIZATION) -> int:
        """Fewest workers keeping utilization at or under the target at ``qps``."""
        if not 0 < target_utilization <= 1:
            raise ValueError(
                f"target_utilization must be in (0, 1], got {target_utilization}")
        if qps <= 0:
            return 1
        offered = qps * self.service_seconds(qps)        # Erlangs
        return max(1, math.ceil(offered / target_utilization))

    # -------------------------------------------------------------------- plan
    def plan(self, qps: float, workers: Optional[int] = None) -> CapacityPlan:
        """Price the deployment at offered rate ``qps``."""
        if qps < 0:
            raise ValueError(f"qps must be >= 0, got {qps}")
        pool_workers = self.workers if workers is None else int(workers)
        if pool_workers < 1:
            raise ValueError(f"workers must be >= 1, got {pool_workers}")
        batch = self.expected_batch(qps)
        breakdown = self.service_breakdown(batch)
        service_s = breakdown["total_s"]
        queue = MMcQueue(servers=pool_workers, arrival_rps=qps,
                         service_rps=1.0 / service_s)
        full_batch_service = self.service_breakdown(float(self.max_batch_size))
        max_throughput = pool_workers / full_batch_service["total_s"]
        secure = None
        if self.secure_work is not None:
            secure = SecureCapacity(
                work=self.secure_work,
                required_refill_rps=qps,
                triples_per_s=qps * self.secure_work.triples_per_request,
                labels_per_s=qps * self.secure_work.labels_per_request,
                pool_depth=self.triple_pool_depth,
                burst_absorbed_s=(self.triple_pool_depth / qps if qps > 0
                                  else math.inf),
            )
        return CapacityPlan(
            qps=float(qps),
            workers=pool_workers,
            expected_batch=batch,
            max_batch_size=self.max_batch_size,
            compute_ms=breakdown["compute_s"] * 1e3,
            copy_ms=breakdown["copy_s"] * 1e3,
            dispatch_ms=breakdown["dispatch_s"] * 1e3,
            ipc_ms=breakdown["ipc_s"] * 1e3,
            service_ms=service_s * 1e3,
            queue=queue,
            required_workers=self.required_workers(qps),
            max_throughput_rps=max_throughput,
            secure=secure,
        )
