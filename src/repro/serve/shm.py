"""Zero-copy tensor transport: slot-leased rings over POSIX shared memory.

The pipe transport pickles every tensor through a ``multiprocessing.Queue`` —
one serialize, one kernel copy, one deserialize per hop.  This module moves
the *bytes* through a :class:`multiprocessing.shared_memory.SharedMemory`
segment instead: the producer copies a tensor into a leased slot exactly
once, and the consumer maps the same physical pages as a NumPy view — no
pickle, no second copy.  Only small control frames (slot index, sequence
number, shape, dtype) still travel over the queues, which conveniently also
provides the happens-before edge: a consumer only touches a slot after the
control frame for it arrived, so the ring needs **no cross-process locks**.

Each ring is a fixed array of equally sized slots with a 3-word header per
slot (``state``, ``seq``, ``nbytes``):

* **Slot leasing** — ``lease()`` claims a ``FREE`` slot (rotating cursor, so
  slots are reused round-robin and wraparound is exercised constantly) and
  flips it to ``LEASED``.  A full ring raises :class:`RingFull`, which the
  pool treats as backpressure, exactly like a full pipe queue.
* **Sequence numbers** — every lease increments the slot's persistent
  sequence counter and stamps the frame with it.  ``read``/``release``
  verify the stamp, so a control frame that outlived its slot (a retry, a
  message from a worker generation that was SIGKILLed) raises
  :class:`StaleFrame` instead of silently aliasing another request's bytes.
* **Crash-safe reclamation** — the pool owns both rings of a worker.  When
  the worker dies, :meth:`ShmRing.reclaim` frees every non-``FREE`` slot and
  bumps its sequence number, so the segment is immediately reusable by the
  respawned worker and any stale frame from the dead generation is inert.
  Segments are created by the parent and unlinked exactly once in
  :meth:`close`, so a SIGKILLed worker can never leak one.

The intended topology (what :mod:`repro.serve.pool` builds) is one
:class:`WorkerRings` pair per worker: a request ring the parent writes and
the worker reads, and a response ring the other way around.  Each direction
therefore has a single leaser and a single releaser at any time, which keeps
the allocation cursor process-local.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: slot states (kept tiny on purpose; the queues do the synchronization)
SLOT_FREE = 0
SLOT_LEASED = 1

#: int64 words per slot header: state, sequence number, payload bytes
_HEADER_WORDS = 3
_HEADER_BYTES = _HEADER_WORDS * 8

#: payload slots start on a 64-byte boundary (cache line / SIMD friendly)
_ALIGN = 64


class RingFull(RuntimeError):
    """Every slot is leased — backpressure, not an error in the data plane."""


class StaleFrame(RuntimeError):
    """A frame's sequence number no longer matches its slot (crash/retry)."""


def _align(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ShmFrame:
    """The control-frame description of one tensor parked in a ring slot.

    This is what actually crosses the process boundary (pickled, ~100 bytes
    regardless of tensor size).  ``shape``/``dtype`` travel here rather than
    in shared memory so a corrupted segment can never fabricate a view
    larger than the slot.
    """

    slot: int
    seq: int
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int


class ShmRing:
    """A fixed-slot ring over one shared-memory segment.

    Parameters
    ----------
    slots, slot_bytes : int
        Geometry of the ring.  ``slot_bytes`` bounds the largest tensor one
        frame can carry; bigger payloads must fall back to the pipe path.
    name : str, optional
        Attach to an existing segment (the worker side) instead of creating
        one.  Geometry is not stored in the segment — both sides receive it
        through the worker's argv — so an attach with the wrong geometry is
        rejected by the size check.
    create : bool
        ``True`` (parent) creates and later unlinks the segment; ``False``
        (worker) attaches and only ever closes its mapping.
    """

    def __init__(self, slots: int, slot_bytes: int, name: Optional[str] = None,
                 create: bool = True, unregister: bool = False) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self.slots = int(slots)
        self.slot_bytes = _align(int(slot_bytes))
        self._payload_base = _align(self.slots * _HEADER_BYTES)
        total = self._payload_base + self.slots * self.slot_bytes
        self._owner = bool(create)
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        else:
            if name is None:
                raise ValueError("attaching (create=False) requires the segment name")
            self._shm = shared_memory.SharedMemory(name=name)
            if self._shm.size < total:
                raise ValueError(
                    f"segment '{name}' holds {self._shm.size} bytes but this "
                    f"geometry ({slots} x {self.slot_bytes}) needs {total}")
            # Spawned workers inherit the parent's resource tracker, so the
            # attach-side register is a no-op (the name is already tracked)
            # and unregistering here would unbalance the owner's registration:
            # the parent's eventual unlink() double-unregisters and the shared
            # tracker prints a KeyError traceback.  The escape hatch exists
            # for attachers with their *own* tracker (a process not spawned by
            # the ring's owner), where bpo-38119's unlink-on-exit behaviour
            # really would yank the segment from under the owner.
            if unregister:
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(self._shm._name, "shared_memory")
                except Exception:  # pragma: no cover - tracker internals shifted
                    pass
        self._headers = np.ndarray((self.slots, _HEADER_WORDS), dtype=np.int64,
                                   buffer=self._shm.buf)
        if create:
            self._headers[:] = 0
        self._cursor = 0
        self._closed = False
        # local telemetry (the pool aggregates these into /stats)
        self.leases = 0
        self.releases = 0
        self.stale_drops = 0
        self.reclaimed = 0
        self.full_rejections = 0

    # ------------------------------------------------------------------- naming
    @property
    def name(self) -> str:
        """The segment name a worker passes to ``ShmRing(..., create=False)``."""
        return self._shm.name

    # ------------------------------------------------------------------ leasing
    def lease(self) -> Tuple[int, int]:
        """Claim a FREE slot; returns ``(slot, seq)`` or raises :class:`RingFull`.

        The cursor rotates so consecutive leases walk the ring even when
        earlier slots free up first — wraparound is the common case, not a
        corner case.
        """
        self._ensure_open()
        for offset in range(self.slots):
            slot = (self._cursor + offset) % self.slots
            if self._headers[slot, 0] == SLOT_FREE:
                seq = int(self._headers[slot, 1]) + 1
                self._headers[slot, 1] = seq
                self._headers[slot, 0] = SLOT_LEASED
                self._headers[slot, 2] = 0
                self._cursor = (slot + 1) % self.slots
                self.leases += 1
                return slot, seq
        self.full_rejections += 1
        raise RingFull(f"all {self.slots} slots are leased; apply backpressure")

    def write(self, slot: int, seq: int, array: np.ndarray) -> ShmFrame:
        """Copy ``array`` into a leased slot; returns the frame to send.

        This is the transport's *only* copy on the producer side.  Raises
        ``ValueError`` when the tensor does not fit the slot (the caller
        falls back to the inline/pipe path rather than corrupting memory).
        """
        array = np.ascontiguousarray(array)
        if array.nbytes > self.slot_bytes:
            raise ValueError(
                f"tensor of {array.nbytes} bytes does not fit a "
                f"{self.slot_bytes}-byte slot")
        self._check(slot, seq)
        raw = self._payload(slot, array.nbytes)
        typed = np.ndarray(array.shape, dtype=array.dtype, buffer=raw.data)
        typed[...] = array                         # the one producer-side copy
        self._headers[slot, 2] = array.nbytes
        return ShmFrame(slot=slot, seq=seq, shape=tuple(array.shape),
                        dtype=str(array.dtype), nbytes=array.nbytes)

    def view(self, slot: int, seq: int, shape: Tuple[int, ...], dtype: str,
             writable: bool = False) -> np.ndarray:
        """A zero-copy ndarray over a leased slot's payload.

        The consumer-side primitive (also used by producers that want to
        assemble a batch directly in place, skipping :meth:`write`'s
        intermediate ``tobytes``).  The view is only valid until the slot is
        released — callers that need the data afterwards must copy.
        """
        self._check(slot, seq)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize if shape else dt.itemsize
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"a {shape} {dtype} view needs {nbytes} bytes; slots hold "
                f"{self.slot_bytes}")
        raw = self._payload(slot, nbytes)
        array = np.ndarray(shape, dtype=dt, buffer=raw.data)
        if not writable:
            array.flags.writeable = False
        return array

    def assemble(self, slot: int, seq: int, shape: Tuple[int, ...],
                 dtype: Any) -> Tuple[np.ndarray, ShmFrame]:
        """A writable view for building a tensor *in place*, plus its frame.

        The producer-side sibling of :meth:`write` for callers that want to
        scatter many sources straight into the slot (in-ring batch assembly)
        instead of stacking them into a heap array first.  The header's
        nbytes word is stamped immediately — the frame is valid to send the
        moment the caller finishes filling the view.  Raises ``ValueError``
        when the tensor would not fit the slot, exactly like :meth:`write`.
        """
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize if shape else dt.itemsize
        view = self.view(slot, seq, tuple(shape), dt, writable=True)
        self._headers[slot, 2] = nbytes
        return view, ShmFrame(slot=slot, seq=seq, shape=tuple(shape),
                              dtype=str(dt), nbytes=nbytes)

    def read(self, frame: ShmFrame) -> np.ndarray:
        """The (read-only, zero-copy) tensor a :class:`ShmFrame` describes."""
        return self.view(frame.slot, frame.seq, frame.shape, frame.dtype)

    def release(self, slot: int, seq: int) -> None:
        """Return a slot to the FREE pool; stale ``seq`` raises, double free too."""
        self._check(slot, seq)
        self._headers[slot, 0] = SLOT_FREE
        self.releases += 1

    # -------------------------------------------------------------- reclamation
    def reclaim(self) -> int:
        """Free every leased slot (dead-worker recovery); returns the count.

        Bumping each reclaimed slot's sequence number makes every frame the
        dead worker may have emitted (or the parent still holds) stale, so a
        late ``release``/``read`` fails loudly instead of touching a slot
        that has been re-leased to a new request.
        """
        self._ensure_open()
        count = 0
        for slot in range(self.slots):
            if self._headers[slot, 0] != SLOT_FREE:
                self._headers[slot, 0] = SLOT_FREE
                self._headers[slot, 1] += 1
                count += 1
        self.reclaimed += count
        return count

    def leased_slots(self) -> List[int]:
        self._ensure_open()
        return [slot for slot in range(self.slots)
                if self._headers[slot, 0] != SLOT_FREE]

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Unmap (and, for the creating side, unlink) the segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._headers = None                       # drop the buffer export
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked (e.g. test cleanup)
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # best effort; close() is the real contract
        try:
            self.close()
        except Exception:
            pass

    # ---------------------------------------------------------------- internals
    def _payload(self, slot: int, nbytes: int) -> np.ndarray:
        base = self._payload_base + slot * self.slot_bytes
        return np.ndarray((nbytes,), dtype=np.uint8,
                          buffer=self._shm.buf, offset=base)

    def _check(self, slot: int, seq: int) -> None:
        self._ensure_open()
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")
        if self._headers[slot, 0] != SLOT_LEASED:
            self.stale_drops += 1
            raise StaleFrame(f"slot {slot} is not leased (double release, or "
                             f"reclaimed after a worker crash)")
        if int(self._headers[slot, 1]) != seq:
            self.stale_drops += 1
            raise StaleFrame(
                f"slot {slot} carries seq {int(self._headers[slot, 1])}, frame "
                f"has {seq} — the slot was reclaimed/re-leased since")

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this ring has been closed")

    def stats(self) -> Dict[str, Any]:
        if self._closed:
            return {"slots": self.slots, "slot_bytes": self.slot_bytes,
                    "closed": True}
        return {
            "slots": self.slots,
            "slot_bytes": self.slot_bytes,
            "leased": len(self.leased_slots()),
            "leases": self.leases,
            "releases": self.releases,
            "reclaimed": self.reclaimed,
            "stale_drops": self.stale_drops,
            "full_rejections": self.full_rejections,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self.leased_slots())} leased"
        return f"ShmRing({self.name}, {self.slots}x{self.slot_bytes}B, {state})"


class WorkerRings:
    """The request/response ring pair the pool keeps per worker slot.

    Rings survive worker respawns: the replacement process attaches to the
    same segments after the parent ran :meth:`reclaim_all`, so a crash costs
    two ``reclaim`` scans, not two segment allocations.
    """

    def __init__(self, slots: int, slot_bytes: int) -> None:
        self.request = ShmRing(slots, slot_bytes)
        self.response = ShmRing(slots, slot_bytes)

    def descriptor(self) -> Dict[str, Any]:
        """What a worker needs to attach (pickles into its spawn argv)."""
        return {
            "request_name": self.request.name,
            "response_name": self.response.name,
            "slots": self.request.slots,
            "slot_bytes": self.request.slot_bytes,
        }

    @staticmethod
    def attach(descriptor: Dict[str, Any],
               unregister: bool = False) -> Tuple[ShmRing, ShmRing]:
        """Worker-side: map both segments of a :meth:`descriptor`.

        ``unregister=True`` is only for attachers that do not share the
        owner's resource tracker — see :class:`ShmRing`.
        """
        request = ShmRing(descriptor["slots"], descriptor["slot_bytes"],
                          name=descriptor["request_name"], create=False,
                          unregister=unregister)
        response = ShmRing(descriptor["slots"], descriptor["slot_bytes"],
                           name=descriptor["response_name"], create=False,
                           unregister=unregister)
        return request, response

    def reclaim_all(self) -> int:
        """Dead-worker recovery across both directions; returns freed slots."""
        return self.request.reclaim() + self.response.reclaim()

    def close(self) -> None:
        self.request.close()
        self.response.close()

    def stats(self) -> Dict[str, Any]:
        return {"request": self.request.stats(), "response": self.response.stats()}
