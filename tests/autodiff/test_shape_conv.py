"""Unit tests for shape manipulation and convolution/pooling primitives."""

import numpy as np
import pytest

from repro.autodiff import Tensor, cat, randn, stack, tensor
from repro.autodiff.ops.conv import col2im, conv_output_size, im2col


class TestShapeOps:
    def test_reshape_roundtrip(self):
        a = randn(2, 3, 4, requires_grad=True)
        out = a.reshape(6, 4)
        assert out.shape == (6, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_reshape_with_minus_one(self):
        a = randn(2, 3, 4)
        assert a.reshape(2, -1).shape == (2, 12)

    def test_flatten(self):
        a = randn(2, 3, 4, 5)
        assert a.flatten(start_dim=1).shape == (2, 60)

    def test_transpose_default_reverses(self):
        a = randn(2, 3, 4, requires_grad=True)
        out = a.transpose()
        assert out.shape == (4, 3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_transpose_permutation(self):
        a = randn(2, 3, 4, requires_grad=True)
        out = a.transpose(1, 0, 2)
        assert out.shape == (3, 2, 4)
        assert np.allclose(out.data, a.data.transpose(1, 0, 2))

    def test_swapaxes(self):
        a = randn(2, 3, 4)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)

    def test_squeeze_unsqueeze(self):
        a = randn(3, 1, 4, requires_grad=True)
        squeezed = a.squeeze(1)
        assert squeezed.shape == (3, 4)
        expanded = squeezed.unsqueeze(0)
        assert expanded.shape == (1, 3, 4)
        expanded.sum().backward()
        assert a.grad.shape == (3, 1, 4)

    def test_getitem_slice_grad(self):
        a = randn(4, 5, requires_grad=True)
        a[1:3, :2].sum().backward()
        expected = np.zeros((4, 5), dtype=np.float32)
        expected[1:3, :2] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_integer_array_accumulates(self):
        a = randn(5, requires_grad=True)
        index = np.array([0, 0, 2])
        a[index].sum().backward()
        assert np.allclose(a.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_cat_and_grad(self):
        a = randn(2, 3, requires_grad=True)
        b = randn(4, 3, requires_grad=True)
        out = cat([a, b], axis=0)
        assert out.shape == (6, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (4, 3)

    def test_stack(self):
        parts = [randn(2, 2, requires_grad=True) for _ in range(3)]
        out = stack(parts, axis=0)
        assert out.shape == (3, 2, 2)
        out.sum().backward()
        for p in parts:
            assert np.allclose(p.grad, 1.0)

    def test_pad2d(self):
        a = randn(1, 1, 3, 3, requires_grad=True)
        out = a.pad2d((1, 2, 1, 2))
        assert out.shape == (1, 1, 6, 6)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_flip(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        out = a.flip(1)
        assert np.allclose(out.data, [[2.0, 1.0], [4.0, 3.0]])
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_broadcast_to(self):
        a = randn(1, 3, requires_grad=True)
        out = a.broadcast_to((4, 3))
        assert out.shape == (4, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 4.0)


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(5, 3, 1, 0) == 3

    def test_im2col_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=np.float32).reshape(2, 3, 5, 5)
        cols = im2col(x, 3, 3, (1, 1), (1, 1))
        assert cols.shape == (2, 3, 3, 3, 5, 5)

    def test_im2col_values_match_manual_patch(self):
        x = np.arange(1 * 1 * 4 * 4, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, (1, 1), (0, 0))
        # patch at output position (0, 0) is the top-left 2x2 block
        assert np.allclose(cols[0, 0, :, :, 0, 0], x[0, 0, :2, :2])

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        y = rng.normal(size=(1, 2, 3, 3, 3, 3)).astype(np.float32)
        cols = im2col(x, 3, 3, (2, 2), (1, 1))
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, (2, 2), (1, 1))
        rhs = float((x * back).sum())
        assert np.allclose(lhs, rhs, rtol=1e-4)


class TestConv2d:
    def test_forward_shape_stride_padding(self):
        x = randn(2, 3, 8, 8)
        w = randn(6, 3, 3, 3)
        assert x.conv2d(w, stride=1, padding=1).shape == (2, 6, 8, 8)
        assert x.conv2d(w, stride=2, padding=1).shape == (2, 6, 4, 4)
        assert x.conv2d(w, stride=1, padding=0).shape == (2, 6, 6, 6)

    def test_conv_matches_naive_loop(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)).astype(np.float32))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
        out = x.conv2d(w, stride=1, padding=0).data
        naive = np.zeros((1, 3, 3, 3), dtype=np.float32)
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    naive[0, f, i, j] = (x.data[0, :, i:i + 3, j:j + 3] * w.data[f]).sum()
        assert np.allclose(out, naive, atol=1e-4)

    def test_conv_bias(self):
        x = randn(1, 2, 4, 4)
        w = randn(3, 2, 3, 3)
        b = tensor([1.0, 2.0, 3.0])
        with_bias = x.conv2d(w, b, padding=1)
        without = x.conv2d(w, padding=1)
        assert np.allclose(with_bias.data - without.data,
                           np.array([1.0, 2.0, 3.0])[None, :, None, None], atol=1e-6)

    def test_conv_gradients_numeric(self, numgrad):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)).astype(np.float32), requires_grad=True)

        def run():
            return float(Tensor(x.data).conv2d(Tensor(w.data), stride=2, padding=1).sum().data)

        x.conv2d(w, stride=2, padding=1).sum().backward()
        assert np.allclose(x.grad, numgrad(run, x.data), atol=3e-2)
        assert np.allclose(w.grad, numgrad(run, w.data), atol=3e-2)

    def test_grouped_conv_shapes_and_grads(self):
        x = randn(2, 4, 6, 6, requires_grad=True)
        w = randn(8, 2, 3, 3, requires_grad=True)  # groups=2 -> 2 input channels per group
        out = x.conv2d(w, stride=1, padding=1, groups=2)
        assert out.shape == (2, 8, 6, 6)
        out.sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape

    def test_depthwise_conv_matches_per_channel(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(1, 3, 5, 5)).astype(np.float32))
        w = Tensor(rng.normal(size=(3, 1, 3, 3)).astype(np.float32))
        out = x.conv2d(w, padding=1, groups=3).data
        for c in range(3):
            single = Tensor(x.data[:, c:c + 1]).conv2d(Tensor(w.data[c:c + 1]), padding=1).data
            assert np.allclose(out[:, c:c + 1], single, atol=1e-5)

    def test_channel_mismatch_raises(self):
        x = randn(1, 3, 8, 8)
        w = randn(4, 2, 3, 3)
        with pytest.raises(ValueError):
            x.conv2d(w)


class TestPooling:
    def test_max_pool_forward(self):
        x = tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = x.max_pool2d(2)
        assert np.allclose(out.data, [[[[4.0]]]])

    def test_max_pool_grad_routes_to_argmax(self):
        x = tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        x.max_pool2d(2).sum().backward()
        assert np.allclose(x.grad, [[[[0.0, 0.0], [0.0, 1.0]]]])

    def test_avg_pool_forward_and_grad(self):
        x = tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        out = x.avg_pool2d(2)
        assert np.allclose(out.data, [[[[2.5]]]])
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_pool_output_shapes(self):
        x = randn(2, 3, 8, 8)
        assert x.max_pool2d(2).shape == (2, 3, 4, 4)
        assert x.avg_pool2d(4).shape == (2, 3, 2, 2)
        assert x.max_pool2d(3, stride=2, padding=1).shape == (2, 3, 4, 4)

    def test_upsample_nearest(self):
        x = tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        out = x.upsample_nearest2d(2)
        assert out.shape == (1, 1, 4, 4)
        assert np.allclose(out.data[0, 0, :2, :2], 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 4.0)
