"""Small reference models: the Fig. 8 ConvNet, MLPs and a LeNet-style network.

``SmallConvNet`` reproduces the network used for the hybrid-BP memory
experiment (paper Sec. 5.1): three convolution layers and two fully-connected
layers, input 32×32, in first-order, composed-quadratic or hybrid-quadratic
form.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import nn
from ..builder.config import QuadraticModelConfig
from ..builder.constructors import build_mlp, make_conv
from ..nn.module import Module
from ..quadratic.layers.hybrid import HybridQuadraticLinear
from ..quadratic.layers.qlinear import QuadraticLinear


class SmallConvNet(Module):
    """3 conv layers + 2 fully-connected layers (the paper's Fig. 8 ConvNet)."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 channels: Sequence[int] = (32, 64, 64),
                 config: Optional[QuadraticModelConfig] = None) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        c1, c2, c3 = (self.config.scaled(c) for c in channels)
        self.features = nn.Sequential(
            make_conv(self.config, in_channels, c1, kernel_size=3, padding=1),
            nn.BatchNorm2d(c1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            make_conv(self.config, c1, c2, kernel_size=3, padding=1),
            nn.BatchNorm2d(c2),
            nn.ReLU(),
            nn.MaxPool2d(2),
            make_conv(self.config, c2, c3, kernel_size=3, padding=1),
            nn.BatchNorm2d(c3),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        spatial = image_size // 8
        flat = c3 * spatial * spatial
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(flat, 128),
            nn.ReLU(),
            nn.Linear(128, num_classes),
        )
        self.num_classes = num_classes

    def forward(self, x):
        return self.classifier(self.features(x))

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.features, self.classifier)


class QuadraticMLP(Module):
    """MLP whose hidden layers are quadratic (toy tasks / unit tests)."""

    def __init__(self, layer_sizes: Sequence[int], neuron_type: str = "OURS",
                 hybrid_bp: bool = False, activation: bool = False) -> None:
        super().__init__()
        config = QuadraticModelConfig(neuron_type=neuron_type, hybrid_bp=hybrid_bp)
        self.net = build_mlp(list(layer_sizes), config, quadratic_hidden=True,
                             activation=activation)

    def forward(self, x):
        return self.net(x)

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.net,)


class FirstOrderMLP(Module):
    """Plain MLP baseline for the toy comparisons."""

    def __init__(self, layer_sizes: Sequence[int], activation: bool = True) -> None:
        super().__init__()
        config = QuadraticModelConfig(neuron_type="first_order")
        self.net = build_mlp(list(layer_sizes), config, quadratic_hidden=False,
                             activation=activation)

    def forward(self, x):
        return self.net(x)

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.net,)


class LeNet(Module):
    """LeNet-style network for quick integration tests (5 layers)."""

    def __init__(self, num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
                 config: Optional[QuadraticModelConfig] = None) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        self.features = nn.Sequential(
            make_conv(self.config, in_channels, 6, kernel_size=5, padding=2),
            nn.ReLU(),
            nn.MaxPool2d(2),
            make_conv(self.config, 6, 16, kernel_size=5, padding=2),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        spatial = image_size // 4
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(16 * spatial * spatial, 120),
            nn.ReLU(),
            nn.Linear(120, num_classes),
        )

    def forward(self, x):
        return self.classifier(self.features(x))

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.features, self.classifier)
