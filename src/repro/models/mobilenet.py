"""MobileNetV1 (Howard et al., 2017) in first-order and quadratic form.

Each block is a depthwise 3×3 convolution followed by a pointwise 1×1
convolution (a "DW pair" in the paper's Table 3).  In the quadratic variants
the *pointwise* convolution — where the parameters and computation live — is
replaced with a quadratic layer, while the depthwise convolution remains
first-order; this mirrors how the paper counts "8 DW" for the auto-built
QuadraNN versus "13 DW" for the baseline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .. import nn
from ..builder.config import MOBILENET_CFGS, QuadraticModelConfig
from ..builder.constructors import make_conv
from ..nn.module import Module


class DepthwiseSeparableBlock(Module):
    """Depthwise conv + BN + ReLU, then (possibly quadratic) pointwise conv + BN + ReLU."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 config: QuadraticModelConfig) -> None:
        super().__init__()
        self.depthwise = nn.Conv2d(in_channels, in_channels, kernel_size=3, stride=stride,
                                   padding=1, groups=in_channels, bias=False)
        self.bn1 = nn.BatchNorm2d(in_channels)
        self.pointwise = make_conv(config, in_channels, out_channels, kernel_size=1,
                                   stride=1, padding=0)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU() if config.use_activation else nn.Identity()

    def forward(self, x):
        out = self.relu(self.bn1(self.depthwise(x)))
        return self.relu(self.bn2(self.pointwise(out)))


class MobileNetV1(Module):
    """MobileNetV1 backbone defined by a list of (out_channels, stride) blocks."""

    def __init__(self, cfg: Union[str, Sequence[Tuple[int, int]]], num_classes: int = 10,
                 config: Optional[QuadraticModelConfig] = None, in_channels: int = 3) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        if isinstance(cfg, str):
            cfg = MOBILENET_CFGS[cfg.upper()]
        self.cfg = list(cfg)

        stem_width = self.config.scaled(32)
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, stem_width, kernel_size=3, stride=1, padding=1, bias=False),
            nn.BatchNorm2d(stem_width),
            nn.ReLU(),
        )
        blocks: List[Module] = []
        channels = stem_width
        for out_channels, stride in self.cfg:
            width = self.config.scaled(out_channels)
            blocks.append(DepthwiseSeparableBlock(channels, width, stride, self.config))
            channels = width
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Linear(channels, num_classes))
        self.num_classes = num_classes
        self.num_dw_blocks = len(self.cfg)

    def forward(self, x):
        return self.head(self.blocks(self.stem(x)))

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.stem, self.blocks, self.head)

    def extra_repr(self) -> str:
        return f"dw_blocks={self.num_dw_blocks}, type={self.config.neuron_type}"


def mobilenet_v1(num_classes: int = 10, neuron_type: str = "first_order",
                 width_multiplier: float = 1.0, **kwargs) -> MobileNetV1:
    """The 13-block first-order MobileNetV1 baseline of Table 3."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return MobileNetV1("MOBILENET13", num_classes=num_classes, config=config)


def mobilenet_v1_quadra(num_classes: int = 10, neuron_type: str = "OURS",
                        width_multiplier: float = 1.0, **kwargs) -> MobileNetV1:
    """The auto-built 8-block QuadraNN MobileNet of Table 3."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return MobileNetV1("MOBILENET8", num_classes=num_classes, config=config)


def mobilenet_from_cfg(cfg: Sequence[Tuple[int, int]], num_classes: int,
                       config: QuadraticModelConfig) -> MobileNetV1:
    """Build a MobileNet from an explicit block configuration (auto-builder hook)."""
    return MobileNetV1(cfg, num_classes=num_classes, config=config)
