"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.parameter import Parameter


class Optimizer:
    """Base class holding parameters, hyper-parameters and per-parameter state.

    The design mirrors ``torch.optim.Optimizer``: parameters are stored in
    ``param_groups`` dictionaries so that a scheduler can rescale ``lr`` per
    group, and optimizer state (momentum buffers, Adam moments) is keyed by
    parameter identity.
    """

    def __init__(self, params: Iterable[Parameter], defaults: Dict) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if isinstance(params[0], dict):
            self.param_groups: List[Dict] = []
            for group in params:
                merged = dict(defaults)
                merged.update(group)
                merged["params"] = list(group["params"])
                self.param_groups.append(merged)
        else:
            group = dict(defaults)
            group["params"] = params
            self.param_groups = [group]
        self.state: Dict[int, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------ API
    def zero_grad(self) -> None:
        """Clear the gradient of every managed parameter."""
        for group in self.param_groups:
            for p in group["params"]:
                p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # --------------------------------------------------------------- helpers
    def _get_state(self, param: Parameter) -> Dict[str, np.ndarray]:
        key = id(param)
        if key not in self.state:
            self.state[key] = {}
        return self.state[key]

    @property
    def lr(self) -> float:
        """Learning rate of the first parameter group (scheduler convenience)."""
        return self.param_groups[0]["lr"]

    def set_lr(self, lr: float) -> None:
        for group in self.param_groups:
            group["lr"] = lr

    def _flat_parameters(self) -> List[Parameter]:
        """Every managed parameter in deterministic (group, position) order."""
        return [p for group in self.param_groups for p in group["params"]]

    def state_dict(self) -> Dict:
        """Serializable view: hyper-parameters plus per-parameter state.

        In-memory state is keyed by parameter *identity* (``id``), which does
        not survive a process restart, so the serialized form re-keys each
        entry by the parameter's flat index across ``param_groups`` — the
        order :meth:`_flat_parameters` yields, which is deterministic for a
        rebuilt model.
        """
        state: Dict[str, Dict] = {}
        for index, param in enumerate(self._flat_parameters()):
            entry = self.state.get(id(param))
            if entry:
                state[str(index)] = {
                    key: (np.array(value) if isinstance(value, np.ndarray) else value)
                    for key, value in entry.items()
                }
        return {
            "param_groups": [
                {k: v for k, v in g.items() if k != "params"} for g in self.param_groups
            ],
            "state": state,
        }

    def load_state_dict(self, state_dict: Dict) -> None:
        """Restore hyper-parameters and per-parameter state (checkpoint resume).

        The optimizer must manage the same parameters (same count and order)
        as the one that produced the ``state_dict``.
        """
        groups = state_dict.get("param_groups", [])
        if len(groups) != len(self.param_groups):
            raise ValueError(
                f"checkpoint has {len(groups)} param group(s), optimizer has "
                f"{len(self.param_groups)}")
        for group, saved in zip(self.param_groups, groups):
            for key, value in saved.items():
                if key == "params":
                    continue
                # JSON round-trips tuples (e.g. Adam's betas) as lists.
                group[key] = tuple(value) if isinstance(value, list) else value
        flat = self._flat_parameters()
        self.state.clear()
        for index_key, entry in state_dict.get("state", {}).items():
            index = int(index_key)
            if not 0 <= index < len(flat):
                raise ValueError(
                    f"checkpoint state refers to parameter {index}, but the "
                    f"optimizer manages only {len(flat)}")
            self.state[id(flat[index])] = {
                key: (np.array(value) if isinstance(value, np.ndarray) else value)
                for key, value in entry.items()
            }
