"""QuadraLib reproduction — a quadratic neural network library.

The package reproduces *QuadraLib: A Performant Quadratic Neural Network
Library for Architecture Optimization and Design Exploration* (MLSys 2022)
on top of a from-scratch NumPy autodiff substrate.

Subpackages
-----------
``autodiff``   reverse-mode autodiff engine (Tensor, Function, checkpointing)
``nn``         Module/Parameter layer library, losses, initialisation
``optim``      SGD/Adam optimizers and learning-rate schedulers
``data``       datasets, loaders and the synthetic workload generators
``quadratic``  quadratic neuron types, layers, hybrid back-propagation (core)
``builder``    configuration-driven construction and the QDNN auto-builder (core)
``explore``    architecture search / design exploration over QDNN structures
``models``     VGG / ResNet / MobileNet / SNGAN / SSD model zoo
``profiler``   training-memory, latency and FLOPs profilers
``ppml``       privacy-preserving inference cost models and ReLU→quadratic conversion
``analysis``   activation attention and gradient/weight distribution tools
``training``   classification / GAN / detection trainers
``metrics``    accuracy, VOC mAP, IS/FID (proxy feature network)
``utils``      seeding, logging/tables, checkpoint serialisation

Quickstart
----------
>>> from repro import quadratic as qua
>>> from repro import nn
>>> model = nn.Sequential(
...     qua.typenew(3, 16, kernel_size=3, padding=1),   # the paper's neuron
...     nn.BatchNorm2d(16),
...     nn.ReLU(),
... )
"""

__version__ = "0.1.0"

from . import (
    analysis,
    autodiff,
    builder,
    data,
    explore,
    metrics,
    models,
    nn,
    optim,
    ppml,
    profiler,
    quadratic,
    training,
    utils,
)

__all__ = [
    "autodiff",
    "nn",
    "optim",
    "data",
    "quadratic",
    "builder",
    "explore",
    "models",
    "ppml",
    "profiler",
    "analysis",
    "training",
    "metrics",
    "utils",
    "__version__",
]
