"""A compact Single-Shot MultiBox Detector (Liu et al., 2016).

The paper's Table 6 plugs a first-order or quadratic VGG-16 backbone into SSD
and trains on PASCAL VOC with/without ImageNet pre-training.  This module
reproduces the detector at a smaller scale: a configurable backbone produces
two feature maps, each feeding class and box-offset heads over a fixed anchor
grid; training uses the standard multibox loss (smooth-L1 localisation + hard
negative-mined cross-entropy) and inference decodes anchors and applies NMS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..builder.config import QuadraticModelConfig
from ..builder.constructors import conv_block, make_conv
from ..nn import functional as F
from ..nn.module import Module
from .detection_utils import decode_boxes, encode_boxes, generate_anchors, match_anchors, nms


class SSDBackbone(Module):
    """VGG-style backbone emitting two feature maps (strides 8 and 16).

    The convolution layers follow the configured neuron type, so the same
    class serves as the "1st order" and "QuadraNN" backbone of Table 6.
    The layout mirrors a slimmed VGG: two stride-2 stages before the first
    output map, one more before the second.
    """

    def __init__(self, config: QuadraticModelConfig, in_channels: int = 3,
                 widths: Sequence[int] = (32, 64, 128, 128)) -> None:
        super().__init__()
        w1, w2, w3, w4 = (config.scaled(w) for w in widths)
        self.stage1 = nn.Sequential(
            *conv_block(config, in_channels, w1),
            nn.MaxPool2d(2),
            *conv_block(config, w1, w2),
            nn.MaxPool2d(2),
            *conv_block(config, w2, w3),
            nn.MaxPool2d(2),
        )
        self.stage2 = nn.Sequential(
            *conv_block(config, w3, w4),
            nn.MaxPool2d(2),
        )
        self.out_channels = (w3, w4)

    def forward(self, x) -> Tuple[Tensor, Tensor]:
        feat1 = self.stage1(x)
        feat2 = self.stage2(feat1)
        return feat1, feat2

    def classification_stem(self) -> Module:
        """The layers shared with a classification network (for pre-training)."""
        return self.stage1


class SSD(Module):
    """Single-shot detector over two feature maps.

    Parameters
    ----------
    num_classes : int
        Number of *object* classes (background is handled internally).
    image_size : int
        Input resolution (square).
    config : QuadraticModelConfig
        Backbone neuron type and construction switches.
    """

    def __init__(self, num_classes: int, image_size: int = 64,
                 config: Optional[QuadraticModelConfig] = None,
                 aspect_ratios: Sequence[float] = (1.0, 2.0, 0.5)) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        self.num_classes = int(num_classes)
        self.num_with_background = self.num_classes + 1
        self.image_size = int(image_size)
        self.aspect_ratios = tuple(aspect_ratios)
        self.backbone = SSDBackbone(self.config)

        feat1_size = image_size // 8
        feat2_size = image_size // 16
        self.feature_sizes = (feat1_size, feat2_size)
        self.anchors = generate_anchors(self.feature_sizes, scales=(0.25, 0.5),
                                        aspect_ratios=self.aspect_ratios)
        k = len(self.aspect_ratios)

        c1, c2 = self.backbone.out_channels
        self.cls_head1 = nn.Conv2d(c1, k * self.num_with_background, kernel_size=3, padding=1)
        self.loc_head1 = nn.Conv2d(c1, k * 4, kernel_size=3, padding=1)
        self.cls_head2 = nn.Conv2d(c2, k * self.num_with_background, kernel_size=3, padding=1)
        self.loc_head2 = nn.Conv2d(c2, k * 4, kernel_size=3, padding=1)

    # ------------------------------------------------------------------ forward
    def _flatten_head(self, output: Tensor, channels_per_anchor: int) -> Tensor:
        """(N, k*C, H, W) → (N, k*H*W, C), matching the anchor ordering.

        ``generate_anchors`` emits, per feature map, one block of all spatial
        positions for each aspect ratio (ratio-major); the head output is
        therefore flattened ratio-major, position-minor as well.
        """
        n, _, h, w = output.shape
        out = output.reshape(n, -1, channels_per_anchor, h * w)   # (N, k, C, HW)
        return out.transpose(0, 1, 3, 2).reshape(n, -1, channels_per_anchor)

    def forward(self, x) -> Tuple[Tensor, Tensor]:
        """Return ``(class_logits, box_offsets)`` over every anchor."""
        feat1, feat2 = self.backbone(x)
        cls = [
            self._flatten_head(self.cls_head1(feat1), self.num_with_background),
            self._flatten_head(self.cls_head2(feat2), self.num_with_background),
        ]
        loc = [
            self._flatten_head(self.loc_head1(feat1), 4),
            self._flatten_head(self.loc_head2(feat2), 4),
        ]
        from ..autodiff.tensor import cat

        return cat(cls, axis=1), cat(loc, axis=1)

    # -------------------------------------------------------------------- loss
    def multibox_loss(self, cls_logits: Tensor, box_offsets: Tensor,
                      targets: List[Dict[str, np.ndarray]],
                      negative_ratio: float = 3.0) -> Tensor:
        """Hard-negative-mined classification + smooth-L1 localisation loss."""
        batch = cls_logits.shape[0]
        num_anchors = cls_logits.shape[1]
        all_labels = np.zeros((batch, num_anchors), dtype=np.int64)
        all_boxes = np.zeros((batch, num_anchors, 4), dtype=np.float32)
        for i, target in enumerate(targets):
            labels, boxes = match_anchors(self.anchors, target["boxes"], target["labels"])
            all_labels[i] = labels
            all_boxes[i] = boxes

        positive_mask = all_labels > 0
        num_positive = int(positive_mask.sum())

        # ---- classification with hard negative mining (3:1 by default).
        flat_logits = cls_logits.reshape(batch * num_anchors, self.num_with_background)
        flat_labels = all_labels.reshape(-1)
        per_anchor_ce = F.cross_entropy(flat_logits, flat_labels, reduction="none")

        with no_grad():
            ce_values = per_anchor_ce.data.reshape(batch, num_anchors).copy()
        ce_values[positive_mask] = -np.inf  # exclude positives from negative ranking
        num_neg = min(int(negative_ratio * max(num_positive, 1)),
                      int((~positive_mask).sum()))
        neg_threshold_idx = np.argsort(ce_values.reshape(-1))[::-1][:num_neg]
        selected = positive_mask.reshape(-1).copy()
        selected[neg_threshold_idx] = True

        selection_weights = Tensor(selected.astype(np.float32))
        cls_loss = (per_anchor_ce * selection_weights).sum() / max(num_positive, 1)

        # ---- localisation loss on positive anchors only.
        if num_positive > 0:
            encoded = np.zeros((batch, num_anchors, 4), dtype=np.float32)
            for i in range(batch):
                pos = positive_mask[i]
                if pos.any():
                    encoded[i, pos] = encode_boxes(all_boxes[i, pos], self.anchors[pos])
            loc_weights = Tensor(positive_mask.astype(np.float32)[..., None])
            loc_diff = F.smooth_l1_loss(box_offsets, Tensor(encoded), reduction="none")
            loc_loss = (loc_diff * loc_weights).sum() / max(num_positive, 1)
        else:
            loc_loss = box_offsets.sum() * 0.0

        return cls_loss + loc_loss

    # --------------------------------------------------------------- inference
    def detect(self, x, score_threshold: float = 0.3, iou_threshold: float = 0.45,
               top_k: int = 20) -> List[Dict[str, np.ndarray]]:
        """Run inference and return per-image detections after NMS."""
        was_training = self.training
        self.train(False)
        with no_grad():
            cls_logits, box_offsets = self.forward(x)
        self.train(was_training)

        probs = F.softmax(cls_logits, axis=-1).data
        offsets = box_offsets.data
        results: List[Dict[str, np.ndarray]] = []
        for i in range(probs.shape[0]):
            decoded = decode_boxes(offsets[i], self.anchors)
            boxes_out, scores_out, labels_out = [], [], []
            for cls in range(1, self.num_with_background):
                scores = probs[i, :, cls]
                mask = scores > score_threshold
                if not mask.any():
                    continue
                keep = nms(decoded[mask], scores[mask], iou_threshold=iou_threshold,
                           top_k=top_k)
                boxes_out.append(decoded[mask][keep])
                scores_out.append(scores[mask][keep])
                labels_out.append(np.full(len(keep), cls - 1, dtype=np.int64))
            if boxes_out:
                results.append({
                    "boxes": np.concatenate(boxes_out, axis=0),
                    "scores": np.concatenate(scores_out, axis=0),
                    "labels": np.concatenate(labels_out, axis=0),
                })
            else:
                results.append({
                    "boxes": np.zeros((0, 4), dtype=np.float32),
                    "scores": np.zeros(0, dtype=np.float32),
                    "labels": np.zeros(0, dtype=np.int64),
                })
        return results

    # ---------------------------------------------------------------- pretrain
    def load_backbone_from_classifier(self, classifier_state: Dict[str, np.ndarray],
                                      prefix: str = "features") -> int:
        """Copy matching convolution weights from a classification checkpoint.

        Mirrors the paper's Table 6 "pre-trained" setting where the detector
        backbone is initialised from an (ILSVRC-pre-trained) classification
        network.  Returns the number of parameter tensors copied.
        """
        own_state = {name: p for name, p in self.backbone.named_parameters()}
        copied = 0
        # Match by position among convolution weights of identical shape.
        source_items = [(k, v) for k, v in classifier_state.items()
                        if k.startswith(prefix) and v.ndim >= 2]
        own_items = [(k, p) for k, p in own_state.items() if p.data.ndim >= 2]
        for (_, src), (name, param) in zip(source_items, own_items):
            if src.shape == param.data.shape:
                param.data[...] = src
                copied += 1
        return copied


def build_ssd(num_classes: int, image_size: int = 64, neuron_type: str = "first_order",
              width_multiplier: float = 1.0, **kwargs) -> SSD:
    """Convenience constructor mirroring the other model factories."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return SSD(num_classes=num_classes, image_size=image_size, config=config)
