"""Integration smoke tests for the redesigned CLI (``repro run`` / ``repro list``).

``repro run smoke`` is the CI canary for the whole declarative pipeline: a
bundled spec drives build → fit → evaluate → profile → ppml through the same
code path a user's ``python -m repro run spec.json`` takes, and the results
must serialize back to JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiment import ExperimentSpec, get_preset


def run(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


class TestRun:
    def test_run_bundled_smoke_preset(self, capsys, tmp_path):
        out_path = tmp_path / "results.json"
        out = run(["run", "smoke", "--out", str(out_path)], capsys)
        for step in ("build", "fit", "evaluate", "profile", "ppml"):
            assert step in out
        data = json.loads(out_path.read_text())
        assert data["spec"]["model"]["name"] == "vgg8"
        assert data["spec"]["model"]["neuron_type"] == "OURS"
        for step in ("build", "fit", "evaluate", "profile", "ppml"):
            assert step in data["results"]
        assert data["results"]["build"]["parameters"] > 0
        assert data["results"]["ppml"]["online_latency_ms_after"] > 0

    def test_run_spec_file_round_trip(self, capsys, tmp_path):
        # A spec written to disk drives the same pipeline as the preset.
        spec = get_preset("smoke").with_(name="from-file")
        spec_path = spec.save(str(tmp_path / "spec.json"))
        out_path = tmp_path / "results.json"
        run(["run", spec_path, "--steps", "build,profile", "--out", str(out_path)], capsys)
        data = json.loads(out_path.read_text())
        assert list(data["results"]) == ["build", "profile"]
        assert ExperimentSpec.from_dict(data["spec"]).name == "from-file"

    def test_run_json_output(self, capsys):
        out = run(["run", "smoke", "--steps", "build", "--json"], capsys)
        data = json.loads(out)
        assert data["results"]["build"]["model"] == "vgg8"

    def test_run_unknown_spec_fails_with_preset_listing(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        err = capsys.readouterr().err
        assert "presets" in err and "smoke" in err


class TestList:
    @pytest.mark.parametrize("what,needle", [
        ("models", "vgg8"),
        ("neurons", "OURS"),
        ("datasets", "synthetic_classification"),
        ("trainers", "classifier"),
        ("optimizers", "sgd"),
        ("callbacks", "checkpoint"),
        ("architectures", "VGG16"),
        ("presets", "smoke"),
    ])
    def test_list_each_registry(self, what, needle, capsys):
        assert needle in run(["list", what], capsys)

    def test_list_rejects_unknown_family_naming_the_valid_ones(self, capsys):
        assert main(["list", "gadgets"]) == 2
        err = capsys.readouterr().err
        assert "gadgets" in err
        # The error is actionable: it names every family the CLI can list.
        for family in ("models", "neurons", "datasets", "trainers", "optimizers",
                       "callbacks", "architectures", "presets"):
            assert family in err
