"""CIFAR-style ResNet (He et al., 2016) in first-order and quadratic form.

ResNet-32 = three stages of [5, 5, 5] basic blocks at 16/32/64 channels.
The auto-built QuadraNN uses [2, 2, 2] blocks (Table 3).  The residual
connection also doubles as the paper's reference point for why an identity /
linear path fixes gradient vanishing in quadratic networks (Sec. 3.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .. import nn
from ..builder.config import RESNET_BLOCKS, QuadraticModelConfig
from ..builder.constructors import make_conv
from ..nn.module import Module


class BasicBlock(Module):
    """Two 3×3 convolutions with a residual connection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 config: QuadraticModelConfig) -> None:
        super().__init__()
        self.conv1 = make_conv(config, in_channels, out_channels, kernel_size=3,
                               stride=stride, padding=1)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = make_conv(config, out_channels, out_channels, kernel_size=3,
                               stride=1, padding=1)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU() if config.use_activation else nn.Identity()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, kernel_size=1, stride=stride, bias=False),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNet(Module):
    """Stacked residual stages at 16/32/64 channels (CIFAR-style)."""

    def __init__(self, blocks: Union[str, Sequence[int]], num_classes: int = 10,
                 config: Optional[QuadraticModelConfig] = None, in_channels: int = 3) -> None:
        super().__init__()
        self.config = config or QuadraticModelConfig(neuron_type="first_order")
        if isinstance(blocks, str):
            blocks = RESNET_BLOCKS[blocks.upper()]
        self.block_counts = list(blocks)

        widths = [self.config.scaled(c) for c in (16, 32, 64)]
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, widths[0], kernel_size=3, padding=1, bias=False),
            nn.BatchNorm2d(widths[0]),
            nn.ReLU(),
        )
        stages: List[Module] = []
        channels = widths[0]
        for stage_index, (width, count) in enumerate(zip(widths, self.block_counts)):
            for block_index in range(count):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(BasicBlock(channels, width, stride, self.config))
                channels = width
        self.stages = nn.Sequential(*stages)
        self.head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Linear(channels, num_classes))
        self.num_classes = num_classes

    def forward(self, x):
        return self.head(self.stages(self.stem(x)))

    def inference_plan(self):
        """Execution stages for :func:`repro.inference.compile_model`."""
        return (self.stem, self.stages, self.head)

    def extra_repr(self) -> str:
        return f"blocks={self.block_counts}, type={self.config.neuron_type}"


def resnet32(num_classes: int = 10, neuron_type: str = "first_order",
             width_multiplier: float = 1.0, **kwargs) -> ResNet:
    """ResNet-32: [5, 5, 5] basic blocks (Table 3 first-order baseline)."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return ResNet("RESNET32", num_classes=num_classes, config=config)


def resnet20(num_classes: int = 10, neuron_type: str = "first_order",
             width_multiplier: float = 1.0, **kwargs) -> ResNet:
    """ResNet-20: [3, 3, 3] basic blocks."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return ResNet("RESNET20", num_classes=num_classes, config=config)


def resnet32_quadra(num_classes: int = 10, neuron_type: str = "OURS",
                    width_multiplier: float = 1.0, **kwargs) -> ResNet:
    """The auto-built QuadraNN ResNet: [2, 2, 2] quadratic blocks (Table 3)."""
    config = QuadraticModelConfig(neuron_type=neuron_type, width_multiplier=width_multiplier,
                                  **kwargs)
    return ResNet("RESNET32_QUADRA", num_classes=num_classes, config=config)


def resnet_from_blocks(blocks: Sequence[int], num_classes: int,
                       config: QuadraticModelConfig) -> ResNet:
    """Build a ResNet from explicit block counts (used by the auto-builder)."""
    return ResNet(blocks, num_classes=num_classes, config=config)
