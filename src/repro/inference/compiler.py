"""Compile a :class:`~repro.nn.module.Module` tree into flat NumPy callables.

Eager evaluation pays autodiff bookkeeping on every operation even under
``no_grad``: tensor wrappers, ``Function`` dispatch, context objects.  The
paper's implementation-feasibility argument (P4) says a quadratic neuron is
just first-order projections plus element-wise combinations — so at inference
time the whole model collapses into a short list of closed-over NumPy
functions with no graph at all.

:func:`compile_model` walks the module tree once and emits that list.  Three
mechanisms cover the tree:

* **compile rules** — per-layer-type translators registered in ``_RULES``.
  Each emits a closure that reproduces the layer's eager arithmetic
  *operation for operation* (same primitives, same order), so compiled
  outputs match the eager forward bit-for-bit while skipping every Tensor
  allocation.  Quadratic layers get the fused treatment: the ``im2col``
  lowering is computed **once** and shared by all weight projections
  (eager pays it once per projection), and the combination step runs through
  the fused ``out=`` kernels of :mod:`repro.quadratic.functional`.
* **inference plans** — composite modules whose forward is a pure pipeline
  (``VGG``, ``MobileNetV1``, …) expose ``inference_plan()`` returning their
  stages in execution order; the compiler flattens each stage recursively.
* **fallback** — any module the compiler does not understand (or that has
  forward hooks attached) keeps its eager forward, wrapped to accept and
  return raw arrays.  Compilation therefore never changes semantics, it only
  accelerates the parts it can prove equivalent.

Two orthogonal axes configure a compile:

* ``backend`` — the execution engine.  Every numerical primitive a rule
  emits (GEMM, ``im2col``, grouped projections, the fused quadratic
  combination, pooling, element-wise glue) dispatches through one
  :class:`repro.backends.Backend` object, so
  ``compile_model(model, backend="threaded")`` runs the same step list on
  all cores and ``backend="int8"`` runs it quantized.  The default
  ``numpy`` backend is the reference arithmetic.
* ``optimize`` — the graph level.  Before a chain is lowered,
  :func:`repro.inference.optimizer.optimize_plan` rewrites it (dead-layer
  elimination, padding folding, BatchNorm constant folding; BN-into-conv at
  ``"full"``), and a :class:`~repro.inference.buffers.LifetimePlanner`
  assigns pooled buffers from shared lifetime arenas instead of per-step
  namespaces.  ``optimize="none"`` reproduces the unoptimized layout.

Intermediate results are written into buffers rented from a
:class:`~repro.inference.buffers.BufferPool`, so steady-state serving reuses
the same scratch memory call after call.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from ..autodiff.function import Context
from ..autodiff.grad_mode import inference_mode
from ..autodiff.ops import conv as conv_ops
from ..autodiff.ops.conv import conv_output_size
from ..autodiff.tensor import Tensor
from ..backends import Backend, get_backend
from ..nn.containers import Sequential
from ..nn.layers.activations import (
    GELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Square,
    Tanh,
)
from ..nn.layers.conv import Conv2d, DepthwiseSeparableConv2d
from ..nn.layers.linear import Linear
from ..nn.layers.misc import Dropout, Flatten, UpsampleNearest2d, ZeroPad2d
from ..nn.layers.normalization import LayerNorm, _BatchNorm
from ..nn.layers.pooling import AdaptiveAvgPool2d, AvgPool2d, GlobalAvgPool2d, MaxPool2d
from ..nn.module import Module
from ..quadratic.functional import REQUIRED_RESPONSES
from ..quadratic.layers.hybrid import (
    HybridQuadraticConv2d,
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dT4,
    HybridQuadraticLinear,
)
from ..quadratic.layers.qconv import QuadraticConv2d
from ..quadratic.layers.qlinear import QuadraticLinear
from .buffers import BufferPool, LifetimePlanner
from .optimizer import FrozenBatchNorm, OptimizationReport, normalize_level, optimize_plan

#: One compiled step: a raw-array transformation with no graph side effects.
Step = Callable[[np.ndarray], np.ndarray]

#: module type -> rule(module, compiler) -> list of steps.
_RULES: Dict[Type[Module], Callable] = {}


def register_compile_rule(*module_types: Type[Module]):
    """Register a compile rule for one or more layer classes.

    The rule receives ``(module, compiler)`` and returns the step list that
    reproduces the module's eager forward on raw arrays.  Rules are resolved
    through the module's MRO, so registering a base class covers subclasses.
    """

    def _register(fn: Callable) -> Callable:
        for module_type in module_types:
            _RULES[module_type] = fn
        return fn

    return _register


class CompiledModel:
    """A model lowered to a flat list of NumPy callables.

    Calling it runs the steps in order inside
    :func:`~repro.autodiff.inference_mode` and returns a fresh output array
    (intermediates may live in pooled buffers that the next call overwrites).
    The source model is untouched; weight arrays are shared, not copied, so a
    compiled model sees in-place parameter updates but must be re-compiled
    after structural changes.

    ``backend`` is the :class:`repro.backends.Backend` instance the steps
    dispatch through; ``optimization`` is the
    :class:`~repro.inference.optimizer.OptimizationReport` of the graph
    rewrites applied at compile time.
    """

    def __init__(self, model: Module, steps: List[Step], pool: BufferPool,
                 fallback_modules: List[Module],
                 batch_dependent_modules: Optional[List[Module]] = None,
                 backend: Optional[Backend] = None,
                 optimization: Optional[OptimizationReport] = None) -> None:
        self.model = model
        self.pool = pool
        self.fallback_modules = fallback_modules
        #: modules whose output depends on which samples share the batch
        #: (BatchNorm without running statistics) — micro-batching such a
        #: model makes predictions traffic-dependent.
        self.batch_dependent_modules = batch_dependent_modules or []
        self.backend = backend if backend is not None else get_backend(None)
        self.optimization = (optimization if optimization is not None
                             else OptimizationReport(level="none"))
        self._steps = steps

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def __call__(self, x: np.ndarray,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
        """Run the compiled forward on a batched input array.

        ``out``, when given, receives the result in place (shapes must
        match) and is returned — the allocation-free path serving workers
        use to write straight into a response ring slot or a pooled arena
        buffer instead of a fresh heap array per call.
        """
        if isinstance(x, Tensor):
            x = x.data
        result = np.asarray(x, dtype=np.float32)
        with inference_mode():
            for step in self._steps:
                result = step(result)
        # The last step may return a pooled buffer the next call overwrites;
        # the caller gets a fresh copy — or their own ``out`` storage.
        if out is None:
            return np.array(result, copy=True)
        if out.shape != result.shape:
            raise ValueError(
                f"out has shape {out.shape}, forward produced {result.shape}")
        np.copyto(out, result, casting="same_kind")
        return out

    def warmup(self, sample_shape: Tuple[int, ...],
               batch_sizes: Sequence[int] = (1,)) -> "CompiledModel":
        """Pre-run zero batches so no live request pays first-call costs.

        The first forward at a new batch size allocates the pooled buffers
        and resolves the per-shape einsum-vs-matmul dispatch probes; a
        serving deployment can pay that up front for every micro-batch size
        it expects (``range(1, max_batch_size + 1)`` for a
        :class:`~repro.inference.BatchedPredictor`).
        """
        for batch_size in batch_sizes:
            self(np.zeros((int(batch_size),) + tuple(sample_shape), dtype=np.float32))
        return self

    def __repr__(self) -> str:
        return (f"CompiledModel({type(self.model).__name__}, steps={self.num_steps}, "
                f"backend={self.backend.name!r}, "
                f"fallbacks={len(self.fallback_modules)})")


class _Compiler:
    """Single-pass tree walker carrying the pool, backend and step counter."""

    def __init__(self, pool: BufferPool, backend: Optional[Backend] = None,
                 level: str = "none") -> None:
        self.pool = pool
        self.backend = backend if backend is not None else get_backend(None)
        self.level = level
        self.planner = LifetimePlanner(enabled=(level != "none"))
        self.report = OptimizationReport(level=level)
        self.fallbacks: List[Module] = []
        self.batch_dependent: List[Module] = []
        self._step_index = 0

    def next_key(self) -> int:
        """A unique id per emitted step, namespacing its pooled buffers."""
        self._step_index += 1
        return self._step_index

    # -------------------------------------------------------------- traversal
    def compile_module(self, module: Module) -> List[Step]:
        if module._forward_hooks:
            # Hooks observe eager activations (profilers, analysis tools);
            # keep this module eager so they still fire.
            return [self.fallback(module)]
        if isinstance(module, Sequential):
            return self.compile_chain(module)
        plan = getattr(module, "inference_plan", None)
        if callable(plan):
            return self.compile_chain(plan())
        for klass in type(module).__mro__:
            rule = _RULES.get(klass)
            if rule is not None:
                return list(rule(module, self))
        return [self.fallback(module)]

    def compile_chain(self, modules: Sequence[Module]) -> List[Step]:
        optimized, _ = optimize_plan(modules, self.level, self.report)
        steps: List[Step] = []
        for module in optimized:
            steps.extend(self.compile_module(module))
        return steps

    def fallback(self, module: Module) -> Step:
        """Wrap an eager module so it slots into the compiled pipeline.

        The compiled forward promises evaluation semantics, so the module
        (and its subtree) is switched to eval for the duration of the call —
        otherwise a training-mode fallback would fire dropout and mutate
        BatchNorm running statistics mid-inference.
        """
        self.fallbacks.append(module)
        self.batch_dependent.extend(
            m for m in module.modules()
            if isinstance(m, _BatchNorm) and not m.track_running_stats)

        def run_eager(x: np.ndarray) -> np.ndarray:
            was_training = module.training
            if was_training:
                module.train(False)
            try:
                out = module(Tensor(x, _copy=False))
            finally:
                if was_training:
                    module.train(True)
            return out.data if isinstance(out, Tensor) else np.asarray(out)

        return run_eager


def compile_model(model: Module, pool: Optional[BufferPool] = None,
                  mode: str = "float", backend: Union[str, Backend, None] = None,
                  optimize: Union[str, bool, None] = None, **ppml_options):
    """Lower ``model`` to a compiled forward path for gradient-free serving.

    ``mode`` selects the lowering:

    * ``"float"`` (default) — the :class:`CompiledModel` NumPy fast path.
      The compiled forward uses evaluation semantics regardless of the
      model's ``training`` flag: dropout is removed and batch normalisation
      uses its running statistics (models that track none fall back to batch
      statistics, exactly like their eager ``eval()`` forward).

      ``backend`` picks the execution engine by registry name
      (:data:`repro.backends.BACKENDS`: ``"numpy"``, ``"threaded"``,
      ``"int8"``), a pre-configured :class:`~repro.backends.Backend`
      instance, or ``None`` for the reference engine.  ``optimize`` sets the
      graph-optimizer level (``"none"``/``"default"``/``"full"``, or
      ``True``/``False``; ``None`` means ``"default"``).
    * ``"ppml"`` — the secure-inference path: the same traversal scheme
      emits *fixed-point* closures instead, returning a
      :class:`repro.ppml.SecureCompiledModel` that executes under
      hybrid-protocol semantics and records a per-layer protocol trace.
      Extra keyword arguments (``protocol``, ``frac_bits``, ``truncation``,
      ``seed``) become the :class:`repro.ppml.SecureConfig`.
    """
    if mode == "ppml":
        if backend is not None:
            raise ValueError(
                "backend selection applies to mode='float'; the secure path "
                "has its own fixed-point execution engine")
        if optimize not in (None, False, "none"):
            raise ValueError(
                "graph optimization applies to mode='float'; mode='ppml' "
                "performs its own fixed-point lowering")
        from ..ppml.runtime import SecureConfig, secure_compile

        return secure_compile(model, config=SecureConfig(**ppml_options), pool=pool)
    if mode != "float":
        raise ValueError(f"unknown compile mode '{mode}'; choose 'float' or 'ppml'")
    if ppml_options:
        raise TypeError(
            f"keyword arguments {sorted(ppml_options)} are only valid with mode='ppml'")
    engine = get_backend(backend)
    level = normalize_level(optimize)
    compiler = _Compiler(pool if pool is not None else engine.make_pool(),
                         backend=engine, level=level)
    steps = compiler.compile_module(model)
    return CompiledModel(model, steps, compiler.pool, compiler.fallbacks,
                         compiler.batch_dependent, backend=engine,
                         optimization=compiler.report)


# --------------------------------------------------------------------------- #
# First-order layers
# --------------------------------------------------------------------------- #

@register_compile_rule(Linear)
def _compile_linear(module: Linear, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    pool = compiler.pool
    weight_t = module.weight.data.T          # view; tracks in-place updates
    bias = module.bias.data if module.bias is not None else None
    out_key = compiler.planner.activation(compiler.next_key())

    def linear_step(x: np.ndarray) -> np.ndarray:
        out_shape = x.shape[:-1] + (weight_t.shape[-1],)
        out = be.gemm(x, weight_t, out=pool.get(out_key, out_shape))
        if bias is not None:
            be.add(out, bias, out=out)
        return out

    return [linear_step]


def _conv_geometry(module) -> Tuple[Tuple[int, int], Tuple[int, int], int]:
    return module.stride, module.padding, getattr(module, "groups", 1)


@register_compile_rule(Conv2d)
def _compile_conv2d(module: Conv2d, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    pool = compiler.pool
    stride, padding, groups = _conv_geometry(module)
    f, c_g, kh, kw = module.weight.shape
    wmat = module.weight.data.reshape(groups, f // groups, c_g * kh * kw)
    bias = (module.bias.data.reshape(1, f, 1, 1)
            if module.bias is not None else None)
    key = compiler.next_key()
    cols_key = compiler.planner.scratch(key, "cols")
    out_key = compiler.planner.activation(key)
    dispatch_cache: dict = {}

    def conv_step(x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        cols_buf = pool.get(cols_key, (n, c, kh, kw, oh, ow))
        cols = be.im2col(x, kh, kw, stride, padding, out=cols_buf)
        cols = cols.reshape(n, groups, c_g * kh * kw, oh * ow)
        out = be.conv_project(cols, wmat,
                              pool.get(out_key, (n, groups, f // groups, oh * ow)),
                              dispatch_cache)
        out = out.reshape(n, f, oh, ow)
        if bias is not None:
            be.add(out, bias, out=out)
        return out

    return [conv_step]


@register_compile_rule(DepthwiseSeparableConv2d)
def _compile_depthwise_separable(module: DepthwiseSeparableConv2d,
                                 compiler: _Compiler) -> List[Step]:
    return compiler.compile_chain([module.depthwise, module.pointwise])


@register_compile_rule(_BatchNorm)
def _compile_batchnorm(module: _BatchNorm, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    pool = compiler.pool
    out_key = compiler.planner.activation(compiler.next_key())
    eps = np.asarray(module.eps, dtype=np.float32)
    if not module.track_running_stats:
        # Eval-mode batch statistics: the output of any one sample depends on
        # its batch mates, so micro-batching this model is lossy.
        compiler.batch_dependent.append(module)

    def batchnorm_step(x: np.ndarray) -> np.ndarray:
        shape = module._stat_shape(x.ndim)
        if module.track_running_stats:
            mean = module.running_mean.reshape(shape)
            var = module.running_var.reshape(shape)
        else:
            axes = module._stat_axes(x)
            mean = x.mean(axis=axes, keepdims=True)
            delta = x - mean
            var = np.multiply(delta, delta, out=delta).mean(axis=axes, keepdims=True)
        inv_std = (var + eps) ** -0.5
        out = pool.get(out_key, x.shape)
        be.subtract(x, mean, out=out)
        be.multiply(out, inv_std, out=out)
        if module.affine:
            be.multiply(out, module.weight.data.reshape(shape), out=out)
            be.add(out, module.bias.data.reshape(shape), out=out)
        return out

    return [batchnorm_step]


@register_compile_rule(FrozenBatchNorm)
def _compile_frozen_batchnorm(module: FrozenBatchNorm,
                              compiler: _Compiler) -> List[Step]:
    """The constant-folded BatchNorm: same four ops on precomputed arrays."""
    be = compiler.backend
    pool = compiler.pool
    out_key = compiler.planner.activation(compiler.next_key())
    reshaped: Dict[int, tuple] = {}

    def frozen_batchnorm_step(x: np.ndarray) -> np.ndarray:
        consts = reshaped.get(x.ndim)
        if consts is None:
            shape = module.stat_shape(x.ndim)
            consts = (module.mean.reshape(shape), module.inv_std.reshape(shape),
                      module.gamma.reshape(shape) if module.gamma is not None else None,
                      module.beta.reshape(shape) if module.beta is not None else None)
            reshaped[x.ndim] = consts
        mean, inv_std, gamma, beta = consts
        out = pool.get(out_key, x.shape)
        be.subtract(x, mean, out=out)
        be.multiply(out, inv_std, out=out)
        if gamma is not None:
            be.multiply(out, gamma, out=out)
            be.add(out, beta, out=out)
        return out

    return [frozen_batchnorm_step]


@register_compile_rule(LayerNorm)
def _compile_layernorm(module: LayerNorm, compiler: _Compiler) -> List[Step]:
    eps = np.asarray(module.eps, dtype=np.float32)
    normalized_ndim = len(module.normalized_shape)

    def layernorm_step(x: np.ndarray) -> np.ndarray:
        axes = tuple(range(x.ndim - normalized_ndim, x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        normed = centered * ((var + eps) ** -0.5)
        return normed * module.weight.data + module.bias.data

    return [layernorm_step]


# --------------------------------------------------------------------------- #
# Activations and shape plumbing
# --------------------------------------------------------------------------- #

@register_compile_rule(ReLU)
def _compile_relu(module: ReLU, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    pool = compiler.pool
    out_key = compiler.planner.activation(compiler.next_key())

    def relu_step(x: np.ndarray) -> np.ndarray:
        return be.maximum(x, np.float32(0.0), out=pool.get(out_key, x.shape))

    return [relu_step]


@register_compile_rule(LeakyReLU)
def _compile_leaky_relu(module: LeakyReLU, compiler: _Compiler) -> List[Step]:
    slope = module.negative_slope

    def leaky_relu_step(x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, slope * x)

    return [leaky_relu_step]


@register_compile_rule(Sigmoid)
def _compile_sigmoid(module: Sigmoid, compiler: _Compiler) -> List[Step]:
    def sigmoid_step(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    return [sigmoid_step]


@register_compile_rule(Tanh)
def _compile_tanh(module: Tanh, compiler: _Compiler) -> List[Step]:
    def tanh_step(x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    return [tanh_step]


@register_compile_rule(GELU)
def _compile_gelu(module: GELU, compiler: _Compiler) -> List[Step]:
    c = float(np.sqrt(2.0 / np.pi))

    def gelu_step(x: np.ndarray) -> np.ndarray:
        return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x * x * x)))

    return [gelu_step]


@register_compile_rule(Softmax)
def _compile_softmax(module: Softmax, compiler: _Compiler) -> List[Step]:
    axis = module.axis

    def softmax_step(x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=axis, keepdims=True)

    return [softmax_step]


@register_compile_rule(Square)
def _compile_square(module: Square, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    pool = compiler.pool
    out_key = compiler.planner.activation(compiler.next_key())
    scale, linear = module.scale, module.linear

    def square_step(x: np.ndarray) -> np.ndarray:
        out = pool.get(out_key, x.shape)
        be.multiply(x, x, out=out)
        be.multiply(out, np.float32(scale), out=out)
        if linear:
            be.add(out, x * np.float32(linear), out=out)
        return out

    return [square_step]


@register_compile_rule(Identity, Dropout)
def _compile_noop(module: Module, compiler: _Compiler) -> List[Step]:
    # Dropout is the identity in evaluation mode; drop the step entirely.
    return []


@register_compile_rule(Flatten)
def _compile_flatten(module: Flatten, compiler: _Compiler) -> List[Step]:
    start_dim = module.start_dim

    def flatten_step(x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[:start_dim] + (-1,))

    return [flatten_step]


@register_compile_rule(ZeroPad2d)
def _compile_zeropad(module: ZeroPad2d, compiler: _Compiler) -> List[Step]:
    left, right, top, bottom = module.padding

    def zeropad_step(x: np.ndarray) -> np.ndarray:
        pad_width = [(0, 0)] * (x.ndim - 2) + [(top, bottom), (left, right)]
        return np.pad(x, pad_width, mode="constant")

    return [zeropad_step]


@register_compile_rule(UpsampleNearest2d)
def _compile_upsample(module: UpsampleNearest2d, compiler: _Compiler) -> List[Step]:
    scale = module.scale_factor

    def upsample_step(x: np.ndarray) -> np.ndarray:
        return x.repeat(scale, axis=2).repeat(scale, axis=3)

    return [upsample_step]


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #

@register_compile_rule(MaxPool2d)
def _compile_maxpool(module: MaxPool2d, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    kernel_size, stride, padding = module.kernel_size, module.stride, module.padding
    kh, kw = conv_ops._pair(kernel_size)
    sh, sw = conv_ops._pair(stride if stride is not None else kernel_size)
    ph, pw = conv_ops._pair(padding)
    tiled = (sh, sw) == (kh, kw) and (ph, pw) == (0, 0)

    def maxpool_step(x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if tiled and h % kh == 0 and w % kw == 0:
            # Non-overlapping windows partition the input exactly, and max
            # selection is order-independent, so the reshape route returns
            # the same values as the im2col route without gathering columns.
            return x.reshape(n, c, h // kh, kh, w // kw, kw).max(axis=(3, 5))
        # General case: the backend's pooling primitive (the reference is the
        # autodiff op's forward, bit-identical to eager evaluation).
        return be.maxpool(x, kernel_size, stride, padding)

    return [maxpool_step]


@register_compile_rule(AvgPool2d)
def _compile_avgpool(module: AvgPool2d, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    kernel_size, stride, padding = module.kernel_size, module.stride, module.padding

    def avgpool_step(x: np.ndarray) -> np.ndarray:
        return be.avgpool(x, kernel_size, stride, padding)

    return [avgpool_step]


@register_compile_rule(AdaptiveAvgPool2d)
def _compile_adaptive_avgpool(module: AdaptiveAvgPool2d, compiler: _Compiler) -> List[Step]:
    be = compiler.backend
    output_size = module.output_size

    def adaptive_avgpool_step(x: np.ndarray) -> np.ndarray:
        if output_size == 1:
            return x.mean(axis=(2, 3), keepdims=True)
        n, c, h, w = x.shape
        if h % output_size or w % output_size:
            # Same guard (and message) as the eager functional form.
            raise ValueError(
                f"adaptive_avg_pool2d requires divisible sizes, got {h}x{w} -> {output_size}"
            )
        return be.avgpool(x, (h // output_size, w // output_size))

    return [adaptive_avgpool_step]


@register_compile_rule(GlobalAvgPool2d)
def _compile_global_avgpool(module: GlobalAvgPool2d, compiler: _Compiler) -> List[Step]:
    def global_avgpool_step(x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3))

    return [global_avgpool_step]


# --------------------------------------------------------------------------- #
# Quadratic layers — the fused kernels
# --------------------------------------------------------------------------- #

_WEIGHT_ATTRS = {"a": "weight_a", "b": "weight_b", "c": "weight_c", "sq": "weight_sq"}


@register_compile_rule(QuadraticConv2d, HybridQuadraticConv2d,
                       HybridQuadraticConv2dT4, HybridQuadraticConv2dFan)
def _compile_quadratic_conv(module: Module, compiler: _Compiler) -> List[Step]:
    """Fused quadratic convolution: one im2col shared by every projection.

    Eager evaluation lowers the input to columns once per weight set (three
    times for the paper's neuron); the compiled step lowers once, applies all
    projections to the shared columns and combines them with the fused
    element-wise kernels — identical arithmetic, a third of the memory
    traffic, zero graph nodes.
    """
    be = compiler.backend
    pool = compiler.pool
    required = REQUIRED_RESPONSES[module.neuron_type]
    stride, padding, groups = _conv_geometry(module)
    kh, kw = module.kernel_size
    f = module.out_channels
    c_g = module.in_channels // groups
    patch = c_g * kh * kw
    wmats = {
        kind: getattr(module, _WEIGHT_ATTRS[kind]).data.reshape(groups, f // groups, patch)
        for kind in required if kind != "id"
    }
    bias = (module.bias.data.reshape(1, f, 1, 1)
            if module.bias is not None else None)
    key = compiler.next_key()
    cols_key = compiler.planner.scratch(key, "cols")
    sq_cols_key = compiler.planner.scratch(key, "sq_cols")
    proj_keys = {kind: compiler.planner.scratch(key, f"proj_{kind}")
                 for kind in wmats}
    out_key = compiler.planner.activation(key)
    neuron_type = module.neuron_type
    dispatch_cache: dict = {}

    def quadratic_conv_step(x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        out_shape = (n, groups, f // groups, oh * ow)
        cols_buf = pool.get(cols_key, (n, c, kh, kw, oh, ow))
        cols = be.im2col(x, kh, kw, stride, padding, out=cols_buf)
        cols = cols.reshape(n, groups, patch, oh * ow)
        responses = []
        for kind in required:
            if kind == "id":
                responses.append(x)
                continue
            if kind == "sq":
                # im2col(x²) == im2col(x)² element-wise (zero padding squares
                # to zero), so the squared projection shares the lowering too.
                source = be.multiply(cols, cols, out=pool.get(sq_cols_key, cols.shape))
            else:
                source = cols
            projected = be.conv_project(source, wmats[kind],
                                        pool.get(proj_keys[kind], out_shape),
                                        dispatch_cache)
            responses.append(projected.reshape(n, f, oh, ow))
        out = be.combine(neuron_type, responses,
                         out=pool.get(out_key, (n, f, oh, ow)))
        if bias is not None:
            be.add(out, bias, out=out)
        return out

    return [quadratic_conv_step]


@register_compile_rule(QuadraticLinear, HybridQuadraticLinear)
def _compile_quadratic_linear(module: Module, compiler: _Compiler) -> List[Step]:
    """Fused dense quadratic layer (all composable types; T1 falls back)."""
    required = REQUIRED_RESPONSES[module.neuron_type]
    if "bilinear" in required:
        # The full-rank T1 family keeps its eager einsum path.
        return [compiler.fallback(module)]
    be = compiler.backend
    pool = compiler.pool
    weights_t = {
        kind: getattr(module, _WEIGHT_ATTRS[kind]).data.T
        for kind in required if kind != "id"
    }
    bias = module.bias.data if module.bias is not None else None
    key = compiler.next_key()
    sq_key = compiler.planner.scratch(key, "x_sq")
    proj_keys = {kind: compiler.planner.scratch(key, f"qlin_{kind}")
                 for kind in weights_t}
    out_key = compiler.planner.activation(key)
    neuron_type = module.neuron_type
    out_features = module.out_features

    def quadratic_linear_step(x: np.ndarray) -> np.ndarray:
        proj_shape = (x.shape[0], out_features)
        responses = []
        for kind in required:
            if kind == "id":
                responses.append(x)
            elif kind == "sq":
                squared = be.multiply(x, x, out=pool.get(sq_key, x.shape))
                responses.append(be.gemm(squared, weights_t["sq"],
                                         out=pool.get(proj_keys["sq"], proj_shape)))
            else:
                responses.append(be.gemm(x, weights_t[kind],
                                         out=pool.get(proj_keys[kind], proj_shape)))
        out = be.combine(neuron_type, responses,
                         out=pool.get(out_key, proj_shape))
        if bias is not None:
            be.add(out, bias, out=out)
        return out

    return [quadratic_linear_step]


# --------------------------------------------------------------------------- #
# Residual blocks (registered here so the zoo stays free of compiler imports)
# --------------------------------------------------------------------------- #

def _register_block_rules() -> None:
    from ..models.mobilenet import DepthwiseSeparableBlock
    from ..models.resnet import BasicBlock

    @register_compile_rule(BasicBlock)
    def _compile_basic_block(module: BasicBlock, compiler: _Compiler) -> List[Step]:
        # The block's input stays live across the whole inner chain (it feeds
        # the shortcut and the residual add), which breaks the straight-line
        # liveness the activation arenas rely on — pin the region so its
        # steps keep private buffers.
        with compiler.planner.pinned():
            main = compiler.compile_chain(
                [module.conv1, module.bn1, module.relu, module.conv2, module.bn2])
            shortcut = compiler.compile_module(module.shortcut)
        final_relu = compiler.compile_module(module.relu)

        def basic_block_step(x: np.ndarray) -> np.ndarray:
            out = x
            for step in main:
                out = step(out)
            residual = x
            for step in shortcut:
                residual = step(residual)
            out = out + residual
            for step in final_relu:
                out = step(out)
            return out

        return [basic_block_step]

    @register_compile_rule(DepthwiseSeparableBlock)
    def _compile_dw_block(module: DepthwiseSeparableBlock, compiler: _Compiler) -> List[Step]:
        return compiler.compile_chain([module.depthwise, module.bn1, module.relu,
                                       module.pointwise, module.bn2, module.relu])


_register_block_rules()
