"""Tests of the backward engine: accumulation, graph reuse, grad modes, checkpointing."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    checkpoint,
    enable_grad,
    is_grad_enabled,
    no_grad,
    randn,
    tensor,
)


class TestBackwardEngine:
    def test_gradient_accumulates_across_backward_calls(self):
        a = tensor([2.0], requires_grad=True)
        (a * 3.0).backward()
        (a * 3.0).backward()
        assert np.allclose(a.grad, [6.0])

    def test_diamond_graph_accumulates(self):
        # y = a*a used twice downstream: d/da (a*a + a*a) = 4a
        a = tensor([3.0], requires_grad=True)
        b = a * a
        (b + b).backward()
        assert np.allclose(a.grad, [12.0])

    def test_shared_subexpression(self):
        a = tensor([2.0], requires_grad=True)
        b = a * 3.0
        out = b * b + b
        out.backward()
        # d/da (9a^2 + 3a) = 18a + 3 = 39
        assert np.allclose(a.grad, [39.0])

    def test_non_scalar_backward_requires_grad_argument(self):
        a = randn(3, requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_non_scalar_backward_with_grad(self):
        a = randn(3, requires_grad=True)
        (a * 2).backward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert np.allclose(a.grad, [2.0, 4.0, 6.0])

    def test_leaf_only_gets_grad(self):
        a = tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = b * 3.0
        c.backward()
        assert a.grad is not None
        assert b.grad is None

    def test_retain_grad_on_intermediate(self):
        a = tensor([1.0], requires_grad=True)
        b = (a * 2.0).retain_grad()
        (b * 3.0).backward()
        assert np.allclose(b.grad, [3.0])

    def test_no_grad_through_non_required_inputs(self):
        a = tensor([1.0], requires_grad=True)
        b = tensor([2.0], requires_grad=False)
        (a * b).backward()
        assert a.grad is not None
        assert b.grad is None

    def test_zero_grad(self):
        a = tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_detach_cuts_graph(self):
        a = tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        c = b * 3.0
        assert not c.requires_grad

    def test_backward_on_leaf_root(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        a.backward(np.array([1.0, 1.0], dtype=np.float32))
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_retain_graph_allows_second_backward(self):
        a = tensor([2.0], requires_grad=True)
        out = (a * a).sum()
        out.backward(retain_graph=True)
        out.backward(retain_graph=True)
        assert np.allclose(a.grad, [8.0])

    def test_deep_chain_does_not_overflow(self):
        # Iterative topological sort must handle graphs deeper than the
        # recursion limit would allow.
        a = tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 1.0
        x.backward()
        assert np.allclose(a.grad, [1.0])


class TestGradMode:
    def test_no_grad_disables_tracking(self):
        a = tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad
        assert b._ctx is None

    def test_grad_mode_restored_after_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_grad_mode_restored_after_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        a = tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                b = a * 2.0
        assert b.requires_grad


class TestCheckpoint:
    def test_checkpoint_matches_direct_execution(self):
        def fn(u, v):
            return ((u * v).relu() + u.sigmoid()).sum()

        u1 = randn(6, requires_grad=True)
        v1 = randn(6, requires_grad=True)
        u2 = Tensor(u1.data.copy(), requires_grad=True)
        v2 = Tensor(v1.data.copy(), requires_grad=True)

        direct = fn(u1, v1)
        direct.backward()
        cp = checkpoint(fn, u2, v2)
        cp.backward()

        assert np.allclose(direct.data, cp.data, atol=1e-6)
        assert np.allclose(u1.grad, u2.grad, atol=1e-5)
        assert np.allclose(v1.grad, v2.grad, atol=1e-5)

    def test_checkpoint_forward_value(self):
        u = randn(4, requires_grad=True)
        out = checkpoint(lambda t: (t * 2.0).sum(), u)
        assert np.allclose(out.data, (u.data * 2.0).sum(), atol=1e-5)

    def test_checkpoint_respects_requires_grad(self):
        u = randn(4, requires_grad=False)
        out = checkpoint(lambda t: (t * 2.0).sum(), u)
        assert not out.requires_grad

    def test_checkpoint_rejects_non_tensor_return(self):
        u = randn(4, requires_grad=True)
        with pytest.raises(TypeError):
            checkpoint(lambda t: 3.0, u)


class TestTensorBasics:
    def test_dtype_defaults_to_float32(self):
        assert tensor([1.0, 2.0]).dtype == np.float32

    def test_int_arrays_stay_integer(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_item_and_numpy(self):
        t = tensor([3.5])
        assert t.item() == pytest.approx(3.5)
        arr = t.numpy()
        arr[0] = 0.0
        assert t.data[0] == pytest.approx(3.5)  # numpy() returns a copy

    def test_len_shape_size(self):
        t = randn(4, 5)
        assert len(t) == 4
        assert t.shape == (4, 5)
        assert t.size == 20
        assert t.ndim == 2

    def test_comparison_operators_detached(self):
        a = randn(3, requires_grad=True)
        mask = a > 0
        assert not mask.requires_grad
        assert mask.dtype == np.bool_

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(tensor([1.0], requires_grad=True))

    def test_clone_is_independent(self):
        a = tensor([1.0], requires_grad=True)
        b = a.clone()
        b.data[0] = 5.0
        assert a.data[0] == pytest.approx(1.0)
