"""Design exploration: search for a QDNN structure instead of hand-designing it.

Run with::

    python examples/design_exploration.py

The paper's problem P5 is that every published QDNN uses an ad-hoc shallow
structure, and that finding a good structure for a new task takes NAS-style
design effort.  ``repro.explore`` provides that layer: a search space over
plain QDNN structures (depth, width, neuron type, BatchNorm/ReLU switches), a
cached proxy evaluator, and random-search / evolutionary drivers.

The script explores a small space on a synthetic CIFAR-like task, prints the
best candidates and the accuracy-vs-parameters Pareto front, and shows how to
seed the evolutionary search with the paper's own QuadraNN-style structure.
"""

import numpy as np

from repro import explore
from repro.data.synthetic import SyntheticImageClassification
from repro.utils import print_table, seed_everything

NUM_CLASSES = 6
IMAGE_SIZE = 16


def make_evaluator() -> explore.ProxyEvaluator:
    """Proxy task: short training on a scaled synthetic classification set."""
    train = SyntheticImageClassification(num_samples=192, num_classes=NUM_CLASSES,
                                         image_size=IMAGE_SIZE, seed=0, split_seed=0)
    test = SyntheticImageClassification(num_samples=96, num_classes=NUM_CLASSES,
                                        image_size=IMAGE_SIZE, seed=0, split_seed=1)
    return explore.ProxyEvaluator(train, test, num_classes=NUM_CLASSES, image_size=IMAGE_SIZE,
                                  epochs=2, batch_size=16, max_batches_per_epoch=6,
                                  width_multiplier=0.5, lr=0.05, seed=0)


def report(result: explore.SearchResult, title: str) -> None:
    rows = [[
        e.genome.key(),
        e.genome.neuron_type,
        e.genome.num_conv_layers,
        f"{e.parameters:,}",
        f"{e.accuracy:.3f}",
    ] for e in result.top(5)]
    print()
    print_table(["Candidate", "Neuron", "#Conv", "#Param", "Proxy accuracy"], rows, title=title)

    front = result.pareto_front(maximize=("accuracy",), minimize=("parameters",))
    front_rows = [[e.genome.key(), f"{e.parameters:,}", f"{e.accuracy:.3f}"]
                  for e in sorted(front, key=lambda e: e.parameters)]
    print()
    print_table(["Pareto candidate", "#Param", "Proxy accuracy"], front_rows,
                title="Accuracy vs. parameters Pareto front")
    print(f"\n2-D hypervolume (accuracy x parameters): "
          f"{explore.hypervolume_2d(result.history):.3g}")


def main() -> None:
    seed_everything(0)
    space = explore.SearchSpace(
        min_stages=2, max_stages=3, min_convs_per_stage=1, max_convs_per_stage=2,
        width_choices=(16, 32, 64),
        neuron_types=("first_order", "T4", "OURS"),
        allow_no_activation=True,
    )
    print(f"Search space: {space.cardinality():,} candidate structures")
    evaluator = make_evaluator()

    # 1. Random search baseline.
    random_result = explore.random_search(space, evaluator, budget=8, seed=1)
    report(random_result, "Random search (8 proxy evaluations)")

    # 2. Evolutionary search, seeded with a QuadraNN-style structure
    #    (2 stages, the paper's reduced-depth insight, OURS neuron).
    seeds = [explore.ArchitectureGenome(stage_depths=(1, 1), stage_widths=(32, 64),
                                        neuron_type="OURS")]
    config = explore.EvolutionConfig(population_size=4, generations=2, elite_count=1)
    evolution_result = explore.evolutionary_search(space, evaluator, config, seed=2,
                                                   initial_population=seeds)
    report(evolution_result, "Evolutionary search (4 + 2x3 proxy evaluations, seeded)")

    best = evolution_result.best
    print(f"\nBest structure found: {best.genome.to_vgg_cfg()} with neuron "
          f"{best.genome.neuron_type} -> proxy accuracy {best.accuracy:.3f}, "
          f"{best.parameters:,} parameters")
    print("Evaluations are cached, so the evolutionary run reused "
          f"{evolution_result.evaluations_used - len(set(e.genome.key() for e in evolution_result.history))} "
          "repeat visits for free.")


if __name__ == "__main__":
    main()
