"""Unit tests for the offline precompute phase (``repro.ppml.offline``).

The invariant the serving fault tests lean on is established here in
isolation first: for every pool, ``produced == available + consumed`` at
all times, production never overshoots ``depth``, and consumption beyond
availability is a hard error rather than silent debt.
"""

from __future__ import annotations

import pytest

from repro.ppml import OfflineBudget, OfflinePhase, TriplePool, pool_key
from repro.ppml.trace import LayerTrace, ProtocolTrace

#: Deliberately tiny per-request budget so producer iterations are ~free.
TINY = OfflineBudget(triples=64, labels=8, truncations=64, rounds=3, macs=512)


def synthetic_trace() -> ProtocolTrace:
    return ProtocolTrace(frac_bits=12, layers=[
        LayerTrace(name="conv", layer_type="Conv2d", macs=400, mult_ops=48,
                   truncations=48, rounds=2),
        LayerTrace(name="act", layer_type="ReLU", relu_ops=8, rounds=1,
                   macs=112, mult_ops=16, truncations=16),
    ])


# --------------------------------------------------------------------------- #
# Keys and budgets
# --------------------------------------------------------------------------- #

def test_pool_key_format():
    assert pool_key("delphi", 12) == "delphi/f12"
    assert pool_key("gazelle", 8) == "gazelle/f8"


def test_budget_from_trace_uses_measured_totals():
    budget = OfflineBudget.from_trace(synthetic_trace())
    assert budget.triples == 64          # mult_ops -> Beaver triples
    assert budget.labels == 8            # relu_ops -> garbled comparisons
    assert budget.truncations == 64
    assert budget.rounds == 3
    assert budget.macs == 512
    assert budget.to_dict() == {"triples": 64, "labels": 8, "truncations": 64,
                                "rounds": 3, "macs": 512}


# --------------------------------------------------------------------------- #
# TriplePool
# --------------------------------------------------------------------------- #

def test_unsized_pool_reports_full_schema_without_producing():
    pool = TriplePool("delphi", 12)
    stats = pool.stats()
    assert set(stats) == {"depth", "available", "produced", "consumed",
                          "stalls", "refill_rps", "triples_per_request",
                          "labels_per_request", "producers",
                          "producer_respawns"}
    assert stats["available"] == 0 and stats["produced"] == 0
    pool.close()


def test_producer_fills_to_depth_and_stops():
    pool = TriplePool("delphi", 12)
    try:
        pool.size(TINY, depth=4)
        assert pool.wait_available(4, timeout=30.0)
        stats = pool.stats()
        assert stats["available"] == 4
        assert stats["produced"] == 4          # exactly depth: no overshoot
        assert stats["refill_rps"] > 0.0
        assert stats["triples_per_request"] == TINY.triples
        assert stats["labels_per_request"] == TINY.labels
    finally:
        pool.close()


def test_consume_debits_and_triggers_refill():
    pool = TriplePool("delphi", 12)
    try:
        pool.size(TINY, depth=3)
        assert pool.wait_available(3, timeout=30.0)
        pool.consume(2)
        assert pool.consumed == 2
        # the producer notices the deficit and refills back to depth
        assert pool.wait_available(3, timeout=30.0)
        with pool._cond:
            assert pool.produced == pool.available + pool.consumed
    finally:
        pool.close()


def test_over_consumption_is_an_error():
    pool = TriplePool("delphi", 12)
    try:
        pool.size(TINY, depth=1)
        assert pool.wait_available(1, timeout=30.0)
        with pytest.raises(RuntimeError, match="over-consumed"):
            pool.consume(pool.available + 1)
        with pytest.raises(ValueError):
            pool.consume(-1)
    finally:
        pool.close()


def test_estimated_wait_is_inf_before_first_production():
    pool = TriplePool("delphi", 12)
    assert pool.estimated_wait_s(1) == float("inf")
    pool.close()


def test_estimated_wait_zero_when_stocked_and_finite_after_producing():
    pool = TriplePool("delphi", 12)
    try:
        pool.size(TINY, depth=2)
        assert pool.wait_available(2, timeout=30.0)
        assert pool.estimated_wait_s(2) == 0.0
        wait = pool.estimated_wait_s(10)       # deficit of 8 at measured rate
        assert 0.0 < wait < float("inf")
    finally:
        pool.close()


def test_stall_counter_and_close_idempotent():
    pool = TriplePool("delphi", 12)
    pool.note_stall()
    pool.note_stall()
    assert pool.stats()["stalls"] == 2
    pool.close()
    pool.close()                               # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.size(TINY, depth=1)


def test_size_rejects_nonpositive_depth():
    pool = TriplePool("delphi", 12)
    with pytest.raises(ValueError, match="depth"):
        pool.size(TINY, depth=0)
    pool.close()


# --------------------------------------------------------------------------- #
# OfflinePhase
# --------------------------------------------------------------------------- #

def test_phase_unstarted_stats_schema():
    phase = OfflinePhase("delphi", 12, "nearest", depth=2)
    stats = phase.stats()
    assert set(stats) == {"pools", "budget", "measured"}
    assert set(stats["pools"]) == {"delphi/f12"}       # default pool pre-created
    assert stats["budget"] == {"triples": 0, "labels": 0, "truncations": 0,
                               "rounds": 0, "macs": 0}
    assert stats["measured"] == {"requests": 0, "macs": 0, "mult_ops": 0,
                                 "relu_ops": 0, "truncations": 0, "rounds": 0}
    phase.close()


def test_phase_sizes_every_pool_from_trace():
    phase = OfflinePhase("delphi", 12, "nearest", depth=2)
    try:
        budget = phase.size_from_trace(synthetic_trace())
        assert budget.triples == 64
        default = phase.pool_for(phase.default_key)
        assert default.wait_available(2, timeout=30.0)
        # a pool created *after* warm-up inherits the budget and starts too
        other = phase.pool_for(phase.key_for(protocol="gazelle"))
        assert other.budget == budget
        assert other.wait_available(2, timeout=30.0)
        assert set(phase.stats()["pools"]) == {"delphi/f12", "gazelle/f12"}
    finally:
        phase.close()


def test_phase_serving_path_accounting():
    phase = OfflinePhase("delphi", 12, "nearest", depth=2)
    try:
        phase.size_from_trace(synthetic_trace())
        key = phase.default_key
        assert phase.pool_for(key).wait_available(2, timeout=30.0)
        assert phase.available(key) == 2
        phase.consume(key, 1)
        phase.note_stall(key)
        stats = phase.stats()["pools"][key]
        assert stats["consumed"] == 1 and stats["stalls"] == 1
        assert phase.estimated_wait_ms(key, 1) == 0.0
        assert 0.0 < phase.estimated_wait_ms(key, 100) < float("inf")
    finally:
        phase.close()


def test_phase_record_served_folds_totals():
    phase = OfflinePhase("delphi", 12, "nearest", depth=1)
    totals = synthetic_trace().totals()
    phase.record_served([totals, totals])
    measured = phase.measured()
    assert measured["requests"] == 2
    assert measured["mult_ops"] == 2 * totals["mult_ops"]
    assert measured["macs"] == 2 * totals["macs"]
    assert measured["rounds"] == 2 * totals["rounds"]
    phase.close()


def test_phase_key_helpers():
    phase = OfflinePhase("delphi", 12, "nearest", depth=1)
    assert phase.default_key == "delphi/f12"
    assert phase.key_for() == "delphi/f12"
    assert phase.key_for(protocol="gazelle", frac_bits=8) == "gazelle/f8"
    phase.close()


# --------------------------------------------------------------------------- #
# Producer processes (producer_workers >= 1)
# --------------------------------------------------------------------------- #

def test_process_producers_fill_to_depth_without_overshoot():
    pool = TriplePool("delphi", 12, producer_workers=2)
    try:
        pool.size(TINY, depth=4)
        assert pool.wait_available(4, timeout=120.0)
        stats = pool.stats()
        assert stats["available"] == 4
        assert stats["produced"] == 4            # acknowledged orders only
        assert stats["producers"] == 2
        assert stats["produced"] == stats["available"] + stats["consumed"]
        assert len(pool.producer_pids()) == 2
    finally:
        pool.close()


def test_sigkill_producer_preserves_invariant_and_respawns():
    import os
    import signal
    import time

    pool = TriplePool("delphi", 12, producer_workers=1)
    try:
        pool.size(TINY, depth=2)
        assert pool.wait_available(2, timeout=120.0)
        victims = pool.producer_pids()
        assert victims
        os.kill(victims[0], signal.SIGKILL)
        # Drain the stock so the coordinator must route fresh orders through
        # a respawned producer.
        pool.consume(2)
        assert pool.wait_available(2, timeout=120.0)
        deadline = time.monotonic() + 60.0
        while (pool.stats()["producer_respawns"] < 1
               and time.monotonic() < deadline):
            time.sleep(0.05)
        stats = pool.stats()
        # The invariant holds by construction: orders that died with the
        # producer were never acknowledged, so they were never counted.
        assert stats["produced"] == stats["available"] + stats["consumed"]
        assert stats["producer_respawns"] >= 1
        survivors = pool.producer_pids()
        assert survivors and survivors[0] != victims[0]
    finally:
        pool.close()
