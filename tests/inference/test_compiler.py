"""Compiled inference path: exactness against the eager forward."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autodiff import inference_mode, is_grad_enabled, no_grad
from repro.autodiff.tensor import Tensor
from repro.experiment import ModelSpec
from repro.inference import BufferPool, CompiledModel, compile_model
from repro.quadratic.functional import FUSED_COMBINERS, REQUIRED_RESPONSES
from repro.quadratic.layers.qlinear import QuadraticLinear
from repro.utils import seed_everything

RNG = np.random.default_rng(7)


def eager(model, x: np.ndarray) -> np.ndarray:
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def assert_compiled_matches(model, x: np.ndarray, atol: float = 0.0,
                            rtol: float = 0.0) -> CompiledModel:
    expected = eager(model, x)
    compiled = compile_model(model)
    actual = compiled(x)
    assert actual.shape == expected.shape
    assert actual.dtype == expected.dtype
    if atol == 0.0 and rtol == 0.0:
        np.testing.assert_array_equal(actual, expected)
    else:
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol)
    return compiled


# --------------------------------------------------------------------------- #
# Layer-level exactness
# --------------------------------------------------------------------------- #

class TestLayerRules:
    def test_linear_chain_is_bit_exact(self):
        model = nn.Sequential(nn.Linear(12, 24), nn.ReLU(), nn.Linear(24, 5))
        x = RNG.standard_normal((4, 12)).astype(np.float32)
        compiled = assert_compiled_matches(model, x)
        assert compiled.num_steps == 3

    def test_conv_bn_pool_chain_is_bit_exact(self):
        model = nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1), nn.BatchNorm2d(8), nn.ReLU(),
            nn.MaxPool2d(2), nn.Conv2d(8, 4, 3, padding=1), nn.AvgPool2d(2),
            nn.Flatten(), nn.Linear(4 * 4 * 4, 3),
        )
        x = RNG.standard_normal((2, 3, 16, 16)).astype(np.float32)
        assert_compiled_matches(model, x)

    def test_batchnorm_uses_running_statistics(self):
        bn = nn.BatchNorm2d(4)
        bn.running_mean[...] = np.arange(4, dtype=np.float32)
        bn.running_var[...] = np.linspace(0.5, 2.0, 4, dtype=np.float32)
        model = nn.Sequential(bn)
        x = RNG.standard_normal((3, 4, 5, 5)).astype(np.float32)
        assert_compiled_matches(model, x)

    def test_batchnorm_without_running_stats_matches_eval_forward(self):
        model = nn.Sequential(nn.BatchNorm1d(6, track_running_stats=False))
        x = RNG.standard_normal((8, 6)).astype(np.float32)
        compiled = assert_compiled_matches(model, x)
        # ... and the compiler flags the batch dependence for the predictor.
        assert len(compiled.batch_dependent_modules) == 1

    def test_running_stats_batchnorm_is_not_flagged_batch_dependent(self):
        model = nn.Sequential(nn.BatchNorm1d(6))
        compiled = compile_model(model)
        assert not compiled.batch_dependent_modules

    def test_adaptive_avgpool_keeps_the_divisibility_guard(self):
        model = nn.Sequential(nn.AdaptiveAvgPool2d(output_size=3))
        x = RNG.standard_normal((1, 2, 32, 32)).astype(np.float32)
        compiled = compile_model(model)
        with pytest.raises(ValueError, match="divisible"):
            compiled(x)
        # Divisible sizes still match eager exactly.
        x_ok = RNG.standard_normal((1, 2, 12, 12)).astype(np.float32)
        assert_compiled_matches(nn.Sequential(nn.AdaptiveAvgPool2d(3)), x_ok)

    def test_overlapping_and_tiled_maxpool_agree_with_eager(self):
        for kwargs in ({"kernel_size": 2}, {"kernel_size": 3, "stride": 2},
                       {"kernel_size": 2, "padding": 0, "stride": 2}):
            model = nn.Sequential(nn.MaxPool2d(**kwargs))
            x = RNG.standard_normal((2, 3, 12, 12)).astype(np.float32)
            assert_compiled_matches(model, x)

    def test_activation_zoo_matches(self):
        model = nn.Sequential(nn.LeakyReLU(0.1), nn.Sigmoid(), nn.Tanh(),
                              nn.GELU(), nn.Softmax(axis=-1))
        x = RNG.standard_normal((5, 9)).astype(np.float32)
        assert_compiled_matches(model, x)

    def test_square_activation_with_linear_path(self):
        model = nn.Sequential(nn.Square(scale=0.5, linear=0.25))
        x = RNG.standard_normal((4, 7)).astype(np.float32)
        assert_compiled_matches(model, x)

    def test_dropout_and_identity_compile_away(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Identity(), nn.Linear(6, 2))
        compiled = compile_model(model)
        assert compiled.num_steps == 1  # only the Linear remains
        x = RNG.standard_normal((3, 6)).astype(np.float32)
        np.testing.assert_array_equal(compiled(x), eager(model, x))

    def test_grouped_convolution_keeps_eager_einsum(self):
        model = nn.Sequential(nn.Conv2d(4, 8, 3, padding=1, groups=2))
        x = RNG.standard_normal((2, 4, 8, 8)).astype(np.float32)
        assert_compiled_matches(model, x)


class TestQuadraticRules:
    @pytest.mark.parametrize("neuron_type", ["T2", "T3", "T4", "T2_4", "OURS"])
    def test_quadratic_conv_fused_kernels_are_bit_exact(self, neuron_type):
        seed_everything(0)
        from repro.quadratic.layers.qconv import QuadraticConv2d

        model = nn.Sequential(QuadraticConv2d(3, 6, 3, padding=1,
                                              neuron_type=neuron_type))
        x = RNG.standard_normal((2, 3, 10, 10)).astype(np.float32)
        assert_compiled_matches(model, x)

    def test_t4_identity_conv(self):
        from repro.quadratic.layers.qconv import QuadraticConv2d

        model = nn.Sequential(QuadraticConv2d(5, 5, 3, padding=1, neuron_type="T4_ID"))
        x = RNG.standard_normal((2, 5, 6, 6)).astype(np.float32)
        assert_compiled_matches(model, x)

    @pytest.mark.parametrize("neuron_type", ["T2", "T3", "T4", "T4_ID", "T2_4", "OURS"])
    def test_quadratic_linear_fused_kernels(self, neuron_type):
        seed_everything(0)
        in_features = 8
        model = nn.Sequential(QuadraticLinear(in_features, 8, neuron_type=neuron_type))
        x = RNG.standard_normal((4, in_features)).astype(np.float32)
        compiled = assert_compiled_matches(model, x)
        assert not compiled.fallback_modules

    def test_bilinear_types_fall_back_to_eager(self):
        model = nn.Sequential(QuadraticLinear(6, 3, neuron_type="T1"))
        x = RNG.standard_normal((2, 6)).astype(np.float32)
        compiled = assert_compiled_matches(model, x)
        assert len(compiled.fallback_modules) == 1

    def test_hybrid_layers_compile_through_the_same_fused_rule(self):
        from repro.quadratic.layers.hybrid import (
            HybridQuadraticConv2d,
            HybridQuadraticLinear,
        )

        model = nn.Sequential(HybridQuadraticConv2d(3, 4, 3, padding=1),
                              nn.Flatten(), HybridQuadraticLinear(4 * 64, 5))
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        compiled = assert_compiled_matches(model, x)
        assert not compiled.fallback_modules

    def test_every_composable_type_has_a_fused_combiner(self):
        assert set(FUSED_COMBINERS) == set(REQUIRED_RESPONSES)


# --------------------------------------------------------------------------- #
# Whole-model compilation
# --------------------------------------------------------------------------- #

class TestModelCompilation:
    @pytest.mark.parametrize("name,neuron_type", [
        ("vgg8", "OURS"), ("vgg8", "first_order"), ("lenet", "OURS"),
        ("small_convnet", "T4"), ("mobilenet_v1_quadra", "OURS"),
    ])
    def test_zoo_models_compile_without_fallbacks(self, name, neuron_type):
        seed_everything(0)
        model = ModelSpec(name=name, neuron_type=neuron_type, num_classes=4,
                          width_multiplier=0.25).build()
        x = (0.1 * RNG.standard_normal((2, 3, 32, 32))).astype(np.float32)
        compiled = assert_compiled_matches(model, x)
        assert not compiled.fallback_modules

    def test_resnet_residual_blocks(self):
        seed_everything(0)
        model = ModelSpec(name="resnet8", neuron_type="first_order", num_classes=4,
                          width_multiplier=0.25).build()
        x = (0.1 * RNG.standard_normal((2, 3, 16, 16))).astype(np.float32)
        # Residual reductions reduce in a different memory order than eager's
        # (non-contiguous) intermediate, so allow float32-level noise.
        compiled = assert_compiled_matches(model, x, atol=1e-5, rtol=1e-4)
        assert not compiled.fallback_modules

    def test_hooked_module_falls_back_so_hooks_still_fire(self):
        model = nn.Sequential(nn.Linear(4, 4), nn.ReLU())
        seen = []
        model[0].register_forward_hook(lambda module, inputs, out: seen.append(out.shape))
        compiled = compile_model(model)
        assert len(compiled.fallback_modules) == 1
        x = RNG.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_array_equal(compiled(x), eager(model, x))
        assert seen  # the hook observed the compiled run too

    def test_fallback_modules_run_with_eval_semantics(self):
        """A training-mode fallback must not fire dropout or touch BN stats."""

        class Opaque(nn.Module):
            def __init__(self):
                super().__init__()
                self.bn = nn.BatchNorm1d(4)
                self.dropout = nn.Dropout(0.9)

            def forward(self, x):
                # Non-pipeline forward so the compiler cannot lower it.
                return self.dropout(self.bn(x)) + 0.0 * x

        model = Opaque()
        model.train(True)
        compiled = compile_model(model)
        assert compiled.fallback_modules == [model]
        x = RNG.standard_normal((6, 4)).astype(np.float32)
        mean_before = model.bn.running_mean.copy()
        out = compiled(x)
        np.testing.assert_array_equal(model.bn.running_mean, mean_before)
        assert model.training  # restored afterwards
        np.testing.assert_array_equal(out, eager(model, x))  # dropout inactive

    def test_compiled_output_is_a_fresh_array_each_call(self):
        model = nn.Sequential(nn.Linear(4, 2), nn.ReLU())
        compiled = compile_model(model)
        x = RNG.standard_normal((1, 4)).astype(np.float32)
        first = compiled(x)
        snapshot = first.copy()
        compiled(RNG.standard_normal((1, 4)).astype(np.float32))
        np.testing.assert_array_equal(first, snapshot)

    def test_buffer_pool_is_reused_across_calls(self):
        seed_everything(0)
        model = ModelSpec(name="vgg8", neuron_type="OURS", num_classes=4,
                          width_multiplier=0.125).build()
        pool = BufferPool()
        compiled = compile_model(model, pool=pool)
        x = RNG.standard_normal((1, 3, 32, 32)).astype(np.float32)
        compiled(x)
        allocations_after_first = pool.allocations
        assert allocations_after_first > 0
        compiled(x)
        compiled(x)
        assert pool.allocations == allocations_after_first  # steady state
        assert pool.requests > allocations_after_first

    def test_warmup_preallocates_for_every_expected_batch_size(self):
        seed_everything(0)
        model = ModelSpec(name="lenet", neuron_type="OURS", num_classes=4).build()
        compiled = compile_model(model)
        compiled.warmup((3, 32, 32), batch_sizes=(1, 2, 4))
        allocations = compiled.pool.allocations
        for batch_size in (1, 2, 4, 2, 1):
            x = RNG.standard_normal((batch_size, 3, 32, 32)).astype(np.float32)
            compiled(x)
        assert compiled.pool.allocations == allocations  # no live-request allocs

    def test_varying_batch_sizes_share_one_compiled_model(self):
        seed_everything(0)
        model = ModelSpec(name="lenet", neuron_type="OURS", num_classes=4).build()
        compiled = compile_model(model)
        for batch_size in (1, 3, 1, 5):
            x = RNG.standard_normal((batch_size, 3, 32, 32)).astype(np.float32)
            np.testing.assert_array_equal(compiled(x), eager(model, x))

    def test_accepts_tensor_input(self):
        model = nn.Sequential(nn.Linear(4, 2))
        compiled = compile_model(model)
        x = RNG.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_array_equal(compiled(Tensor(x)), compiled(x))


# --------------------------------------------------------------------------- #
# Grad-mode plumbing
# --------------------------------------------------------------------------- #

class TestInferenceMode:
    def test_inference_mode_disables_recording(self):
        assert is_grad_enabled()
        with inference_mode():
            assert not is_grad_enabled()
            y = Tensor([1.0], requires_grad=True) * 2
            assert not y.requires_grad and y.is_leaf
        assert is_grad_enabled()

    def test_no_grad_fast_path_matches_recorded_forward(self):
        model = nn.Sequential(nn.Linear(6, 6), nn.ReLU(), nn.Linear(6, 2))
        x = RNG.standard_normal((3, 6)).astype(np.float32)
        recorded = model(Tensor(x)).data
        with no_grad():
            fast = model(Tensor(x)).data
        np.testing.assert_array_equal(fast, recorded)

    def test_fast_path_builds_no_graph(self):
        x = Tensor(RNG.standard_normal((2, 2)).astype(np.float32), requires_grad=True)
        with no_grad():
            out = (x * 2 + 1).relu()
        assert out._ctx is None and not out.requires_grad
