"""Table 2 — convergence of quadratic neuron designs on deep plain/residual nets.

The paper's Table 2 trains T2 / T3 / T4 / T4+Identity / Ours inside VGG-8,
VGG-16 and ResNet-32 on CIFAR-10 and reports train/test accuracy.  The
finding: the designs without a linear/identity path stop converging once the
plain network gets deep (VGG-16 collapses to 10% = chance), while the
identity and linear-term designs keep training; residual structures save all
designs.

This benchmark reproduces the same contrast at reduced scale — and it is
ported to the unified experiment API: every plain-VGG variant is a
genome-based :class:`~repro.experiment.ModelSpec`, the residual variant is
the registry model ``resnet8``, and training runs through the
:class:`~repro.experiment.Experiment` facade.  Only the T4+Identity plain
network (whose channel-changing layers need a mixed T4/T4_ID construction)
is built by hand and *injected* into the same facade.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, IMAGE_SIZE, MAX_BATCHES, NUM_CLASSES, WIDTH, classification_data, fresh_seed, save_experiment
from repro import nn
from repro.builder import QuadraticModelConfig
from repro.builder.constructors import conv_block
from repro.experiment import DataSpec, Experiment, ExperimentSpec, ModelSpec, TrainSpec
from repro.utils import print_table

DESIGNS = ["T2", "T3", "T4", "T4_ID", "OURS"]

# Scaled structures standing in for VGG-8 / VGG-16 / ResNet-32, expressed as
# architecture genomes (per-stage conv counts and widths).
SHALLOW_GENOME = {"stage_depths": [1, 1], "stage_widths": [16, 32]}                 # "VGG-8"
DEEP_GENOME = {"stage_depths": [2, 3, 3], "stage_widths": [16, 32, 32]}            # "VGG-16"

EPOCHS = 4
CHANCE = 1.0 / NUM_CLASSES


def _spec(model: ModelSpec, seed_offset: int) -> ExperimentSpec:
    """Table 2's training budget: every batch of the synthetic set, 4 epochs."""
    return ExperimentSpec(
        seed=1234 + seed_offset,  # fresh_seed()-compatible model-init seeding
        model=model,
        data=DataSpec(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE),
        train=TrainSpec(epochs=EPOCHS, batch_size=BATCH_SIZE, lr=0.05,
                        max_batches_per_epoch=None, seed=3),
        steps=["build", "fit"],
    )


def _plain_spec(genome: dict, design: str, seed_offset: int) -> ExperimentSpec:
    model = ModelSpec(genome={**genome, "neuron_type": design},
                      num_classes=NUM_CLASSES, width_multiplier=WIDTH)
    return _spec(model, seed_offset)


def _resnet_spec(design: str, seed_offset: int) -> ExperimentSpec:
    if design == "T4_ID":
        # Residual blocks change channel counts; fall back to T4 inside blocks,
        # the residual connection itself provides the identity path (as in the paper).
        design = "T4"
    model = ModelSpec(name="resnet8", neuron_type=design, num_classes=NUM_CLASSES,
                      width_multiplier=WIDTH)
    return _spec(model, seed_offset)


def _build_t4_id_plain(genome: dict):
    """T4+Identity needs matching input/output channels, so channel-changing
    layers (the stem and stage transitions) use plain T4 while every
    same-width layer adds the identity mapping — the closest faithful
    rendering of the Table 2 baseline inside a VGG-style config."""
    id_config = QuadraticModelConfig(neuron_type="T4_ID", width_multiplier=WIDTH)
    t4_config = QuadraticModelConfig(neuron_type="T4", width_multiplier=WIDTH)
    layers = []
    channels = 3
    for depth, width in zip(genome["stage_depths"], genome["stage_widths"]):
        for _ in range(depth):
            scaled = id_config.scaled(int(width))
            config = id_config if scaled == channels else t4_config
            layers.extend(conv_block(config, channels, scaled))
            channels = scaled
        layers.append(nn.MaxPool2d(2))
    features = nn.Sequential(*layers)
    head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Linear(channels, NUM_CLASSES))
    return nn.Sequential(features, head)


def test_table2_convergence_of_neuron_designs(benchmark):
    fresh_seed(2)
    datasets = classification_data()
    train_set, _ = datasets

    results = {}
    rows = []
    for design_index, design in enumerate(DESIGNS):
        row = [design]
        entry = {}
        structures = (
            ("VGG-8 (shallow plain)", SHALLOW_GENOME),
            ("VGG-16 (deep plain)", DEEP_GENOME),
            ("ResNet-32 (residual)", None),
        )
        for structure_index, (structure, genome) in enumerate(structures):
            seed_offset = 100 * design_index + structure_index
            if genome is None:
                experiment = Experiment(_resnet_spec(design, seed_offset), datasets=datasets)
            elif design == "T4_ID":
                fresh_seed(seed_offset)
                model = _build_t4_id_plain(genome)
                experiment = Experiment(_plain_spec(genome, "T4", seed_offset),
                                        model=model, datasets=datasets)
            else:
                experiment = Experiment(_plain_spec(genome, design, seed_offset),
                                        datasets=datasets)
            history = experiment.fit()
            train_acc = history.final_train_accuracy
            test_acc = history.final_test_accuracy
            row.extend([round(train_acc, 3), round(test_acc, 3)])
            entry[structure] = {"train": train_acc, "test": test_acc}
        rows.append(row)
        results[design] = entry

    print()
    print_table(
        ["Design", "VGG8 train", "VGG8 test", "VGG16 train", "VGG16 test",
         "ResNet32 train", "ResNet32 test"],
        rows,
        title="Table 2 (reproduced, scaled): convergence of quadratic neuron designs",
    )
    save_experiment("table2_convergence", results)

    deep = "VGG-16 (deep plain)"
    # Our design must train the deep plain network above chance (at the paper's
    # scale the pure second-order designs collapse to exact chance here; at the
    # reduced CPU budget the contrast is narrower, so the margin is small)...
    assert results["OURS"][deep]["train"] > CHANCE
    # ...and must not collapse below the pure second-order designs on it.
    best_pure = max(results[d][deep]["train"] for d in ("T2", "T3", "T4"))
    assert results["OURS"][deep]["train"] >= best_pure - 0.15
    # Every design trains the shallow plain network above chance (paper row 1).
    for design in DESIGNS:
        assert results[design]["VGG-8 (shallow plain)"]["train"] > CHANCE + 0.05

    # Timed kernel: one training step of the deep plain QDNN with our neuron.
    model = Experiment(_plain_spec(DEEP_GENOME, "OURS", 0)).build()
    from repro.autodiff import Tensor
    from repro.nn.losses import CrossEntropyLoss

    images = np.stack([train_set[i][0] for i in range(8)])
    labels = np.array([train_set[i][1] for i in range(8)])
    loss_fn = CrossEntropyLoss()

    def step():
        model.zero_grad()
        loss = loss_fn(model(Tensor(images)), labels)
        loss.backward()
        return loss.item()

    benchmark(step)
