"""Quadratic convolution layers.

``QuadraticConv2d`` supports every non-full-rank neuron type from Table 1 by
composing standard grouped convolutions with Hadamard products — the paper's
implementation-feasibility recipe (P4).  ``QuadraticConv2dT1`` implements the
full-rank bilinear convolution (Cheung & Leung / Mantini & Shah style) whose
parameter count grows with the *square* of the patch size; it exists so the
memory-explosion numbers of P2 and Fig. 5 can be measured rather than assumed.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ...autodiff.tensor import cat as _cat, einsum as _einsum
from ...autodiff.ops.conv import conv_output_size, im2col
from ...autodiff.tensor import Tensor
from ...nn import functional as F
from ...nn import init
from ...nn.parameter import Parameter
from .base import QuadraticLayerBase

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class QuadraticConv2d(QuadraticLayerBase):
    """Quadratic convolution over NCHW tensors for composable neuron types.

    The supported types are T2, T3, T4, T4_ID, T2_4 (Fan et al.) and OURS —
    i.e. every design that decomposes into first-order convolutions plus
    element-wise operations.  Use :class:`QuadraticConv2dT1` for the
    full-rank T1 family.

    Parameters
    ----------
    in_channels, out_channels, kernel_size, stride, padding, groups :
        As in :class:`repro.nn.Conv2d`.
    neuron_type : str
        Canonical name or alias of the quadratic design.
    bias : bool
        Learn an additive per-channel bias applied after combination.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair = 3,
                 stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
                 neuron_type: str = "OURS", bias: bool = True) -> None:
        super().__init__(neuron_type)
        if "bilinear" in self.required:
            raise ValueError(
                f"neuron type {self.neuron_type} needs a full-rank bilinear term; "
                "use QuadraticConv2dT1 instead"
            )
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) must be divisible by groups ({groups})"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = int(groups)
        kh, kw = self.kernel_size
        wshape = (out_channels, in_channels // groups, kh, kw)

        if "a" in self.required:
            self.weight_a = Parameter(init.kaiming_normal(wshape))
        if "b" in self.required:
            self.weight_b = Parameter(init.kaiming_normal(wshape))
        if "c" in self.required:
            self.weight_c = Parameter(init.kaiming_normal(wshape, gain=1.0))
        if "sq" in self.required:
            self.weight_sq = Parameter(init.kaiming_normal(wshape))
        if "id" in self.required:
            if in_channels != out_channels or self.stride != (1, 1):
                raise ValueError(
                    "T4_ID requires matching channels and stride 1 so the raw input "
                    "can be added; use neuron_type='OURS' otherwise"
                )
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def _conv(self, x: Tensor, weight: Parameter) -> Tensor:
        return F.conv2d(x, weight, None, stride=self.stride, padding=self.padding,
                        groups=self.groups)

    def project(self, x: Tensor, kind: str) -> Tensor:
        if kind == "a":
            return self._conv(x, self.weight_a)
        if kind == "b":
            return self._conv(x, self.weight_b)
        if kind == "c":
            return self._conv(x, self.weight_c)
        if kind == "sq":
            return self._conv(x * x, self.weight_sq)
        if kind == "id":
            return x
        raise KeyError(f"unknown projection kind '{kind}'")

    def post_combine(self, out: Tensor) -> Tensor:
        if self.bias is not None:
            out = out + self.bias.reshape((1, self.out_channels, 1, 1))
        return out

    def output_shape(self, input_hw: Tuple[int, int]) -> Tuple[int, int]:
        """Spatial output size for a given input size (used by the profiler)."""
        h, w = input_hw
        kh, kw = self.kernel_size
        return (
            conv_output_size(h, kh, self.stride[0], self.padding[0]),
            conv_output_size(w, kw, self.stride[1], self.padding[1]),
        )

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}, type={self.neuron_type}, "
                f"bias={self.bias is not None}")


class QuadraticConv2dT1(QuadraticLayerBase):
    """Full-rank bilinear convolution: each output filter applies ``pᵀ W p`` to
    every im2col patch ``p`` of size ``C·kh·kw``.

    The weight tensor has shape ``(F, K, K)`` with ``K = C·kh·kw``, i.e. the
    parameter count is quadratic in the patch size — the O(n²) column of
    Table 1 and the reason Mantini & Shah's ResNet balloons from 0.2 M to
    128 M parameters (paper P2).  The optional ``linear_term`` adds ``Wb X``
    (Cheung & Leung's original formulation).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair = 3,
                 stride: IntOrPair = 1, padding: IntOrPair = 0,
                 neuron_type: str = "T1_PURE", bias: bool = True) -> None:
        super().__init__(neuron_type)
        if "bilinear" not in self.required:
            raise ValueError(
                f"{self.neuron_type} is not a full-rank design; use QuadraticConv2d"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        kh, kw = self.kernel_size
        patch = in_channels * kh * kw
        self.patch_size = patch
        self.weight_bilinear = Parameter(
            init.kaiming_normal((out_channels, patch, patch), gain=1.0 / max(patch, 1) ** 0.5)
        )
        if "b" in self.required:
            self.weight_b = Parameter(init.kaiming_normal((out_channels, in_channels, kh, kw)))
        if "sq" in self.required:
            self.weight_sq = Parameter(init.kaiming_normal((out_channels, in_channels, kh, kw)))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def project(self, x: Tensor, kind: str) -> Tensor:
        if kind == "bilinear":
            return self._bilinear(x)
        if kind == "b":
            return F.conv2d(x, self.weight_b, None, stride=self.stride, padding=self.padding)
        if kind == "sq":
            return F.conv2d(x * x, self.weight_sq, None, stride=self.stride, padding=self.padding)
        raise KeyError(f"unknown projection kind '{kind}'")

    def _bilinear(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        oh = conv_output_size(h, kh, self.stride[0], self.padding[0])
        ow = conv_output_size(w, kw, self.stride[1], self.padding[1])
        # Patches as a differentiable unfold: (N, C*kh*kw, OH*OW).  The unfold
        # is assembled from GetItem slices so gradients flow back into x.
        padded = x.pad2d((self.padding[1], self.padding[1], self.padding[0], self.padding[0]))
        patches = []
        for i in range(kh):
            for j in range(kw):
                sl = padded[:, :, i:i + self.stride[0] * oh:self.stride[0],
                            j:j + self.stride[1] * ow:self.stride[1]]
                patches.append(sl.reshape(n, c, oh * ow))
        cols = _cat(patches, axis=1)                       # (N, K, L) with K = C*kh*kw
        # pᵀ W p for every filter: two einsum contractions.
        partial = _einsum("fkq,nql->nfkl", self.weight_bilinear, cols)   # (N, F, K, L)
        out = (partial * cols.unsqueeze(1)).sum(axis=2)                    # (N, F, L)
        return out.reshape(n, self.out_channels, oh, ow)

    def post_combine(self, out: Tensor) -> Tensor:
        if self.bias is not None:
            out = out + self.bias.reshape((1, self.out_channels, 1, 1))
        return out

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"patch={self.patch_size}, type={self.neuron_type}")
