"""Percentile math, reservoirs, stage metrics — and the docs drift gate."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.serve import ReservoirSample, ServeConfig, StageMetrics, WorkerPool, percentile
from repro.serve.metrics import (
    PERCENTILES,
    STAGES,
    EndpointMetrics,
    ServingMetrics,
    split_batch_timings,
)

DOCS = Path(__file__).resolve().parents[2] / "docs" / "serving.md"


class TestPercentile:
    def test_nearest_rank_returns_an_observed_value(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 50) == 30.0
        assert percentile(values, 95) == 50.0
        assert percentile(values, 99) == 50.0
        assert percentile(values, 1) == 10.0

    def test_p99_of_100_values_is_rank_99_not_the_max(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_input_order_does_not_matter(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_empty_is_zero_and_invalid_q_raises(self):
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestReservoirSample:
    def test_below_capacity_keeps_everything(self):
        reservoir = ReservoirSample(capacity=100)
        for value in range(50):
            reservoir.add(float(value))
        assert sorted(reservoir.values()) == [float(v) for v in range(50)]
        assert reservoir.count == 50

    def test_capacity_bounds_memory_but_count_tracks_the_stream(self):
        reservoir = ReservoirSample(capacity=32)
        for value in range(10_000):
            reservoir.add(float(value))
        assert len(reservoir) == 32
        assert reservoir.count == 10_000
        assert reservoir.max_value == 9999.0

    def test_seeded_sampling_is_deterministic(self):
        def fill(seed):
            reservoir = ReservoirSample(capacity=16, seed=seed)
            for value in range(1000):
                reservoir.add(float(value))
            return reservoir.values()
        assert fill(17) == fill(17)
        assert fill(17) != fill(18)

    def test_summary_shape_and_percentile_keys(self):
        reservoir = ReservoirSample(capacity=64)
        for value in [1.0, 2.0, 3.0, 4.0]:
            reservoir.add(value)
        summary = reservoir.summary()
        assert summary["count"] == 4
        assert summary["mean_ms"] == 2.5
        assert summary["max_ms"] == 4.0
        for q in PERCENTILES:
            assert f"p{q:g}_ms" in summary

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            ReservoirSample(capacity=0)


class TestStageMetrics:
    def test_records_land_in_their_stage(self):
        stages = StageMetrics()
        stages.record(queue_ms=1.0, transport_ms=2.0, compute_ms=3.0, total_ms=6.0)
        stages.record(queue_ms=2.0, transport_ms=3.0, compute_ms=4.0, total_ms=9.0)
        snapshot = stages.to_dict()
        assert tuple(snapshot) == STAGES
        assert snapshot["queue"]["count"] == 2
        assert snapshot["compute"]["mean_ms"] == 3.5
        assert snapshot["total"]["max_ms"] == 9.0


class TestEndpointMetrics:
    def test_status_classes_are_counted_separately(self):
        endpoint = EndpointMetrics("/predict")
        endpoint.record(5.0, 200)
        endpoint.record(5.0, 400)
        endpoint.record(5.0, 429, shed=True)
        endpoint.record(5.0, 500)
        endpoint.record(5.0, 503, shed=True)
        snapshot = endpoint.to_dict()
        assert snapshot["requests"] == 5
        assert snapshot["errors_4xx"] == 2       # 400 + 429
        assert snapshot["failures_5xx"] == 2     # 500 + 503
        assert snapshot["shed"] == 2             # only the backpressure pair


class TestSplitBatchTimings:
    def test_exact_mode_passes_per_request_times_through(self):
        assert split_batch_timings([1.0, 2.0, 3.0], 3) == [1.0, 2.0, 3.0]

    def test_fused_mode_shares_the_batch_time_evenly(self):
        assert split_batch_timings([9.0], 3) == [3.0, 3.0, 3.0]

    def test_missing_timings_degrade_to_zero(self):
        assert split_batch_timings(None, 2) == [0.0, 0.0]
        assert split_batch_timings([], 2) == [0.0, 0.0]


class TestServingMetrics:
    def test_throughput_counts_only_predict(self):
        metrics = ServingMetrics()
        metrics.endpoint("/predict").record(1.0, 200)
        metrics.endpoint("/healthz").record(0.1, 200)
        snapshot = metrics.to_dict()
        assert snapshot["endpoints"]["/predict"]["requests"] == 1
        assert snapshot["uptime_seconds"] >= 0
        assert snapshot["throughput_rps"] >= 0


# --------------------------------------------------------------------------- #
# Drift gate: every field GET /stats serves must be documented
# --------------------------------------------------------------------------- #

def stats_field_names(smoke) -> set:
    """Every key a live ``GET /stats`` response can contain."""
    pool = WorkerPool(smoke.spec, config=ServeConfig(workers=1))
    pool_stats = pool.stats()                     # an unstarted pool still
    names = set(pool_stats)                       # reports its full schema
    names |= set(pool_stats["transport"])
    names |= set(pool_stats["pipeline"])
    names |= set(pool_stats["admission"])
    names |= set(pool_stats["latency"])
    names |= set(pool_stats["latency"]["queue"])

    endpoint = EndpointMetrics("/predict")
    endpoint.record(1.0, 200)
    names |= set(endpoint.to_dict())

    serving = ServingMetrics()
    serving.endpoint("/predict").record(1.0, 200)
    names |= set(serving.to_dict())

    # The secure subtree: an unstarted secure pool reports the full schema
    # too (its default triple pool exists before the warm-up sizes it).
    secure_pool = WorkerPool(smoke.spec,
                             config=ServeConfig(workers=1, secure=True))
    secure = secure_pool.stats()["secure"]
    names |= set(secure)
    names |= set(secure["offline"])
    names |= set(secure["offline"]["budget"])
    names |= set(secure["offline"]["measured"])
    for key, pool_counters in secure["offline"]["pools"].items():
        names.add(key)                            # the 'delphi/f12'-style key
        names |= set(pool_counters)
    return names


class TestDocsDoNotDrift:
    def test_every_stats_field_is_documented_in_serving_md(self, smoke):
        assert DOCS.exists(), "docs/serving.md is missing"
        documented = set(re.findall(r"`([^`\n]+)`", DOCS.read_text()))
        missing = sorted(name for name in stats_field_names(smoke)
                         if name not in documented)
        assert not missing, (
            "GET /stats serves fields that docs/serving.md never mentions "
            f"in backticks: {missing} — update the field reference section")
