"""The compute-backend subsystem: registry, bit-identity and quantization.

The acceptance bar from the issue, verified here zoo-wide:

* **numpy vs threaded is bit-identical on every registered model.**  The
  threaded engine's probe dispatch promises "worst case is no speedup,
  never different bits", and that promise must hold at *any* thread count —
  so the sweep forces a multi-threaded pool even on a single-core CI box.
* **int8 is approximate but useful**: its top-1 predictions agree with the
  exact engine on a trained smoke model, and its quantizer is the same
  arithmetic as ``ppml.fixedpoint.encode`` plus int8 saturation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.backends import (
    BACKENDS,
    Backend,
    Int8Backend,
    INT8_MAX,
    NumpyBackend,
    ThreadedBackend,
    backend_description,
    backend_names,
    get_backend,
    register_backend,
)
from repro.experiment import MODELS, ModelSpec
from repro.inference import compile_model
from repro.ppml.fixedpoint import MAX_FRAC_BITS, encode
from repro.utils.seed import seed_everything

#: probe input shape per zoo model (the MLP takes 16-dim vectors).
_INPUT_SHAPES = {"mlp": (16,)}
DEFAULT_SHAPE = (3, 32, 32)


def zoo_model(name: str, neuron_type: str = "OURS"):
    seed_everything(0)
    spec = ModelSpec(name=name, neuron_type=neuron_type, num_classes=4,
                     width_multiplier=0.125)
    model = spec.build()
    model.eval()
    return model, _INPUT_SHAPES.get(name, DEFAULT_SHAPE)


def probe_input(shape, batch: int = 4) -> np.ndarray:
    # 0.1-scaled: untrained quadratic stacks overflow float32 on unit-scale
    # inputs, and NaN != NaN would vacuously break the equality sweeps.
    rng = np.random.default_rng(0)
    return (0.1 * rng.standard_normal((batch,) + shape)).astype(np.float32)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

class TestRegistry:
    def test_all_three_engines_are_registered(self):
        assert backend_names() == ("numpy", "threaded", "int8")
        assert BACKENDS["numpy"] is NumpyBackend
        assert BACKENDS["threaded"] is ThreadedBackend
        assert BACKENDS["int8"] is Int8Backend

    def test_exactness_flags(self):
        assert NumpyBackend.exact and ThreadedBackend.exact
        assert not Int8Backend.exact

    def test_every_backend_has_a_description(self):
        for name in backend_names():
            assert backend_description(name), f"backend '{name}' lacks a docstring"

    def test_get_backend_default_is_the_reference_engine(self):
        assert isinstance(get_backend(None), NumpyBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_get_backend_is_case_insensitive(self):
        assert isinstance(get_backend("  Threaded "), ThreadedBackend)

    def test_get_backend_passes_instances_through(self):
        engine = ThreadedBackend(num_threads=3)
        assert get_backend(engine) is engine

    def test_get_backend_returns_fresh_instances(self):
        # Instances may cache per-weight state, so sharing would leak.
        assert get_backend("int8") is not get_backend("int8")

    def test_unknown_backend_error_names_every_engine(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("cuda")
        message = str(excinfo.value)
        assert "cuda" in message
        for name in backend_names():
            assert name in message

    def test_register_backend_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend(type("Bad", (Backend,), {"name": "LOUD"}))
        with pytest.raises(ValueError):
            register_backend(type("Bad", (Backend,), {"name": ""}))
        assert "LOUD" not in BACKENDS and "" not in BACKENDS

    def test_partial_backends_inherit_reference_numerics(self):
        # A subclass that overrides nothing is the reference engine.
        class DoNothing(Backend):
            name = "donothing"

        model = nn.Sequential(nn.Linear(8, 8), nn.ReLU(), nn.Linear(8, 3))
        x = probe_input((8,))
        np.testing.assert_array_equal(
            compile_model(model, backend=DoNothing())(x),
            compile_model(model)(x))


# --------------------------------------------------------------------------- #
# The zoo property: numpy == threaded, bit for bit, on every model
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", MODELS.names())
def test_threaded_matches_numpy_bit_for_bit_on_every_zoo_model(name):
    model, shape = zoo_model(name)
    x = probe_input(shape)
    reference = compile_model(model, backend="numpy")(x)
    # Force a real thread pool even on a 1-core runner: exactness must not
    # depend on the split count the box happens to pick.
    threaded = compile_model(model, backend=ThreadedBackend(num_threads=4))(x)
    assert np.isfinite(reference).all(), f"{name} overflowed — weak probe input"
    np.testing.assert_array_equal(threaded, reference)


@pytest.mark.parametrize("name", MODELS.names())
def test_optimizer_levels_do_not_change_the_bits(name):
    model, shape = zoo_model(name)
    x = probe_input(shape)
    raw = compile_model(model, optimize="none")(x)
    optimized = compile_model(model, optimize="default")(x)
    np.testing.assert_array_equal(optimized, raw)


def test_full_optimization_stays_within_float_tolerance():
    # BN-into-conv refactors the arithmetic, so "full" promises allclose,
    # not bit-equality.
    model, shape = zoo_model("resnet8")
    x = probe_input(shape)
    raw = compile_model(model, optimize="none")(x)
    full = compile_model(model, optimize="full")(x)
    np.testing.assert_allclose(full, raw, atol=1e-5, rtol=1e-5)


def test_threaded_matches_even_at_one_thread_and_odd_batches():
    model, shape = zoo_model("small_convnet")
    for threads, batch in ((1, 1), (2, 3), (8, 5)):
        x = probe_input(shape, batch=batch)
        np.testing.assert_array_equal(
            compile_model(model, backend=ThreadedBackend(num_threads=threads))(x),
            compile_model(model)(x))


# --------------------------------------------------------------------------- #
# int8: approximate, but quantified
# --------------------------------------------------------------------------- #

class TestInt8:
    def test_quantize_is_fixedpoint_encode_with_saturation(self):
        rng = np.random.default_rng(3)
        for scale in (0.01, 1.0, 37.5):
            x = (scale * rng.standard_normal(257)).astype(np.float32)
            q, bits = Int8Backend.quantize(x)
            assert -MAX_FRAC_BITS <= bits <= MAX_FRAC_BITS
            expected = np.clip(encode(x, bits) if bits >= 0
                               else np.rint(x.astype(np.float64) * 2.0 ** bits),
                               -INT8_MAX, INT8_MAX)
            np.testing.assert_array_equal(q.astype(np.int64), expected.astype(np.int64))
            assert q.dtype == np.float32
            assert float(np.abs(q).max()) <= INT8_MAX

    def test_quantize_handles_degenerate_tensors(self):
        q, bits = Int8Backend.quantize(np.zeros(5, dtype=np.float32))
        assert bits == 0 and not q.any()
        q, bits = Int8Backend.quantize(np.zeros((0,), dtype=np.float32))
        assert bits == 0 and q.size == 0

    def test_weights_are_quantized_once_and_cached_by_identity(self):
        engine = Int8Backend()
        w = np.random.default_rng(0).standard_normal((4, 4)).astype(np.float32)
        first = engine._weight(w)
        assert engine._weight(w)[0] is first[0]
        assert engine._weight(w.copy())[0] is not first[0]

    def test_int8_gemm_is_close_on_tame_inputs(self):
        engine = Int8Backend()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        w = rng.standard_normal((16, 4)).astype(np.float32)
        out = np.empty((8, 4), dtype=np.float32)
        engine.gemm(x, w, out=out)
        np.testing.assert_allclose(out, x @ w, atol=0.5)
        assert not np.array_equal(out, x @ w)  # it really did quantize

    def test_int8_top1_agrees_with_exact_on_a_trained_smoke_model(self):
        from repro.experiment import Experiment, get_preset

        experiment = Experiment(get_preset("smoke"))
        experiment.fit()
        _, test_set = experiment.datasets()
        x = np.stack([np.asarray(test_set[i][0], dtype=np.float32)
                      for i in range(min(32, len(test_set)))])
        exact = compile_model(experiment.model, backend="numpy")(x)
        quant = compile_model(experiment.model, backend="int8")(x)
        agreement = float(np.mean(exact.argmax(axis=-1) == quant.argmax(axis=-1)))
        assert agreement >= 0.75, f"int8 top-1 agreement {agreement:.2f}"


# --------------------------------------------------------------------------- #
# Wiring: compile_model / predictor surfaces
# --------------------------------------------------------------------------- #

class TestWiring:
    def test_compiled_model_reports_its_backend(self):
        model = nn.Sequential(nn.Linear(4, 4))
        compiled = compile_model(model, backend="threaded")
        assert compiled.backend_name == "threaded"
        assert "threaded" in repr(compiled)
        assert compile_model(model).backend_name == "numpy"

    def test_ppml_mode_rejects_backend_selection(self):
        model = nn.Sequential(nn.Linear(4, 4))
        with pytest.raises(ValueError, match="mode='float'"):
            compile_model(model, mode="ppml", backend="threaded")
        with pytest.raises(ValueError, match="mode='float'"):
            compile_model(model, mode="ppml", optimize="full")

    def test_backend_matches_eager_forward(self):
        model, shape = zoo_model("lenet")
        x = probe_input(shape)
        with no_grad():
            expected = model(Tensor(x)).data
        actual = compile_model(model, backend=ThreadedBackend(num_threads=4))(x)
        np.testing.assert_allclose(actual, expected, atol=1e-6, rtol=1e-6)

    def test_predictor_accepts_a_backend(self):
        from repro.inference import BatchedPredictor

        model, shape = zoo_model("small_convnet")
        x = probe_input(shape, batch=2)
        predictor = BatchedPredictor(model, max_batch_size=4, backend="threaded")
        try:
            out = predictor.predict(x[0])
        finally:
            predictor.shutdown()
        np.testing.assert_array_equal(out, compile_model(model)(x[:1])[0])
