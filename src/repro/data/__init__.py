"""``repro.data`` — datasets, loaders, transforms and synthetic workloads."""

from . import synthetic, transforms
from .dataloader import DataLoader, default_collate
from .dataset import ConcatDataset, Dataset, Subset, TensorDataset, random_split

__all__ = [
    "Dataset",
    "TensorDataset",
    "Subset",
    "ConcatDataset",
    "random_split",
    "DataLoader",
    "default_collate",
    "transforms",
    "synthetic",
]
