"""Table 5 — GAN image generation: SNGAN vs. the quadratic generator (IS / FID).

The paper converts every convolution in the SNGAN generator to its quadratic
layer and reports Inception Score (higher is better) and FID (lower is
better) on CIFAR-10, finding the quadratic generator slightly ahead of both
SNGAN and PolyNet.  The scaled reproduction trains both generators briefly on
the synthetic multi-modal image distribution and scores them with the proxy
feature network; the structural check is that both metrics are well-behaved
(real data scores better than an untrained generator) and that the results
table is produced.  With the very short schedule the quadratic-vs-first-order
gap is within noise, so the ordering itself is *reported* rather than
asserted.
"""

import numpy as np
import pytest

from common import fresh_seed, save_experiment
from repro.data.synthetic import SyntheticGenerationDataset
from repro.metrics import ProxyInception, evaluate_generator
from repro.models import sngan_pair
from repro.training import generate_images, train_sngan
from repro.utils import print_table

IMAGE = 16
LATENT = 16
BASE_CHANNELS = 8
STEPS = 30
BATCH = 16
EVAL_IMAGES = 96


def test_table5_gan_generation(benchmark):
    fresh_seed(50)
    dataset = SyntheticGenerationDataset(num_samples=256, image_size=IMAGE, num_modes=6, seed=5)
    proxy = ProxyInception(dataset, epochs=3, batch_size=32, seed=5)
    rng = np.random.default_rng(5)
    real_reference = dataset.sample(EVAL_IMAGES, rng=rng)

    rows, results = [], {}

    # Upper-bound reference row: real samples scored against real samples.
    real_scores = evaluate_generator(proxy, dataset.sample(EVAL_IMAGES, rng=rng),
                                     real=real_reference)
    rows.append(["Real data (reference)", round(real_scores.inception_score, 3),
                 round(real_scores.inception_score_std, 3), round(real_scores.fid, 3)])
    results["real_reference"] = real_scores.__dict__

    for index, (name, neuron_type) in enumerate([("SNGAN (first-order)", "first_order"),
                                                 ("QuadraNN (quadratic generator)", "OURS")]):
        fresh_seed(51 + index)
        generator, discriminator = sngan_pair(latent_dim=LATENT, base_channels=BASE_CHANNELS,
                                              image_size=IMAGE, neuron_type=neuron_type)
        untrained = generate_images(generator, EVAL_IMAGES, seed=3)
        untrained_scores = evaluate_generator(proxy, untrained, real=real_reference)

        train_sngan(generator, discriminator, dataset, steps=STEPS, batch_size=BATCH, seed=13)
        trained = generate_images(generator, EVAL_IMAGES, seed=3)
        trained_scores = evaluate_generator(proxy, trained, real=real_reference)

        rows.append([name, round(trained_scores.inception_score, 3),
                     round(trained_scores.inception_score_std, 3),
                     round(trained_scores.fid, 3)])
        results[name] = {
            "untrained_fid": untrained_scores.fid,
            "trained_fid": trained_scores.fid,
            "trained_is": trained_scores.inception_score,
            "trained_is_std": trained_scores.inception_score_std,
        }

    print()
    print_table(["Model", "IS (↑)", "IS std", "FID (↓)"], rows,
                title="Table 5 (reproduced, scaled): image generation with proxy IS/FID")
    save_experiment("table5_gan", results)

    # Metric sanity: real data achieves the best FID of everything scored.
    assert results["real_reference"]["fid"] < results["SNGAN (first-order)"]["trained_fid"]
    assert results["real_reference"]["fid"] < results["QuadraNN (quadratic generator)"]["trained_fid"]
    # Both generators produce finite scores after training.
    for key in ("SNGAN (first-order)", "QuadraNN (quadratic generator)"):
        assert np.isfinite(results[key]["trained_fid"])
        assert results[key]["trained_is"] >= 1.0

    # Timed kernel: one generator forward pass.
    generator, _ = sngan_pair(latent_dim=LATENT, base_channels=BASE_CHANNELS,
                              image_size=IMAGE, neuron_type="OURS")
    from repro.autodiff import Tensor, no_grad

    z = Tensor(generator.sample_latent(8, rng=np.random.default_rng(0)))

    def sample():
        with no_grad():
            return generator(z).shape

    benchmark(sample)
