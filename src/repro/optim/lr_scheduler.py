"""Learning-rate schedulers.

The paper's classification recipe uses ``CosineAnnealing`` with an initial
learning rate of 0.1 (Sec. 5.2); the SSD detector uses a two-milestone step
decay (Sec. 5.4).  Both are provided, plus step/lambda/warmup schedules for
design exploration.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from .optimizer import Optimizer


class LRScheduler:
    """Base class: call :meth:`step` once per epoch (or iteration)."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_epoch = -1
        self.step()  # initialise lr for epoch 0

    def get_lr(self) -> List[float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> None:
        self.last_epoch += 1
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.param_groups[0]["lr"]

    # ------------------------------------------------------------- persistence
    def state_dict(self) -> dict:
        """Position of the schedule (for training checkpoints)."""
        return {"last_epoch": int(self.last_epoch), "base_lrs": list(self.base_lrs)}

    def load_state_dict(self, state: dict) -> None:
        """Restore the schedule position and re-apply the learning rate.

        A freshly constructed scheduler sits at epoch 0; loading moves it to
        the checkpointed epoch and sets each group's lr to the value an
        uninterrupted run would have at that point.
        """
        self.base_lrs = [float(lr) for lr in state["base_lrs"]]
        self.last_epoch = int(state["last_epoch"])
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)
        super().__init__(optimizer)

    def get_lr(self) -> List[float]:
        t = min(self.last_epoch, self.t_max)
        return [
            self.eta_min + (base - self.eta_min) * (1 + math.cos(math.pi * t / self.t_max)) / 2
            for base in self.base_lrs
        ]


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def get_lr(self) -> List[float]:
        factor = self.gamma ** (self.last_epoch // self.step_size)
        return [base * factor for base in self.base_lrs]


class MultiStepLR(LRScheduler):
    """Multiply the lr by ``gamma`` at each milestone (SSD's [80k, 100k] recipe)."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1) -> None:
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)
        super().__init__(optimizer)

    def get_lr(self) -> List[float]:
        passed = sum(1 for m in self.milestones if self.last_epoch >= m)
        factor = self.gamma ** passed
        return [base * factor for base in self.base_lrs]


class CosineAnnealingWarmRestarts(LRScheduler):
    """SGDR: cosine annealing with warm restarts (Loshchilov & Hutter, 2016).

    The paper's classification recipe cites this schedule; the plain
    :class:`CosineAnnealingLR` is the single-cycle special case.  The cycle
    length starts at ``t_0`` epochs and is multiplied by ``t_mult`` after every
    restart.
    """

    def __init__(self, optimizer: Optimizer, t_0: int, t_mult: int = 1,
                 eta_min: float = 0.0) -> None:
        if t_0 < 1:
            raise ValueError(f"t_0 must be at least 1, got {t_0}")
        if t_mult < 1:
            raise ValueError(f"t_mult must be at least 1, got {t_mult}")
        self.t_0 = int(t_0)
        self.t_mult = int(t_mult)
        self.eta_min = float(eta_min)
        super().__init__(optimizer)

    def _cycle_position(self) -> Tuple[int, int]:
        """(epochs into the current cycle, length of the current cycle)."""
        epoch = self.last_epoch
        cycle_length = self.t_0
        while epoch >= cycle_length:
            epoch -= cycle_length
            cycle_length *= self.t_mult
        return epoch, cycle_length

    def get_lr(self) -> List[float]:
        t, cycle = self._cycle_position()
        return [
            self.eta_min + (base - self.eta_min) * (1 + math.cos(math.pi * t / cycle)) / 2
            for base in self.base_lrs
        ]


class LambdaLR(LRScheduler):
    """Scale the base lr by a user-provided function of the epoch index."""

    def __init__(self, optimizer: Optimizer, lr_lambda: Callable[[int], float]) -> None:
        self.lr_lambda = lr_lambda
        super().__init__(optimizer)

    def get_lr(self) -> List[float]:
        factor = self.lr_lambda(self.last_epoch)
        return [base * factor for base in self.base_lrs]


class WarmupCosineLR(LRScheduler):
    """Linear warmup for ``warmup_steps`` followed by cosine decay to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, t_max: int,
                 eta_min: float = 0.0) -> None:
        self.warmup_steps = int(warmup_steps)
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)
        super().__init__(optimizer)

    def get_lr(self) -> List[float]:
        if self.last_epoch < self.warmup_steps:
            factor = (self.last_epoch + 1) / max(self.warmup_steps, 1)
            return [base * factor for base in self.base_lrs]
        t = min(self.last_epoch - self.warmup_steps, self.t_max)
        span = max(self.t_max, 1)
        return [
            self.eta_min + (base - self.eta_min) * (1 + math.cos(math.pi * t / span)) / 2
            for base in self.base_lrs
        ]
