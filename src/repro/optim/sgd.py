"""Stochastic gradient descent with momentum and weight decay.

The paper trains every classification model with SGD + CosineAnnealing at an
initial learning rate of 0.1 (Sec. 5.2).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.parameter import Parameter
from .optimizer import Optimizer


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov acceleration and L2 weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.1, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        defaults = dict(lr=lr, momentum=momentum, weight_decay=weight_decay,
                        nesterov=nesterov)
        super().__init__(params, defaults)

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for p in group["params"]:
                if p.grad is None or not p.requires_grad:
                    continue
                grad = p.grad
                if weight_decay:
                    grad = grad + weight_decay * p.data
                if momentum:
                    state = self._get_state(p)
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = np.array(grad, dtype=p.data.dtype)
                    else:
                        buf = momentum * buf + grad
                    state["momentum_buffer"] = buf
                    grad = grad + momentum * buf if nesterov else buf
                p.data -= lr * np.asarray(grad, dtype=p.data.dtype)
