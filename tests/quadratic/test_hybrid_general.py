"""Tests for the symbolic-backward (hybrid BP) variants of T4 and Fan (T2&4) convolutions.

The paper's quadratic optimizer applies the same save-less/recompute scheme to
every quadratic design; these tests verify the two additional published
designs produce bit-compatible forward values and gradients with their
composed-autodiff counterparts while caching fewer intermediates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.builder import AutoBuilder
from repro.nn import Conv2d, Sequential
from repro.profiler import MemoryTracker
from repro.quadratic import (
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dT4,
    QuadraticConv2d,
    quadratic_layer,
)

RTOL, ATOL = 1e-4, 1e-5


def make_pair(hybrid_cls, neuron_type, in_channels=3, out_channels=5, **kwargs):
    """A hybrid layer and a composed layer with identical weights."""
    hybrid = hybrid_cls(in_channels, out_channels, kernel_size=3, padding=1, **kwargs)
    composed = QuadraticConv2d(in_channels, out_channels, kernel_size=3, padding=1,
                               neuron_type=neuron_type, **kwargs)
    composed.load_state_dict(hybrid.state_dict())
    return hybrid, composed


def random_input(seed=0, shape=(2, 3, 8, 8)):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


@pytest.mark.parametrize("hybrid_cls,neuron_type", [
    (HybridQuadraticConv2dT4, "T4"),
    (HybridQuadraticConv2dFan, "T2_4"),
])
class TestHybridGeneralEquivalence:
    def test_forward_identical(self, hybrid_cls, neuron_type):
        hybrid, composed = make_pair(hybrid_cls, neuron_type)
        x = random_input()
        with no_grad():
            np.testing.assert_allclose(hybrid(Tensor(x)).data, composed(Tensor(x)).data,
                                       rtol=RTOL, atol=ATOL)

    def test_input_and_weight_gradients_identical(self, hybrid_cls, neuron_type):
        hybrid, composed = make_pair(hybrid_cls, neuron_type)
        x_data = random_input(seed=1)

        def run(layer):
            layer.zero_grad()
            x = Tensor(x_data.copy(), requires_grad=True)
            (layer(x) * Tensor(np.full((1,), 0.5, dtype=np.float32))).sum().backward()
            grads = {name: p.grad.copy() for name, p in layer._parameters.items()
                     if p is not None and p.grad is not None}
            return x.grad.copy(), grads

        hybrid_x_grad, hybrid_grads = run(hybrid)
        composed_x_grad, composed_grads = run(composed)
        np.testing.assert_allclose(hybrid_x_grad, composed_x_grad, rtol=RTOL, atol=ATOL)
        assert set(hybrid_grads) == set(composed_grads)
        for name in hybrid_grads:
            np.testing.assert_allclose(hybrid_grads[name], composed_grads[name],
                                       rtol=RTOL, atol=ATOL, err_msg=name)

    def test_no_bias_and_stride_variants(self, hybrid_cls, neuron_type):
        hybrid = hybrid_cls(4, 6, kernel_size=3, stride=2, padding=1, bias=False)
        composed = QuadraticConv2d(4, 6, kernel_size=3, stride=2, padding=1,
                                   neuron_type=neuron_type, bias=False)
        composed.load_state_dict(hybrid.state_dict())
        x = random_input(seed=2, shape=(2, 4, 9, 9))
        with no_grad():
            h = hybrid(Tensor(x))
            c = composed(Tensor(x))
        assert h.shape == c.shape == (2, 6, 5, 5)
        np.testing.assert_allclose(h.data, c.data, rtol=RTOL, atol=ATOL)

    def test_caches_less_memory_than_composed(self, hybrid_cls, neuron_type):
        hybrid, composed = make_pair(hybrid_cls, neuron_type, in_channels=3, out_channels=8)
        x = random_input(seed=3, shape=(4, 3, 16, 16))

        def peak(layer):
            with MemoryTracker() as tracker:
                layer(Tensor(x, requires_grad=True)).sum().backward()
            layer.zero_grad()
            return tracker.peak_bytes

        assert peak(hybrid) < peak(composed)


def test_numeric_weight_gradient_fan_squared_path(numgrad):
    """The Fan design's squared-input path has its own chain rule — check it numerically."""
    layer = HybridQuadraticConv2dFan(2, 3, kernel_size=3, padding=1)
    x_data = random_input(seed=4, shape=(2, 2, 5, 5))

    def loss_value():
        with no_grad():
            return float(layer(Tensor(x_data)).sum().item())

    expected = numgrad(loss_value, layer.weight_sq.data)
    layer.zero_grad()
    layer(Tensor(x_data)).sum().backward()
    np.testing.assert_allclose(layer.weight_sq.grad, expected, rtol=2e-2, atol=2e-2)


def test_numeric_input_gradient_fan(numgrad):
    layer = HybridQuadraticConv2dFan(2, 2, kernel_size=3, padding=1, bias=False)
    x_data = random_input(seed=5, shape=(1, 2, 4, 4))

    def loss_value():
        with no_grad():
            return float(layer(Tensor(x_data)).sum().item())

    expected = numgrad(loss_value, x_data)
    x = Tensor(x_data, requires_grad=True)
    layer(x).sum().backward()
    np.testing.assert_allclose(x.grad, expected, rtol=2e-2, atol=2e-2)


def test_factory_dispatches_hybrid_for_t4_and_fan():
    t4 = quadratic_layer("T4", 3, 8, kernel_size=3, padding=1, hybrid_bp=True)
    fan = quadratic_layer("fan", 3, 8, kernel_size=3, padding=1, hybrid_bp=True)
    composed = quadratic_layer("T2", 3, 8, kernel_size=3, padding=1, hybrid_bp=True)
    assert isinstance(t4, HybridQuadraticConv2dT4)
    assert isinstance(fan, HybridQuadraticConv2dFan)
    assert isinstance(composed, QuadraticConv2d)  # no symbolic backward for T2 → fallback


def test_autobuilder_uses_hybrid_layers_for_fan_design():
    model = Sequential(Conv2d(3, 8, 3, padding=1), Conv2d(8, 8, 3, padding=1))
    AutoBuilder(neuron_type="T2_4", hybrid_bp=True).convert(model)
    converted = [m for m in model.modules() if isinstance(m, HybridQuadraticConv2dFan)]
    assert len(converted) == 2
