"""The :class:`Experiment` facade — one object that drives every workflow.

``Experiment`` turns a declarative :class:`repro.experiment.ExperimentSpec`
into the library's concrete machinery: the model zoo and auto-builder
(``build``), the trainers (``fit``), the evaluator (``evaluate``), the
profilers (``profile``), the PPML converter (``to_ppml``) and the design
exploration drivers (``search``).  ``run()`` executes the spec's pipeline
steps in order and collects one JSON-serializable results dict, which is what
``python -m repro run spec.json`` prints and saves.

Example
-------
>>> from repro.experiment import Experiment, ExperimentSpec, ModelSpec
>>> spec = ExperimentSpec(model=ModelSpec(name="vgg8", neuron_type="OURS"))
>>> exp = Experiment(spec)
>>> history = exp.fit()
>>> results = exp.run()            # the full build→fit→evaluate→profile→ppml pipeline
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..nn.module import Module
from ..utils.seed import seed_everything
from ..utils.serialization import save_results
from . import registry as reg
from .spec import PIPELINE_STEPS, ExperimentSpec


class Experiment:
    """Facade over build / fit / evaluate / profile / ppml / search.

    Parameters
    ----------
    spec : ExperimentSpec or dict
        The declarative description of the run (dicts are deserialized).
    model : Module, optional
        Pre-built model to use instead of building from ``spec.model``
        (benchmarks use this to drive custom structures through the same
        pipeline).  ``build()`` is a no-op when a model is injected.
    datasets : (train, test) tuple, optional
        Pre-built datasets to use instead of building from ``spec.data``.
    """

    def __init__(self, spec, model: Optional[Module] = None,
                 datasets: Optional[Tuple[Any, Any]] = None) -> None:
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(f"spec must be an ExperimentSpec or dict, got {type(spec).__name__}")
        spec.validate()
        self.spec = spec
        self.model: Optional[Module] = model
        self._injected_model = model is not None
        self._datasets = datasets
        self._compiled = None
        self._compiled_config = None
        self.history = None
        self.results: Dict[str, Any] = {}

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_file(cls, path: str, **kwargs) -> "Experiment":
        """Load a JSON spec from disk and wrap it."""
        return cls(ExperimentSpec.load(path), **kwargs)

    @classmethod
    def from_json(cls, text: str, **kwargs) -> "Experiment":
        return cls(ExperimentSpec.from_json(text), **kwargs)

    # ------------------------------------------------------------------- build
    def build(self) -> Module:
        """Instantiate the model from the spec (seeded for reproducibility)."""
        if self.model is None:
            seed_everything(self.spec.seed)
            self.model = self.spec.model.build()
        self.results["build"] = {
            "model": self.spec.model.name if self.spec.model.genome is None else "genome",
            "neuron_type": self.spec.model.effective_neuron_type,
            "auto_build": self.spec.model.auto_build,
            "parameters": self.model.num_parameters(),
        }
        return self.model

    def datasets(self) -> Tuple[Any, Any]:
        """The (train, test) datasets of the spec (built once, then cached)."""
        if self._datasets is None:
            self._datasets = (self.spec.data.build(train=True),
                              self.spec.data.build(train=False))
        return self._datasets

    # --------------------------------------------------------------------- fit
    def fit(self, callbacks=()):
        """Train the model with the spec's trainer and optimizer; returns history.

        Training runs through the unified engine (:mod:`repro.engine`): the
        spec's checkpoint fields (``train.checkpoint_dir`` / ``resume_from`` /
        ``stop_after_epoch``) and prefetch fields flow into the engine, the
        whole spec is embedded into every checkpoint so ``repro train
        --resume <ckpt>`` can rebuild the run from the file alone, and extra
        ``callbacks`` hook into the epoch/batch/eval/checkpoint events.
        """
        model = self.model if self.model is not None else self.build()
        train_set, test_set = self.datasets()
        trainer = reg.TRAINERS.get(self.spec.train.trainer)
        optimizer_factory = self._optimizer_factory()
        # Engine extras beyond the original PR 1 trainer contract.  They are
        # only passed when the trainer accepts them, so custom trainers
        # registered against the old 4+1-argument signature keep working.
        extras = {"callbacks": callbacks, "experiment_spec": self.spec.to_dict()}
        try:
            import inspect

            parameters = inspect.signature(trainer).parameters
            if not any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
                extras = {key: value for key, value in extras.items()
                          if key in parameters}
        except (TypeError, ValueError):  # builtins/partials without signatures
            pass
        start = time.perf_counter()
        with np.errstate(all="ignore"):
            self.history = trainer(model, train_set, test_set, self.spec.train,
                                   optimizer_factory=optimizer_factory, **extras)
        result = {"seconds": time.perf_counter() - start}
        if self.spec.train.checkpoint_dir is not None:
            result["checkpoint_dir"] = self.spec.train.checkpoint_dir
        if self.spec.train.resume_from is not None:
            result["resumed_from"] = self.spec.train.resume_from
        if hasattr(self.history, "to_dict"):
            result["history"] = self.history.to_dict()
            result["final_train_accuracy"] = self.history.final_train_accuracy
            result["final_test_accuracy"] = self.history.final_test_accuracy
        self.results["fit"] = result
        return self.history

    def _optimizer_factory(self) -> Callable:
        train = self.spec.train
        optimizer_cls = reg.OPTIMIZERS.get(train.optimizer)

        def factory(params):
            kwargs: Dict[str, Any] = {"lr": train.lr, "weight_decay": train.weight_decay}
            if train.optimizer == "sgd":
                kwargs["momentum"] = train.momentum
            return optimizer_cls(params, **kwargs)

        return factory

    # ---------------------------------------------------------------- evaluate
    def evaluate(self) -> float:
        """Top-1 accuracy of the (trained) model on the test split."""
        from ..data.dataloader import DataLoader
        from ..training.classification import evaluate_classifier

        model = self.model if self.model is not None else self.build()
        _, test_set = self.datasets()
        loader = DataLoader(test_set, batch_size=self.spec.train.batch_size)
        accuracy = evaluate_classifier(model, loader)
        self.results["evaluate"] = {"test_accuracy": accuracy}
        return accuracy

    # ----------------------------------------------------------------- profile
    def profile(self) -> Dict[str, Any]:
        """Parameters / MACs / training memory (and optionally latency)."""
        from ..profiler.flops import profile_model
        from ..profiler.latency import profile_latency
        from ..profiler.memory import estimate_training_memory

        model = self.model if self.model is not None else self.build()
        input_shape = self.spec.data.input_shape
        profile_cfg = self.spec.profile
        flops = profile_model(model, input_shape)
        memory = estimate_training_memory(model, input_shape,
                                          num_classes=self.spec.model.num_classes)
        result: Dict[str, Any] = {
            "parameters": flops.total_parameters,
            "macs": flops.total_macs,
            "training_memory_bytes": memory.total_bytes(profile_cfg.batch_size),
            "memory_batch_size": profile_cfg.batch_size,
        }
        if profile_cfg.per_layer:
            result["layers"] = [
                {"name": layer.name, "type": layer.layer_type,
                 "parameters": layer.parameters, "macs": layer.macs}
                for layer in flops.layers
            ]
        if profile_cfg.latency:
            latency = profile_latency(model, input_shape,
                                      batch_size=min(profile_cfg.batch_size, 8),
                                      num_classes=self.spec.model.num_classes,
                                      iterations=profile_cfg.latency_repeats,
                                      compiled=profile_cfg.compiled,
                                      backend=profile_cfg.backend)
            result["train_ms_per_batch"] = latency.train_ms_per_batch
            result["inference_ms_per_batch"] = latency.inference_ms_per_batch
            if latency.compiled_ms_per_batch is not None:
                result["compiled_ms_per_batch"] = latency.compiled_ms_per_batch
                result["compiled_backend"] = latency.compiled_backend
        self.results["profile"] = result
        return result

    # --------------------------------------------------------------- inference
    def compile_inference(self, recompile: bool = False, backend=None,
                          optimize=None):
        """Lower the built model to the compiled no-grad serving path.

        Returns a :class:`repro.inference.CompiledModel` — a flat list of
        NumPy callables with fused quadratic kernels and pooled buffers that
        matches the eager forward's outputs without building any graph.
        ``backend`` selects the compute engine (a :mod:`repro.backends` name
        or instance; ``None`` is the reference ``numpy`` engine) and
        ``optimize`` the graph-optimizer level.  The result is cached per
        (backend, optimize) configuration; pass ``recompile=True`` after
        structural changes to the model.
        """
        from ..backends import get_backend
        from ..inference import compile_model
        from ..inference.optimizer import normalize_level

        config = (get_backend(backend).name, normalize_level(optimize))
        if (self._compiled is None or recompile
                or self._compiled.model is not self.model
                or self._compiled_config != config):
            model = self.model if self.model is not None else self.build()
            self._compiled = compile_model(model, backend=backend,
                                           optimize=optimize)
            self._compiled_config = config
        self.results["compile"] = {
            "steps": self._compiled.num_steps,
            "fallback_modules": len(self._compiled.fallback_modules),
            "backend": self._compiled.backend.name,
            "optimization": self._compiled.optimization.to_dict(),
        }
        return self._compiled

    def predictor(self, max_batch_size: int = 8, max_wait: float = 0.002,
                  backend=None, **kwargs) -> "Any":
        """A micro-batching :class:`repro.inference.BatchedPredictor`.

        Serves the (cached) compiled model from :meth:`compile_inference`
        on the requested compute ``backend``: single samples are coalesced
        (up to ``max_batch_size`` within ``max_wait`` seconds) into one
        compiled forward.  Close it when done (it is a context manager), and
        don't call the compiled model directly while the predictor is
        serving — they share one buffer pool.
        """
        from ..inference import BatchedPredictor

        return BatchedPredictor(self.compile_inference(backend=backend),
                                max_batch_size=max_batch_size,
                                max_wait=max_wait, **kwargs)

    def serve(self, workers: Optional[int] = None, port: Optional[int] = None,
              host: Optional[str] = None, config: "Any" = None,
              **config_kwargs) -> "Any":
        """A scale-out :class:`repro.serve.ServingServer` for this experiment.

        Ships the spec and the (built, possibly trained) model's weights to
        ``workers`` worker processes — each compiles its own copy and
        micro-batches its own traffic — and fronts them with the stdlib HTTP
        endpoint (``POST /predict`` with an LRU response cache,
        ``GET /healthz``, ``GET /stats``).  The server is returned
        *unstarted*: use it as a context manager (or call ``start()``).

        Extra keyword arguments become :class:`repro.serve.ServeConfig`
        fields (``max_batch_size``, ``queue_depth``, ``watermark``,
        ``cache_size``, ...), or pass a full ``config`` to control
        everything.  This is the single serving entry point — secure
        serving is the same call with the secure knobs set::

            server = experiment.serve(secure=True)            # spec defaults
            server = experiment.serve(secure=True, frac_bits=10,
                                      protocol="gazelle",
                                      strategy="quadratic_no_relu")

        With ``secure=True`` the workers host
        :class:`repro.ppml.SecurePredictor` instances (int64 fixed-point
        inference), the pool sizes its offline triple pools from a traced
        warm-up forward, and ``GET /stats`` grows a ``secure`` section with
        the per-request protocol accounting.
        """
        from ..serve import ServeConfig, ServingServer

        overrides = dict(config_kwargs)
        if workers is not None:
            overrides["workers"] = workers
        if port is not None:
            overrides["port"] = port
        if host is not None:
            overrides["host"] = host
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError(
                f"pass either a full ServeConfig or keyword overrides, not both "
                f"(got config plus {sorted(overrides)})")
        model = self.model if self.model is not None else self.build()
        self.results["serve"] = {"workers": config.workers,
                                 "cache_size": config.cache_size,
                                 "watermark": config.effective_watermark,
                                 "secure": config.secure}
        if config.secure:
            self.results["serve"].update({
                "protocol": config.protocol or self.spec.ppml.protocol,
                "frac_bits": config.frac_bits,
                "truncation": config.truncation,
                "strategy": config.strategy or self.spec.ppml.strategy,
                "triple_pool_depth": config.effective_triple_pool_depth,
            })
        return ServingServer(self.spec, state=model.state_dict(), config=config)

    def plan(self, qps: float, workers: Optional[int] = None,
             input_shape: Optional[Tuple[int, ...]] = None,
             config: "Any" = None, rates_budget_ms: float = 60.0,
             **config_kwargs) -> "Any":
        """A first-principles :class:`repro.capacity.CapacityPlan` for serving.

        Predicts — without running a load test — the throughput, p50/p99
        latency and required worker count of serving this experiment at an
        offered rate of ``qps`` requests/second.  The prediction combines
        the model's exact per-layer work counts (bucketed by kernel class),
        this host's measured kernel rates
        (:meth:`repro.backends.Backend.measure_rates`, cached per host) and
        an M/M/c queueing model of the worker pool; see
        :mod:`repro.capacity` and ``docs/capacity.md``.

        The deployment shape comes from the same knobs as :meth:`serve`:
        pass keyword overrides (``workers``, ``max_batch_size``,
        ``backend``, ``secure=True``, ...) or a full
        :class:`repro.serve.ServeConfig`.  With ``secure=True`` one traced
        fixed-point forward (via :meth:`secure_predictor`) supplies the
        protocol round structure and the per-request offline budget, and the
        plan grows a ``secure`` section with triple-pool refill requirements.

        ``input_shape`` overrides the spec's per-sample shape (needed for
        models whose input is not an image, e.g. the ``mlp`` zoo entry takes
        flat ``(16,)`` vectors).  ``rates_budget_ms`` bounds each kernel
        micro-probe; the first call per (backend, host) pays it, later calls
        hit the cache.
        """
        from ..backends import get_backend
        from ..capacity import CapacityModel, request_work, secure_work
        from ..serve import ServeConfig

        overrides = dict(config_kwargs)
        if workers is not None:
            overrides["workers"] = workers
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError(
                f"pass either a full ServeConfig or keyword overrides, not both "
                f"(got config plus {sorted(overrides)})")
        model = self.model if self.model is not None else self.build()
        shape = (tuple(input_shape) if input_shape is not None
                 else self.spec.data.input_shape)
        work = request_work(model, shape, num_classes=self.spec.model.num_classes)
        rates = get_backend(config.backend).measure_rates(budget_ms=rates_budget_ms)
        secure = None
        if config.secure:
            predictor = self.secure_predictor(
                frac_bits=config.frac_bits, truncation=config.truncation,
                protocol=config.protocol or None,
                strategy=config.strategy or None,
                convert=config.strategy != "none")
            predictor.predict(np.zeros(shape, dtype=np.float32))
            secure = secure_work(predictor.last_trace)
        capacity = CapacityModel(
            work, rates, workers=config.workers,
            max_batch_size=config.max_batch_size, max_wait=config.max_wait,
            secure_work=secure,
            triple_pool_depth=(config.effective_triple_pool_depth
                               if config.secure else 0))
        plan = capacity.plan(qps)
        self.results["plan"] = {
            "model": self.spec.model.name if self.spec.model.genome is None else "genome",
            "backend": config.backend,
            "input_shape": list(shape),
            **plan.to_dict(),
        }
        return plan

    # -------------------------------------------------------------------- ppml
    def secure_predictor(self, frac_bits: int = 12, truncation: str = "nearest",
                         protocol: Optional[str] = None, strategy: Optional[str] = None,
                         convert: bool = True, seed: Optional[int] = None) -> "Any":
        """A :class:`repro.ppml.SecurePredictor` serving this experiment securely.

        Converts a copy of the (built, possibly trained) model with the
        spec's PPML strategy (``spec.ppml.strategy``, overridable via
        ``strategy``; pass ``convert=False`` to serve the model as-is) and
        compiles it to the fixed-point secure-inference runtime.  Each
        ``predict()`` answers one client query under hybrid-protocol
        semantics and records the executed protocol trace
        (``predictor.last_trace``), which ``predictor.estimate()`` converts
        into online latency/communication under the configured protocol.
        """
        from .. import ppml

        model = self.model if self.model is not None else self.build()
        cfg = self.spec.ppml
        effective_strategy = strategy if strategy is not None else cfg.strategy
        target = model
        conversion = None
        if convert:
            target, conversion = ppml.to_ppml_friendly(model, strategy=effective_strategy,
                                                       inplace=False)
        predictor = ppml.SecurePredictor(
            target, protocol=protocol if protocol is not None else cfg.protocol,
            frac_bits=frac_bits, truncation=truncation,
            seed=self.spec.seed if seed is None else seed)
        self.results["secure"] = {
            "protocol": predictor.protocol.name,
            "frac_bits": frac_bits,
            "truncation": truncation,
            "strategy": effective_strategy if convert else None,
            "activations_replaced": (conversion.activations_replaced
                                     if conversion is not None else 0),
            "layers_quadratized": (conversion.layers_quadratized
                                   if conversion is not None else 0),
        }
        return predictor

    def to_ppml(self) -> Tuple[Module, Dict[str, Any]]:
        """Convert to a PPML-friendly model and report the online-cost savings."""
        from .. import ppml

        model = self.model if self.model is not None else self.build()
        cfg = self.spec.ppml
        converted, report = ppml.to_ppml_friendly(model, strategy=cfg.strategy, inplace=False)
        savings = ppml.ppml_savings(model, converted, self.spec.data.input_shape,
                                    protocol=cfg.protocol)
        result = {
            "strategy": cfg.strategy,
            "protocol": cfg.protocol,
            "activations_replaced": report.activations_replaced,
            "layers_quadratized": report.layers_quadratized,
            "before_runnable": savings.before.runnable,
            "after_runnable": savings.after.runnable,
            "online_latency_ms_before": (savings.before.total.milliseconds
                                         if savings.before.runnable else None),
            "online_latency_ms_after": savings.after.total.milliseconds,
            "online_comm_mb_before": (savings.before.total.megabytes
                                      if savings.before.runnable else None),
            "online_comm_mb_after": savings.after.total.megabytes,
        }
        self.results["ppml"] = result
        return converted, result

    # ------------------------------------------------------------------ search
    def search(self):
        """Run the spec's design exploration; returns a SearchResult."""
        from ..explore.evaluate import ProxyEvaluator
        from ..explore.evolution import EvolutionConfig, evolutionary_search
        from ..explore.random_search import random_search

        cfg = self.spec.search
        if cfg is None:
            raise ValueError("this spec has no 'search' section")
        seed_everything(self.spec.seed)
        train_set, test_set = self.datasets()
        space = cfg.build_space()
        evaluator = ProxyEvaluator(train_set, test_set,
                                   num_classes=self.spec.data.num_classes,
                                   image_size=self.spec.data.image_size,
                                   epochs=cfg.epochs, batch_size=cfg.batch_size,
                                   max_batches_per_epoch=cfg.max_batches_per_epoch,
                                   width_multiplier=self.spec.model.width_multiplier,
                                   lr=cfg.lr, seed=self.spec.seed)
        with np.errstate(all="ignore"):
            if cfg.strategy == "random":
                result = random_search(space, evaluator, budget=cfg.budget,
                                       seed=self.spec.seed)
            else:
                evo = EvolutionConfig(population_size=max(cfg.budget // 2, 2),
                                      generations=2, elite_count=1)
                result = evolutionary_search(space, evaluator, evo, seed=self.spec.seed)
        self.results["search"] = {
            "strategy": cfg.strategy,
            "evaluations_used": result.evaluations_used,
            "cardinality": space.cardinality(),
            "top": [
                {"key": entry.genome.key(), "genome": entry.genome.to_dict(),
                 "accuracy": entry.accuracy, "parameters": entry.parameters}
                for entry in result.top(cfg.top)
            ],
        }
        return result

    # --------------------------------------------------------------------- run
    def run(self, steps: Optional[Tuple[str, ...]] = None) -> Dict[str, Any]:
        """Execute the pipeline steps in the order requested; returns all results.

        Steps run exactly as listed (a spec may e.g. profile before fitting).
        Note that ``ppml`` is an *analysis* step: it converts a copy of the
        model to price the savings, and later steps keep operating on the
        original — to train a converted model, call :meth:`to_ppml` and feed
        the returned module into a new ``Experiment(spec, model=converted)``.
        """
        requested = list(steps) if steps is not None else list(self.spec.steps)
        unknown = [step for step in requested if step not in PIPELINE_STEPS]
        if unknown:
            raise ValueError(f"unknown pipeline step(s) {unknown}; valid: {PIPELINE_STEPS}")
        dispatch = {
            "build": self.build,
            "fit": self.fit,
            "evaluate": self.evaluate,
            "profile": self.profile,
            "ppml": self.to_ppml,
            "search": self.search,
        }
        for step in requested:
            dispatch[step]()
        return self.summary()

    def summary(self) -> Dict[str, Any]:
        """Spec + per-step results as one JSON-serializable dict."""
        return {"spec": self.spec.to_dict(), "results": dict(self.results)}

    def save_results(self, path: str) -> str:
        """Persist :meth:`summary` as JSON (via ``utils.serialization``)."""
        save_results(self.summary(), path)
        return path
