"""Task adapters: the task-specific half of each training loop.

A :class:`TaskAdapter` owns everything the unified
:class:`~repro.engine.Trainer` must not know about a workload: how batches
are produced, what one optimization step does (the GAN adapter owns its
two-optimizer step), how an epoch is evaluated and recorded, and which state
a checkpoint must capture.  The four adapters here reproduce the four legacy
loops of :mod:`repro.training` *bit for bit* — the parity tests in
``tests/engine`` keep frozen copies of the old loops and compare histories
and final weights exactly.

The ``run_*`` helpers assemble adapter + trainer for the common case and are
what the thin public functions in :mod:`repro.training` (and the trainer
registry behind :meth:`repro.experiment.Experiment.fit`) call.

All imports from :mod:`repro.training` are deferred to runtime: the training
modules import this package for their implementations, so a module-level
import here would be circular.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..data.dataloader import DataLoader
from ..data.prefetch import PrefetchDataLoader
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Module
from ..optim.adam import Adam
from ..optim.lr_scheduler import CosineAnnealingLR, LRScheduler, MultiStepLR
from ..optim.sgd import SGD
from ..utils.serialization import rng_state, set_rng_state
from .trainer import Trainer


@dataclass
class StepResult:
    """What one ``train_step`` reports back to the trainer."""

    metrics: Dict[str, float] = field(default_factory=dict)
    #: request an immediate stop (divergence); the trainer skips epoch-end
    #: bookkeeping exactly as the legacy loops did.
    stop: bool = False


class TaskAdapter:
    """Protocol of the task-specific loop half (subclass and override).

    Attributes
    ----------
    task : str
        Checkpoint tag; resuming requires the same task.
    num_epochs : int
        Total epochs (GAN adapters map one paper "step" to one epoch, which
        makes every step a valid checkpoint/resume boundary).
    max_batches_per_epoch : int or None
        Cap enforced by the trainer (mirrors the legacy loops' cap).
    history
        The task's history object, returned by ``Trainer.fit``.
    """

    task = "task"
    num_epochs: int = 0
    max_batches_per_epoch: Optional[int] = None
    history: Any = None

    def train_begin(self) -> None:
        """Put models into training mode (called once, after any resume)."""

    def epoch_begin(self, epoch: int) -> None:
        """Reset per-epoch accumulators."""

    def batches(self, epoch: int) -> Iterable:
        """A fresh batch iterator for this epoch."""
        raise NotImplementedError

    def train_step(self, batch) -> StepResult:
        """One optimization step (forward/backward/step) on ``batch``."""
        raise NotImplementedError

    def epoch_end(self, epoch: int) -> Dict[str, float]:
        """Evaluate/record the epoch; returns the metrics for callbacks."""
        return {}

    def train_end(self) -> None:
        """Final bookkeeping after the last epoch (skipped on divergence)."""

    # ------------------------------------------------------------ checkpoints
    def state_dict(self) -> Dict[str, Any]:
        """Serializable state a checkpoint must capture to resume bit-identically."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError


def _dataset_rng_state(dataset) -> Optional[Any]:
    """Augmentation RNG state of a dataset, when it exposes one.

    Stateful per-sample transforms (``RandomCrop`` et al. behind a
    ``TransformDataset``) draw from their own streams; a checkpoint that did
    not capture them would resume with re-seeded augmentations and lose the
    bit-identical-resume guarantee.
    """
    if hasattr(dataset, "rng_state"):
        return dataset.rng_state()
    return None


def _restore_dataset_rng(dataset, state) -> None:
    if state is not None and hasattr(dataset, "set_rng_state"):
        dataset.set_rng_state(state)


def _wrap_prefetch(loader: DataLoader, prefetch: bool, depth: int,
                   max_batches: Optional[int]):
    """Optionally wrap a loader with the prefetching pipeline.

    The legacy loops pull one batch *past* the cap before breaking (the
    ``enumerate`` check runs after the pull), so a capped prefetch worker must
    assemble ``cap + 1`` batches for per-sample transform RNGs to advance
    identically to a synchronous epoch.
    """
    if not prefetch:
        return loader
    cap = None if max_batches is None else max_batches + 1
    return PrefetchDataLoader(loader, depth=depth, max_batches=cap)


# --------------------------------------------------------------------------- #
# Classification (also backbone pre-training, which trains a classifier).
# --------------------------------------------------------------------------- #

class ClassificationAdapter(TaskAdapter):
    """The paper's SGD + CosineAnnealing recipe (legacy ``train_classifier``)."""

    task = "classification"

    def __init__(self, model: Module, train_dataset, test_dataset=None, *,
                 epochs: int = 5, batch_size: int = 64, lr: float = 0.1,
                 momentum: float = 0.9, weight_decay: float = 5e-4,
                 scheduler: str = "cosine", label_smoothing: float = 0.0,
                 grad_probe_layers: Optional[Sequence[str]] = None,
                 max_batches_per_epoch: Optional[int] = None, seed: int = 0,
                 optimizer_factory: Optional[Callable] = None,
                 prefetch: bool = False, prefetch_depth: int = 2) -> None:
        from ..quadratic.gradients import GradientFlowProbe
        from ..training.classification import TrainingHistory

        self.model = model
        self.train_dataset = train_dataset
        self.num_epochs = int(epochs)
        self.max_batches_per_epoch = max_batches_per_epoch
        self.batch_size = int(batch_size)
        self._sync_loader = DataLoader(train_dataset, batch_size=batch_size, shuffle=True,
                                       drop_last=True, seed=seed)
        self.loader = _wrap_prefetch(self._sync_loader, prefetch, prefetch_depth,
                                     max_batches_per_epoch)
        self.test_loader = (DataLoader(test_dataset, batch_size=batch_size)
                            if test_dataset is not None else None)
        if optimizer_factory is not None:
            self.optimizer = optimizer_factory(model.parameters())
        else:
            self.optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                                 weight_decay=weight_decay)
        self.lr_scheduler: Optional[LRScheduler] = None
        if scheduler == "cosine":
            self.lr_scheduler = CosineAnnealingLR(self.optimizer, t_max=max(epochs, 1))
        self.loss_fn = CrossEntropyLoss(label_smoothing=label_smoothing)
        self.probe = (GradientFlowProbe(model, layer_filter=grad_probe_layers)
                      if grad_probe_layers else None)
        self.history = TrainingHistory()
        self._epoch_losses: List[float] = []
        self._epoch_accs: List[float] = []
        self._batch_times: List[float] = []

    # ------------------------------------------------------------------- loop
    def train_begin(self) -> None:
        self.model.train(True)

    def epoch_begin(self, epoch: int) -> None:
        self._epoch_losses, self._epoch_accs, self._batch_times = [], [], []

    def batches(self, epoch: int):
        return iter(self.loader)

    def train_step(self, batch) -> StepResult:
        from ..metrics.classification import accuracy

        images, labels = batch
        start = time.perf_counter()
        self.optimizer.zero_grad()
        logits = self.model(Tensor(np.asarray(images, dtype=np.float32)))
        loss = self.loss_fn(logits, labels)
        loss.backward()
        self.optimizer.step()
        self._batch_times.append(time.perf_counter() - start)

        loss_value = loss.item()
        if not np.isfinite(loss_value):
            # Divergence (e.g. gradient explosion in deep plain QDNNs):
            # record and stop, mirroring a failed paper run.
            self.history.train_loss.append(float("inf"))
            self.history.train_accuracy.append(1.0 / logits.shape[-1])
            if self.test_loader is not None:
                self.history.test_accuracy.append(1.0 / logits.shape[-1])
            return StepResult(metrics={"train_loss": float("inf")}, stop=True)
        batch_accuracy = accuracy(logits, labels)
        self._epoch_losses.append(loss_value)
        self._epoch_accs.append(batch_accuracy)
        return StepResult(metrics={"train_loss": loss_value,
                                   "train_accuracy": batch_accuracy})

    def epoch_end(self, epoch: int) -> Dict[str, float]:
        from ..training.classification import evaluate_classifier

        if self.probe is not None:
            self.probe.snapshot()
        history = self.history
        history.train_loss.append(
            float(np.mean(self._epoch_losses)) if self._epoch_losses else float("nan"))
        history.train_accuracy.append(
            float(np.mean(self._epoch_accs)) if self._epoch_accs else float("nan"))
        history.seconds_per_batch.append(
            float(np.mean(self._batch_times)) if self._batch_times else float("nan"))
        metrics = {"train_loss": history.train_loss[-1],
                   "train_accuracy": history.train_accuracy[-1]}
        if self.test_loader is not None:
            history.test_accuracy.append(evaluate_classifier(self.model, self.test_loader))
            self.model.train(True)
            metrics["test_accuracy"] = history.test_accuracy[-1]
        if self.lr_scheduler is not None:
            self.lr_scheduler.step()
        return metrics

    def train_end(self) -> None:
        if self.probe is not None:
            self.history.gradient_norms = {name: list(values)
                                           for name, values in self.probe.history.items()}

    # ------------------------------------------------------------ checkpoints
    def state_dict(self) -> Dict[str, Any]:
        return {
            "model": dict(self.model.state_dict()),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": (self.lr_scheduler.state_dict()
                          if self.lr_scheduler is not None else None),
            "loader_rng": self.loader.rng_state(),
            "dataset_rng": _dataset_rng_state(self.train_dataset),
            "probe": ({name: list(values) for name, values in self.probe.history.items()}
                      if self.probe is not None else None),
            "history": self.history.to_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from ..training.classification import TrainingHistory

        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        if self.lr_scheduler is not None and state.get("scheduler") is not None:
            self.lr_scheduler.load_state_dict(state["scheduler"])
        self.loader.set_rng_state(state["loader_rng"])
        _restore_dataset_rng(self.train_dataset, state.get("dataset_rng"))
        if self.probe is not None and state.get("probe"):
            self.probe.history = {name: [float(v) for v in values]
                                  for name, values in state["probe"].items()}
        self.history = TrainingHistory.from_dict(state.get("history") or {})


# --------------------------------------------------------------------------- #
# Detection (SSD multibox training, legacy ``train_detector``).
# --------------------------------------------------------------------------- #

class DetectionAdapter(TaskAdapter):
    """SGD + step-decay SSD training (paper Sec. 5.4, scaled down)."""

    task = "detection"

    def __init__(self, model, dataset, *, epochs: int = 3, batch_size: int = 8,
                 lr: float = 1e-3, momentum: float = 0.9, weight_decay: float = 5e-4,
                 milestones: Sequence[int] = (),
                 max_batches_per_epoch: Optional[int] = None, seed: int = 0,
                 prefetch: bool = False, prefetch_depth: int = 2) -> None:
        from ..data.synthetic.detection import detection_collate
        from ..training.detection import DetectionTrainingHistory

        self.model = model
        self.train_dataset = dataset
        self.num_epochs = int(epochs)
        self.max_batches_per_epoch = max_batches_per_epoch
        self._sync_loader = DataLoader(dataset, batch_size=batch_size, shuffle=True,
                                       drop_last=True, collate_fn=detection_collate,
                                       seed=seed)
        self.loader = _wrap_prefetch(self._sync_loader, prefetch, prefetch_depth,
                                     max_batches_per_epoch)
        self.optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                             weight_decay=weight_decay)
        self.lr_scheduler = (MultiStepLR(self.optimizer, milestones=milestones)
                             if milestones else None)
        self.history = DetectionTrainingHistory()
        self._epoch_losses: List[float] = []

    def train_begin(self) -> None:
        self.model.train(True)

    def epoch_begin(self, epoch: int) -> None:
        self._epoch_losses = []

    def batches(self, epoch: int):
        return iter(self.loader)

    def train_step(self, batch) -> StepResult:
        images, targets = batch
        self.optimizer.zero_grad()
        cls_logits, box_offsets = self.model(Tensor(np.asarray(images, dtype=np.float32)))
        loss = self.model.multibox_loss(cls_logits, box_offsets, targets)
        loss.backward()
        self.optimizer.step()
        loss_value = loss.item()
        self._epoch_losses.append(loss_value)
        return StepResult(metrics={"loss": loss_value})

    def epoch_end(self, epoch: int) -> Dict[str, float]:
        self.history.loss.append(
            float(np.mean(self._epoch_losses)) if self._epoch_losses else float("nan"))
        if self.lr_scheduler is not None:
            self.lr_scheduler.step()
        return {"loss": self.history.loss[-1]}

    # ------------------------------------------------------------ checkpoints
    def state_dict(self) -> Dict[str, Any]:
        return {
            "model": dict(self.model.state_dict()),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": (self.lr_scheduler.state_dict()
                          if self.lr_scheduler is not None else None),
            "loader_rng": self.loader.rng_state(),
            "dataset_rng": _dataset_rng_state(self.train_dataset),
            "history": self.history.to_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from ..training.detection import DetectionTrainingHistory

        self.model.load_state_dict(state["model"])
        self.optimizer.load_state_dict(state["optimizer"])
        if self.lr_scheduler is not None and state.get("scheduler") is not None:
            self.lr_scheduler.load_state_dict(state["scheduler"])
        self.loader.set_rng_state(state["loader_rng"])
        _restore_dataset_rng(self.train_dataset, state.get("dataset_rng"))
        self.history = DetectionTrainingHistory.from_dict(state.get("history") or {})


# --------------------------------------------------------------------------- #
# GAN (SNGAN hinge training, legacy ``train_sngan``).
# --------------------------------------------------------------------------- #

class GANAdapter(TaskAdapter):
    """Adversarial hinge training; the adapter owns the two-optimizer step.

    One paper "step" (``discriminator_steps`` discriminator updates plus one
    generator update) is mapped to one engine epoch, so every step boundary
    is a checkpoint/resume point with its RNG stream captured.
    """

    task = "gan"

    def __init__(self, generator, discriminator, dataset, *, steps: int = 100,
                 batch_size: int = 32, lr_generator: float = 2e-4,
                 lr_discriminator: float = 2e-4, betas: Tuple[float, float] = (0.5, 0.9),
                 discriminator_steps: int = 1, seed: int = 0) -> None:
        from ..training.gan import GANTrainingHistory

        self.generator = generator
        self.discriminator = discriminator
        self.dataset = dataset
        self.num_epochs = int(steps)
        self.batch_size = int(batch_size)
        self.discriminator_steps = int(discriminator_steps)
        self.rng = np.random.default_rng(seed)
        self.opt_g = Adam(generator.parameters(), lr=lr_generator, betas=betas)
        self.opt_d = Adam(discriminator.parameters(), lr=lr_discriminator, betas=betas)
        self.history = GANTrainingHistory()

    def train_begin(self) -> None:
        self.generator.train(True)
        self.discriminator.train(True)

    def batches(self, epoch: int):
        # One engine epoch == one GAN step; the adapter samples its own data.
        return iter((None,))

    def train_step(self, batch) -> StepResult:
        from ..nn import functional as F

        # ---- discriminator update(s)
        d_loss_value = 0.0
        for _ in range(self.discriminator_steps):
            real = Tensor(self.dataset.sample(self.batch_size, rng=self.rng))
            z = Tensor(self.generator.sample_latent(self.batch_size, rng=self.rng))
            with no_grad():
                fake = self.generator(z)
            fake = Tensor(fake.data)  # block generator gradients explicitly
            self.opt_d.zero_grad()
            d_loss = F.hinge_loss_discriminator(self.discriminator(real),
                                                self.discriminator(fake))
            d_loss.backward()
            self.opt_d.step()
            d_loss_value = d_loss.item()

        # ---- generator update
        z = Tensor(self.generator.sample_latent(self.batch_size, rng=self.rng))
        self.opt_g.zero_grad()
        g_loss = F.hinge_loss_generator(self.discriminator(self.generator(z)))
        g_loss.backward()
        self.opt_g.step()

        self.history.discriminator_loss.append(d_loss_value)
        self.history.generator_loss.append(g_loss.item())
        return StepResult(metrics={"generator_loss": self.history.generator_loss[-1],
                                   "discriminator_loss": d_loss_value})

    def epoch_end(self, epoch: int) -> Dict[str, float]:
        return {"generator_loss": self.history.generator_loss[-1],
                "discriminator_loss": self.history.discriminator_loss[-1]}

    # ------------------------------------------------------------ checkpoints
    def state_dict(self) -> Dict[str, Any]:
        return {
            "generator": dict(self.generator.state_dict()),
            "discriminator": dict(self.discriminator.state_dict()),
            "opt_g": self.opt_g.state_dict(),
            "opt_d": self.opt_d.state_dict(),
            "rng": rng_state(self.rng),
            "history": self.history.to_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from ..training.gan import GANTrainingHistory

        self.generator.load_state_dict(state["generator"])
        self.discriminator.load_state_dict(state["discriminator"])
        self.opt_g.load_state_dict(state["opt_g"])
        self.opt_d.load_state_dict(state["opt_d"])
        set_rng_state(self.rng, state["rng"])
        self.history = GANTrainingHistory.from_dict(state.get("history") or {})


# --------------------------------------------------------------------------- #
# One-call helpers: adapter + trainer for the common cases.
# --------------------------------------------------------------------------- #

def _fit(adapter: TaskAdapter, *, callbacks=(), checkpoint_dir=None,
         checkpoint_every: int = 1, keep_checkpoints=None, resume_from=None,
         stop_after_epoch=None, spec=None):
    trainer = Trainer(adapter, callbacks=callbacks, checkpoint_dir=checkpoint_dir,
                      checkpoint_every=checkpoint_every,
                      keep_checkpoints=keep_checkpoints, spec=spec)
    return trainer.fit(resume_from=resume_from, stop_after_epoch=stop_after_epoch)


def run_classification(model: Module, train_dataset, test_dataset=None, *,
                       epochs: int = 5, batch_size: int = 64, lr: float = 0.1,
                       momentum: float = 0.9, weight_decay: float = 5e-4,
                       scheduler: str = "cosine", label_smoothing: float = 0.0,
                       grad_probe_layers: Optional[Sequence[str]] = None,
                       max_batches_per_epoch: Optional[int] = None, seed: int = 0,
                       optimizer_factory: Optional[Callable] = None,
                       prefetch: bool = False, prefetch_depth: int = 2,
                       callbacks=(), checkpoint_dir: Optional[str] = None,
                       checkpoint_every: int = 1, keep_checkpoints: Optional[int] = None,
                       resume_from: Optional[str] = None,
                       stop_after_epoch: Optional[int] = None,
                       spec: Optional[Dict[str, Any]] = None):
    """Train a classifier through the engine; the legacy recipe plus engine extras."""
    adapter = ClassificationAdapter(
        model, train_dataset, test_dataset, epochs=epochs, batch_size=batch_size,
        lr=lr, momentum=momentum, weight_decay=weight_decay, scheduler=scheduler,
        label_smoothing=label_smoothing, grad_probe_layers=grad_probe_layers,
        max_batches_per_epoch=max_batches_per_epoch, seed=seed,
        optimizer_factory=optimizer_factory, prefetch=prefetch,
        prefetch_depth=prefetch_depth)
    return _fit(adapter, callbacks=callbacks, checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every, keep_checkpoints=keep_checkpoints,
                resume_from=resume_from, stop_after_epoch=stop_after_epoch, spec=spec)


def run_detection(model, dataset, *, epochs: int = 3, batch_size: int = 8,
                  lr: float = 1e-3, momentum: float = 0.9, weight_decay: float = 5e-4,
                  milestones: Sequence[int] = (),
                  max_batches_per_epoch: Optional[int] = None, seed: int = 0,
                  prefetch: bool = False, prefetch_depth: int = 2,
                  callbacks=(), checkpoint_dir: Optional[str] = None,
                  checkpoint_every: int = 1, keep_checkpoints: Optional[int] = None,
                  resume_from: Optional[str] = None,
                  stop_after_epoch: Optional[int] = None,
                  spec: Optional[Dict[str, Any]] = None):
    """Train the SSD detector through the engine."""
    adapter = DetectionAdapter(
        model, dataset, epochs=epochs, batch_size=batch_size, lr=lr,
        momentum=momentum, weight_decay=weight_decay, milestones=milestones,
        max_batches_per_epoch=max_batches_per_epoch, seed=seed, prefetch=prefetch,
        prefetch_depth=prefetch_depth)
    return _fit(adapter, callbacks=callbacks, checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every, keep_checkpoints=keep_checkpoints,
                resume_from=resume_from, stop_after_epoch=stop_after_epoch, spec=spec)


def run_gan(generator, discriminator, dataset, *, steps: int = 100,
            batch_size: int = 32, lr_generator: float = 2e-4,
            lr_discriminator: float = 2e-4, betas: Tuple[float, float] = (0.5, 0.9),
            discriminator_steps: int = 1, seed: int = 0,
            callbacks=(), checkpoint_dir: Optional[str] = None,
            checkpoint_every: int = 1, keep_checkpoints: Optional[int] = None,
            resume_from: Optional[str] = None, stop_after_epoch: Optional[int] = None,
            spec: Optional[Dict[str, Any]] = None):
    """Train an SNGAN pair through the engine (one step per engine epoch)."""
    adapter = GANAdapter(
        generator, discriminator, dataset, steps=steps, batch_size=batch_size,
        lr_generator=lr_generator, lr_discriminator=lr_discriminator, betas=betas,
        discriminator_steps=discriminator_steps, seed=seed)
    return _fit(adapter, callbacks=callbacks, checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every, keep_checkpoints=keep_checkpoints,
                resume_from=resume_from, stop_after_epoch=stop_after_epoch, spec=spec)
