"""Synthetic object-detection workload (PASCAL VOC stand-in).

Each image contains one to three geometric objects (filled square, circle,
triangle, ring, cross, …) drawn at random positions and scales on a textured
background.  Every object carries a class label and an axis-aligned bounding
box in normalised ``(x_min, y_min, x_max, y_max)`` coordinates, which is the
same annotation format the SSD head and the VOC mAP metric expect.

The paper's Table 6 contrast — a first-order versus quadratic VGG backbone
inside an identical SSD detector, with and without classification
pre-training — is preserved because both backbones see exactly the same
images and boxes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..dataset import Dataset

# Class names mirror a subset of PASCAL VOC so the benchmark table reads like
# the paper's Table 6 (the mapping is cosmetic; the shapes are synthetic).
VOC_LIKE_CLASSES = (
    "plane", "bike", "bird", "boat", "bottle", "bus", "car", "cat", "chair", "cow",
)


def _draw_square(canvas: np.ndarray, cx: float, cy: float, half: float) -> None:
    h, w = canvas.shape
    y0, y1 = int((cy - half) * h), int((cy + half) * h)
    x0, x1 = int((cx - half) * w), int((cx + half) * w)
    canvas[max(y0, 0):min(y1, h), max(x0, 0):min(x1, w)] = 1.0


def _draw_circle(canvas: np.ndarray, cx: float, cy: float, radius: float) -> None:
    h, w = canvas.shape
    ys, xs = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    canvas[(xs - cx) ** 2 + (ys - cy) ** 2 <= radius ** 2] = 1.0


def _draw_ring(canvas: np.ndarray, cx: float, cy: float, radius: float) -> None:
    h, w = canvas.shape
    ys, xs = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    dist2 = (xs - cx) ** 2 + (ys - cy) ** 2
    canvas[(dist2 <= radius ** 2) & (dist2 >= (0.55 * radius) ** 2)] = 1.0


def _draw_triangle(canvas: np.ndarray, cx: float, cy: float, half: float) -> None:
    h, w = canvas.shape
    ys, xs = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    inside = (ys >= cy - half) & (ys <= cy + half)
    width = (ys - (cy - half)) / (2 * half + 1e-9) * half
    inside &= np.abs(xs - cx) <= width
    canvas[inside] = 1.0


def _draw_cross(canvas: np.ndarray, cx: float, cy: float, half: float) -> None:
    h, w = canvas.shape
    thickness = half * 0.35
    y0, y1 = int((cy - half) * h), int((cy + half) * h)
    x0, x1 = int((cx - half) * w), int((cx + half) * w)
    ty0, ty1 = int((cy - thickness) * h), int((cy + thickness) * h)
    tx0, tx1 = int((cx - thickness) * w), int((cx + thickness) * w)
    canvas[max(ty0, 0):min(ty1, h), max(x0, 0):min(x1, w)] = 1.0
    canvas[max(y0, 0):min(y1, h), max(tx0, 0):min(tx1, w)] = 1.0


def _draw_stripes(canvas: np.ndarray, cx: float, cy: float, half: float, freq: float) -> None:
    h, w = canvas.shape
    ys, xs = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    box = (np.abs(xs - cx) <= half) & (np.abs(ys - cy) <= half)
    stripes = (np.sin(2 * np.pi * freq * (xs + ys)) > 0)
    canvas[box & stripes] = 1.0


_SHAPE_DRAWERS = (
    _draw_square,
    _draw_circle,
    _draw_triangle,
    _draw_ring,
    _draw_cross,
    lambda c, cx, cy, half: _draw_stripes(c, cx, cy, half, 8.0),
    lambda c, cx, cy, half: _draw_stripes(c, cx, cy, half, 14.0),
    lambda c, cx, cy, half: (_draw_circle(c, cx, cy, half), _draw_cross(c, cx, cy, half * 0.7)),
    lambda c, cx, cy, half: (_draw_square(c, cx, cy, half), _draw_circle(c, cx, cy, half * 0.5)),
    lambda c, cx, cy, half: (_draw_triangle(c, cx, cy, half), _draw_ring(c, cx, cy, half * 0.6)),
)


class SyntheticDetectionDataset(Dataset):
    """Images of geometric objects with bounding boxes and class labels.

    ``__getitem__`` returns ``(image, target)`` where ``target`` is a dict with
    ``boxes`` (M, 4) in normalised corner format and ``labels`` (M,) in
    ``[0, num_classes)``.
    """

    def __init__(self, num_samples: int = 256, image_size: int = 64, num_classes: int = 10,
                 max_objects: int = 3, seed: int = 0,
                 transform: Optional[Callable[[np.ndarray], np.ndarray]] = None) -> None:
        if num_classes > len(_SHAPE_DRAWERS):
            raise ValueError(
                f"at most {len(_SHAPE_DRAWERS)} synthetic object classes are available"
            )
        self.image_size = int(image_size)
        self.num_classes = int(num_classes)
        self.class_names = VOC_LIKE_CLASSES[:num_classes]
        self.transform = transform
        rng = np.random.default_rng(seed)

        self.images: List[np.ndarray] = []
        self.targets: List[Dict[str, np.ndarray]] = []
        ys, xs = np.meshgrid(np.linspace(0, 1, image_size), np.linspace(0, 1, image_size),
                             indexing="ij")
        for _ in range(num_samples):
            background = 0.15 * np.sin(2 * np.pi * rng.uniform(1, 3) * xs
                                       + 2 * np.pi * rng.uniform(1, 3) * ys)
            background += rng.normal(0, 0.05, size=background.shape)
            image = np.tile(background[None].astype(np.float32), (3, 1, 1))

            n_objects = int(rng.integers(1, max_objects + 1))
            boxes, labels = [], []
            for _ in range(n_objects):
                cls = int(rng.integers(0, num_classes))
                half = float(rng.uniform(0.1, 0.22))
                cx = float(rng.uniform(half, 1 - half))
                cy = float(rng.uniform(half, 1 - half))
                canvas = np.zeros((image_size, image_size), dtype=np.float32)
                _SHAPE_DRAWERS[cls](canvas, cx, cy, half)
                color = rng.dirichlet(np.ones(3)).astype(np.float32) + 0.3
                image += color[:, None, None] * canvas[None]
                boxes.append([cx - half, cy - half, cx + half, cy + half])
                labels.append(cls)

            self.images.append(np.clip(image, -1.5, 2.5))
            self.targets.append({
                "boxes": np.asarray(boxes, dtype=np.float32),
                "labels": np.asarray(labels, dtype=np.int64),
            })

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int):
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image)
        return image, self.targets[index]


def detection_collate(batch):
    """Collate detection samples: stack images, keep targets as a list."""
    images = np.stack([sample[0] for sample in batch], axis=0)
    targets = [sample[1] for sample in batch]
    return images, targets
