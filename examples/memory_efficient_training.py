"""Hybrid back-propagation: train a QDNN with less memory (paper Sec. 4.3 / Fig. 8).

Run with::

    python examples/memory_efficient_training.py

The script profiles one forward+backward iteration of the same quadratic
ConvNet built two ways — composed from autodiff primitives (default AD) and
as single symbolic-backward layers (hybrid BP) — and prints the cached-memory
curves and the peak saving, then verifies both versions produce identical
gradients.
"""

import numpy as np

from repro.autodiff import Tensor
from repro.builder import QuadraticModelConfig
from repro.models import SmallConvNet
from repro.nn.losses import CrossEntropyLoss
from repro.profiler import MemoryTracker
from repro.utils import print_table, seed_everything

BATCH = 64
IMAGE = 32
NUM_CLASSES = 10


def profile_one_iteration(model, images, labels):
    loss_fn = CrossEntropyLoss()
    with MemoryTracker() as tracker:
        loss = loss_fn(model(Tensor(images)), labels)
        loss.backward()
    model.zero_grad()
    return tracker


def sparkline(curve, width=60):
    """Render a memory curve as a one-line text sparkline."""
    ramp = " ▁▂▃▄▅▆▇█"
    if not curve:
        return ""
    idx = np.linspace(0, len(curve) - 1, width).astype(int)
    values = np.asarray(curve, dtype=np.float64)[idx]
    top = values.max() or 1.0
    return "".join(ramp[int(v / top * (len(ramp) - 1))] for v in values)


def main() -> None:
    seed_everything(0)
    rng = np.random.default_rng(0)
    images = rng.standard_normal((BATCH, 3, IMAGE, IMAGE)).astype(np.float32)
    labels = rng.integers(0, NUM_CLASSES, size=BATCH)

    default_model = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE,
                                 config=QuadraticModelConfig(neuron_type="OURS",
                                                             width_multiplier=0.5))
    hybrid_model = SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE,
                                config=QuadraticModelConfig(neuron_type="OURS", hybrid_bp=True,
                                                            width_multiplier=0.5))

    default_tracker = profile_one_iteration(default_model, images, labels)
    hybrid_tracker = profile_one_iteration(hybrid_model, images, labels)

    saving = 1 - hybrid_tracker.peak_bytes / default_tracker.peak_bytes
    print_table(
        ["Back-propagation scheme", "Peak cached memory (MiB)"],
        [["Default AD (composed quadratic layers)",
          f"{default_tracker.peak_bytes / 2**20:.1f}"],
         ["Hybrid BP (symbolic quadratic layers)",
          f"{hybrid_tracker.peak_bytes / 2**20:.1f}"]],
        title=f"One training iteration, batch {BATCH} (saving: {saving:.1%})",
    )
    print("\nCached-memory curve over the iteration (forward ramps up, backward releases):")
    print(f"  default: {sparkline(default_tracker.timeline_bytes())}")
    print(f"  hybrid : {sparkline(hybrid_tracker.timeline_bytes())}")

    # Hybrid BP is purely a memory optimisation: gradients are identical.
    from repro.quadratic import HybridQuadraticConv2d, QuadraticConv2d

    composed = QuadraticConv2d(3, 8, kernel_size=3, padding=1, neuron_type="OURS")
    hybrid = HybridQuadraticConv2d(3, 8, kernel_size=3, padding=1)
    for name in ("weight_a", "weight_b", "weight_c", "bias"):
        getattr(hybrid, name).data[...] = getattr(composed, name).data
    x = Tensor(rng.standard_normal((2, 3, 16, 16)).astype(np.float32))
    composed(x).sum().backward()
    hybrid(x).sum().backward()
    max_diff = max(float(np.abs(getattr(composed, n).grad - getattr(hybrid, n).grad).max())
                   for n in ("weight_a", "weight_b", "weight_c"))
    print(f"\nMax gradient difference between the two schemes: {max_diff:.2e} "
          "(identical up to float32 rounding)")


if __name__ == "__main__":
    main()
