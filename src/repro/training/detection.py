"""SSD detector training and evaluation (paper Sec. 5.4, scaled down).

The loop now runs through the unified engine
(:class:`repro.engine.DetectionAdapter`); :func:`train_detector` is a thin
adapter preserving the original signature and history semantics bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..autodiff.tensor import Tensor
from ..data.dataloader import DataLoader
from ..data.synthetic.detection import SyntheticDetectionDataset, detection_collate
from ..metrics.detection import evaluate_detections
from ..models.ssd import SSD


@dataclass
class DetectionTrainingHistory:
    """Per-epoch multibox losses."""

    loss: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss[-1] if self.loss else float("nan")

    # ------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        return {"loss": [float(v) for v in self.loss]}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "DetectionTrainingHistory":
        """Tolerant inverse of :meth:`to_dict` (missing/None fields → empty)."""
        data = data or {}
        return cls(loss=[float(v) for v in (data.get("loss") or [])])


def train_detector(model: SSD, dataset: SyntheticDetectionDataset, epochs: int = 3,
                   batch_size: int = 8, lr: float = 1e-3, momentum: float = 0.9,
                   weight_decay: float = 5e-4, milestones: Sequence[int] = (),
                   max_batches_per_epoch: Optional[int] = None,
                   seed: int = 0) -> DetectionTrainingHistory:
    """Train the SSD with SGD and the paper's step-decay schedule.

    The paper decays the learning rate 10× at iterations 80 k and 100 k; the
    scaled version exposes the same mechanism through epoch ``milestones``.
    """
    from ..engine import run_detection

    return run_detection(model, dataset, epochs=epochs, batch_size=batch_size, lr=lr,
                         momentum=momentum, weight_decay=weight_decay,
                         milestones=milestones,
                         max_batches_per_epoch=max_batches_per_epoch, seed=seed)


def evaluate_detector(model: SSD, dataset: SyntheticDetectionDataset, batch_size: int = 8,
                      score_threshold: float = 0.3, iou_threshold: float = 0.5,
                      use_11_point: bool = False) -> Dict[str, object]:
    """Run inference over a dataset and compute the VOC mAP (Table 6 metric)."""
    loader = DataLoader(dataset, batch_size=batch_size, collate_fn=detection_collate)
    predictions: List[Dict[str, np.ndarray]] = []
    ground_truths: List[Dict[str, np.ndarray]] = []
    for images, targets in loader:
        detections = model.detect(Tensor(np.asarray(images, dtype=np.float32)),
                                  score_threshold=score_threshold)
        predictions.extend(detections)
        ground_truths.extend(targets)
    return evaluate_detections(predictions, ground_truths, num_classes=model.num_classes,
                               iou_threshold=iou_threshold, use_11_point=use_11_point)
