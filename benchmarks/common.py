"""Shared configuration and helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at a *scaled*
workload (synthetic data, reduced widths/epochs) so that the full suite runs
on a CPU in minutes.  The scaling constants live here so a user with more
time can raise them in one place; the relative comparisons the paper makes
(who wins, by roughly what factor) are preserved at any scale.

Each benchmark

* trains/evaluates the models of the corresponding experiment,
* prints the paper-style table via :func:`repro.utils.print_table`,
* saves the raw numbers to ``benchmarks/results/<experiment>.json``, and
* uses the ``benchmark`` fixture on a representative kernel (one training or
  inference step) so ``pytest --benchmark-only`` also reports timing.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.data.synthetic import SyntheticImageClassification
from repro.utils import save_results, seed_everything

# --------------------------------------------------------------------------- #
# Global scale knobs (raise these for a higher-fidelity reproduction)
# --------------------------------------------------------------------------- #

#: width multiplier applied to every backbone (paper uses 1.0)
WIDTH = 0.25
#: samples in the synthetic training sets (paper: 50k CIFAR images)
TRAIN_SAMPLES = 192
#: samples in the synthetic test sets (paper: 10k CIFAR images)
TEST_SAMPLES = 96
#: training epochs per model (paper: 200)
EPOCHS = 3
#: batches per epoch cap
MAX_BATCHES = 6
#: mini-batch size (paper: 256 / 128)
BATCH_SIZE = 16
#: image resolution for the classification benchmarks (paper: 32 / 64)
IMAGE_SIZE = 16
#: number of classes for the CIFAR-10 stand-in
NUM_CLASSES = 6

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def classification_data(num_classes: int = NUM_CLASSES, image_size: int = IMAGE_SIZE,
                        seed: int = 0):
    """Train/test synthetic classification datasets sharing class recipes."""
    train = SyntheticImageClassification(num_samples=TRAIN_SAMPLES, num_classes=num_classes,
                                         image_size=image_size, seed=seed, split_seed=0)
    test = SyntheticImageClassification(num_samples=TEST_SAMPLES, num_classes=num_classes,
                                        image_size=image_size, seed=seed, split_seed=1)
    return train, test


def save_experiment(name: str, results: Dict) -> str:
    """Persist an experiment's numbers under ``benchmarks/results``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    save_results(results, path)
    return path


#: Scalar types a trajectory record's values may hold (JSON scalars only:
#: nested containers would break the per-field dispersion statistics).
_TRAJECTORY_SCALARS = (str, bool, int, float, type(None))


def validate_trajectory_record(entry) -> Dict:
    """Check one parsed trajectory record against the schema; returns it.

    A record is one flat JSON object with a non-empty ``benchmark`` string,
    a numeric ``timestamp``, and scalar values everywhere else.  Raises
    ``ValueError`` on anything else — :func:`load_trajectory` turns that
    into a skipped line, so one corrupt record never poisons the history.
    """
    if not isinstance(entry, dict):
        raise ValueError(f"trajectory record must be an object, got "
                         f"{type(entry).__name__}")
    benchmark = entry.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise ValueError(f"trajectory record needs a non-empty 'benchmark' "
                         f"string, got {benchmark!r}")
    timestamp = entry.get("timestamp")
    if isinstance(timestamp, bool) or not isinstance(timestamp, (int, float)):
        raise ValueError(f"trajectory record needs a numeric 'timestamp', "
                         f"got {timestamp!r}")
    for key, value in entry.items():
        if not isinstance(key, str):
            raise ValueError(f"trajectory field names must be strings, got {key!r}")
        if not isinstance(value, _TRAJECTORY_SCALARS):
            raise ValueError(f"trajectory field '{key}' must be a JSON scalar, "
                             f"got {type(value).__name__}")
    return entry


def append_trajectory(name: str, record: Dict) -> str:
    """Append one run's headline numbers to ``results/trajectory.jsonl``.

    One JSON object per line: ``{"benchmark", "timestamp", **record}``.
    The per-benchmark ``<name>.json`` snapshot is overwritten on every run;
    this file is the append-only history — the trend line a perf PR points
    at to show the before/after, and what :func:`load_trajectory` reads to
    compare a run against its own past (:func:`check_against_trajectory`).

    The append is **atomic**: the new history is written to a temp file in
    the same directory and ``os.replace``\\ d over the old one, so a run
    killed mid-write leaves either the previous file or the new one —
    never a torn trailing line.  (Pre-existing torn lines, from the old
    plain-append implementation or a crashed writer, are preserved
    byte-for-byte and skipped at load time.)
    """
    import json
    import time

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "trajectory.jsonl")
    entry = validate_trajectory_record(
        {"benchmark": str(name), "timestamp": time.time(), **record})
    existing = b""
    if os.path.exists(path):
        with open(path, "rb") as handle:
            existing = handle.read()
    if existing and not existing.endswith(b"\n"):
        existing += b"\n"                  # seal a torn line from a past crash
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(existing)
            handle.write((json.dumps(entry, sort_keys=True) + "\n").encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


def load_trajectory(name: str = None) -> list:
    """Validated trajectory records oldest-first, optionally one benchmark's.

    Tolerates a truncated final line (a run killed mid-append under the old
    non-atomic writer) and schema-invalid records by skipping anything that
    does not parse and validate — the trend line degrades, it never crashes
    a benchmark run.
    """
    import json

    path = os.path.join(RESULTS_DIR, "trajectory.jsonl")
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = validate_trajectory_record(json.loads(line))
            except ValueError:
                continue
            if name is None or entry.get("benchmark") == name:
                records.append(entry)
    return records


# --------------------------------------------------------------------------- #
# Trajectory-relative regression checking
# --------------------------------------------------------------------------- #

#: Minimum comparable history records before a regression verdict is possible.
MIN_TRAJECTORY_HISTORY = 3
#: Relative floor of the tolerance band (a run must be >35 % off the
#: historical median, in the *bad* direction, to count as a regression).
TRAJECTORY_REL_FLOOR = 0.35
#: How many median-absolute-deviations of the history's own dispersion the
#: band additionally allows — noisy benchmarks earn wider bands.
TRAJECTORY_MAD_K = 4.0

#: Record fields whose values describe the run, not its performance — used
#: to restrict history to *comparable* runs before computing bands.
TRAJECTORY_CONTEXT_FIELDS = ("cpus", "quick_mode")


def trajectory_band(values) -> tuple:
    """``(median, tolerance)`` of a metric's history.

    The tolerance is ``max(rel_floor x |median|, mad_k x MAD)``: the
    relative floor keeps quiet histories from flagging ordinary noise, and
    the MAD term widens the band to whatever spread the history itself
    exhibits — the band is derived from the trajectory's own dispersion,
    not from a hand-picked absolute threshold.
    """
    if not values:
        raise ValueError("trajectory_band needs at least one value")
    ordered = sorted(float(v) for v in values)
    median = ordered[len(ordered) // 2]
    mad = sorted(abs(v - median) for v in ordered)[len(ordered) // 2]
    return median, max(TRAJECTORY_REL_FLOOR * abs(median), TRAJECTORY_MAD_K * mad)


def check_against_trajectory(name: str, record: Dict, directions: Dict[str, str],
                             history: list = None,
                             min_history: int = MIN_TRAJECTORY_HISTORY) -> list:
    """Compare one run's record against its own benchmark history.

    ``directions`` maps field name to ``"higher"`` or ``"lower"`` — which
    way is *better*.  Checks are one-sided: a run that got faster always
    passes.  History is restricted to records whose context fields
    (:data:`TRAJECTORY_CONTEXT_FIELDS`, e.g. ``cpus``) match the current
    run, because a 2-core run regressing against 8-core history is not a
    code regression.  Fewer than ``min_history`` comparable records yields
    an ``insufficient-history`` finding (a pass with a note, never a
    failure) — this is what keeps the gate safe on fresh checkouts, where
    ``benchmarks/results/`` starts empty.

    Returns one finding dict per field:
    ``{"field", "status", "value", "median", "tolerance", "history"}``
    with status ``ok`` | ``regression`` | ``insufficient-history`` |
    ``missing`` (the field is absent from the current record).
    """
    if history is None:
        history = load_trajectory(name)
    comparable = [
        entry for entry in history
        if all(entry.get(ctx) == record.get(ctx)
               for ctx in TRAJECTORY_CONTEXT_FIELDS)
    ]
    findings = []
    for field, direction in sorted(directions.items()):
        if direction not in ("higher", "lower"):
            raise ValueError(f"direction for '{field}' must be 'higher' or "
                             f"'lower', got {direction!r}")
        value = record.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            findings.append({"field": field, "status": "missing", "value": value,
                             "median": None, "tolerance": None, "history": 0})
            continue
        past = [entry[field] for entry in comparable
                if isinstance(entry.get(field), (int, float))
                and not isinstance(entry.get(field), bool)]
        if len(past) < min_history:
            findings.append({"field": field, "status": "insufficient-history",
                             "value": float(value), "median": None,
                             "tolerance": None, "history": len(past)})
            continue
        median, tolerance = trajectory_band(past)
        if direction == "higher":
            regressed = float(value) < median - tolerance
        else:
            regressed = float(value) > median + tolerance
        findings.append({"field": field,
                         "status": "regression" if regressed else "ok",
                         "value": float(value), "median": median,
                         "tolerance": tolerance, "history": len(past)})
    return findings


def format_trajectory_findings(name: str, findings: list) -> str:
    """Human-readable one-line-per-field report of a trajectory check."""
    lines = [f"trajectory check [{name}]:"]
    for finding in findings:
        if finding["status"] in ("insufficient-history", "missing"):
            lines.append(f"  {finding['field']}: {finding['status']} "
                         f"({finding['history']} comparable records)")
        else:
            lines.append(
                f"  {finding['field']}: {finding['status']} — value "
                f"{finding['value']:.4g}, history median {finding['median']:.4g} "
                f"± {finding['tolerance']:.4g} over {finding['history']} runs")
    return "\n".join(lines)


def fresh_seed(offset: int = 0) -> None:
    """Deterministic seeding per benchmark."""
    seed_everything(1234 + offset)


def quick_mode(argv=None) -> bool:
    """True when a benchmark runs as the CI regression gate.

    Enabled by the ``--quick`` flag or the ``REPRO_BENCH_QUICK`` env var
    (any value but ``""``/``"0"``).  Quick mode shrinks measurement budgets
    but keeps every assertion — one shared detector so the CI gates cannot
    drift apart on what "quick" means.
    """
    import sys

    argv = sys.argv[1:] if argv is None else argv
    return "--quick" in argv or os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def mb(nbytes: float) -> float:
    """Bytes → mebibytes."""
    return float(nbytes) / (1024 ** 2)


def gib(nbytes: float) -> float:
    """Bytes → gibibytes."""
    return float(nbytes) / (1024 ** 3)
