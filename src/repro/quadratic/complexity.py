"""Analytical complexity model for quadratic neuron designs (paper Table 1).

For a neuron with input size ``n`` the model reports

* the asymptotic time/space complexity strings of Table 1,
* exact trainable-parameter counts for dense and convolutional layers, and
* multiply–accumulate (MAC) counts per output element,

so the Table 1 benchmark can print both the paper's asymptotic columns and
measured numbers from instantiated layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .neuron_types import NEURON_TYPES, NeuronSpec, resolve_type


@dataclass(frozen=True)
class LayerCost:
    """Exact cost of one quadratic layer instance."""

    neuron_type: str
    parameters: int
    macs: int
    time_complexity: str
    space_complexity: str

    def relative_to(self, other: "LayerCost") -> Tuple[float, float]:
        """(parameter ratio, MAC ratio) of this cost relative to ``other``."""
        return (
            self.parameters / max(other.parameters, 1),
            self.macs / max(other.macs, 1),
        )


def _conv_patch_size(in_channels: int, kernel_size: int) -> int:
    return in_channels * kernel_size * kernel_size


def linear_layer_cost(neuron_type: str, in_features: int, out_features: int,
                      bias: bool = True) -> LayerCost:
    """Parameter and MAC count of a dense quadratic layer."""
    spec = resolve_type(neuron_type)
    n = in_features
    params = 0
    macs = 0
    # Plain (first-order sized) weight sets: each is out×in and costs n MACs/output.
    params += spec.weight_sets * out_features * n
    macs += spec.weight_sets * out_features * n
    if spec.full_rank:
        params += out_features * n * n
        macs += out_features * n * n
    # Element-wise combination cost (Hadamard product / squaring / addition).
    macs += out_features * _combination_macs(spec)
    if bias:
        params += out_features
    return LayerCost(spec.name, params, macs, spec.time_complexity, spec.space_complexity)


def conv_layer_cost(neuron_type: str, in_channels: int, out_channels: int,
                    kernel_size: int, output_hw: Tuple[int, int] = (1, 1),
                    groups: int = 1, bias: bool = True) -> LayerCost:
    """Parameter and MAC count of a convolutional quadratic layer.

    ``output_hw`` scales MACs by the number of spatial output positions;
    parameter counts are independent of it.
    """
    spec = resolve_type(neuron_type)
    patch = _conv_patch_size(in_channels // groups, kernel_size)
    positions = output_hw[0] * output_hw[1]
    params = spec.weight_sets * out_channels * patch
    macs = spec.weight_sets * out_channels * patch * positions
    if spec.full_rank:
        full_patch = _conv_patch_size(in_channels, kernel_size)
        params += out_channels * full_patch * full_patch
        macs += out_channels * full_patch * full_patch * positions
    macs += out_channels * _combination_macs(spec) * positions
    if bias:
        params += out_channels
    return LayerCost(spec.name, params, macs, spec.time_complexity, spec.space_complexity)


def _combination_macs(spec: NeuronSpec) -> int:
    """Element-wise operations needed to combine the first-order responses."""
    ops = 0
    if spec.weight_sets >= 2 or spec.full_rank:
        ops += 1  # Hadamard product or bilinear contraction epilogue
    if spec.weight_sets >= 3 or spec.has_linear_path:
        ops += 1  # addition of the linear / identity / square term
    return max(ops, 1)


def first_order_linear_cost(in_features: int, out_features: int, bias: bool = True) -> LayerCost:
    """Cost of the ordinary first-order dense layer, for ratio columns."""
    params = out_features * in_features + (out_features if bias else 0)
    macs = out_features * in_features
    return LayerCost("FIRST_ORDER", params, macs, "O(n)", "O(n)")


def first_order_conv_cost(in_channels: int, out_channels: int, kernel_size: int,
                          output_hw: Tuple[int, int] = (1, 1), groups: int = 1,
                          bias: bool = True) -> LayerCost:
    """Cost of the ordinary first-order convolution, for ratio columns."""
    patch = _conv_patch_size(in_channels // groups, kernel_size)
    positions = output_hw[0] * output_hw[1]
    params = out_channels * patch + (out_channels if bias else 0)
    macs = out_channels * patch * positions
    return LayerCost("FIRST_ORDER", params, macs, "O(n)", "O(n)")


def complexity_table(in_features: int = 64, out_features: int = 64) -> Dict[str, LayerCost]:
    """Costs of every registered neuron type on a reference dense layer."""
    return {
        name: linear_layer_cost(name, in_features, out_features)
        for name in NEURON_TYPES
    }


def count_module_parameters(module) -> int:
    """Trainable parameter count of any module (convenience re-export)."""
    return module.num_parameters()
