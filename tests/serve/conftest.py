"""Shared fixtures for the scale-out serving tests.

Worker processes are the expensive part of this suite (each spawn re-imports
the library and compiles the model), so anything processes-backed is scoped
as widely as isolation allows and every test model is the tiny ``smoke``
preset (quadratic VGG-8 at 1/8 width).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiment import Experiment, get_preset


class SmokeSetup:
    """The smoke experiment, its weights, and reference predictor outputs."""

    def __init__(self) -> None:
        self.experiment = Experiment(get_preset("smoke"))
        self.model = self.experiment.build()
        self.model.eval()
        self.state = self.model.state_dict()
        self.spec = self.experiment.spec
        rng = np.random.default_rng(7)
        self.samples = rng.standard_normal(
            (6,) + tuple(self.spec.data.input_shape)).astype(np.float32)
        # Reference outputs from the single-process path, strict batch-of-1
        # so sequential pool requests compare bit for bit.
        with self.experiment.predictor(max_batch_size=1) as predictor:
            self.expected = [predictor.predict(sample) for sample in self.samples]


@pytest.fixture(scope="session")
def smoke():
    return SmokeSetup()
