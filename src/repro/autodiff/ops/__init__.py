"""Primitive differentiable operations grouped by family."""

from . import conv, elementwise, matmul, reduce, shape

__all__ = ["conv", "elementwise", "matmul", "reduce", "shape"]
