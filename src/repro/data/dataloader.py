"""Mini-batch loader with shuffling and custom collation."""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence

import numpy as np

from .dataset import Dataset


def default_collate(batch: List[Any]):
    """Stack a list of samples into batched arrays.

    * tuples/lists of arrays collate element-wise;
    * scalars become 1-D arrays;
    * anything that cannot be stacked (e.g. variable-length box lists for the
      detection task) is returned as a plain Python list.
    """
    first = batch[0]
    if isinstance(first, (tuple, list)):
        transposed = list(zip(*batch))
        return tuple(default_collate(list(items)) for items in transposed)
    if isinstance(first, np.ndarray):
        shapes = {item.shape for item in batch}
        if len(shapes) == 1:
            return np.stack(batch, axis=0)
        return list(batch)
    if isinstance(first, (int, np.integer)):
        return np.asarray(batch, dtype=np.int64)
    if isinstance(first, (float, np.floating)):
        return np.asarray(batch, dtype=np.float32)
    return list(batch)


class DataLoader:
    """Iterate over a dataset in mini-batches.

    Parameters
    ----------
    dataset : Dataset
    batch_size : int
    shuffle : bool
        Reshuffle indices at the start of every epoch.
    drop_last : bool
        Drop the trailing incomplete batch (the paper's batch-timing numbers
        in Table 3 are per full batch, so the benchmarks enable this).
    collate_fn : callable
        Function merging a list of samples into a batch.
    seed : int
        Seed for the shuffling RNG; each epoch advances the stream.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = False,
                 drop_last: bool = False, collate_fn: Callable = default_collate,
                 seed: int = 0) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.collate_fn = collate_fn
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    # ------------------------------------------------------------- persistence
    def rng_state(self) -> dict:
        """JSON-serialisable state of the shuffling RNG (for checkpoints)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore the shuffling RNG so epoch k+1 reshuffles exactly as if the
        loader had already served k epochs (checkpoint resume)."""
        self._rng.bit_generator.state = state

    def __iter__(self) -> Iterator:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        end = (len(indices) // self.batch_size) * self.batch_size if self.drop_last else len(indices)
        for start in range(0, end, self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            samples = [self.dataset[int(i)] for i in batch_indices]
            yield self.collate_fn(samples)
