"""Reusable output buffers for the compiled inference path.

Eager evaluation allocates a fresh array for every intermediate result of
every layer, every call.  At serving time the intermediate *shapes* are
stable — the same model sees the same input resolution and a small set of
micro-batch sizes — so the compiled path rents its scratch space from a
:class:`BufferPool` instead: one persistent array per (step, role, shape)
triple, written through NumPy ``out=`` arguments.  After the first call with
a given batch size a compiled forward performs close to zero element-wise
allocations.

:class:`LifetimePlanner` goes one step further: instead of giving every step
a private buffer namespace, it assigns pool keys from *lifetime classes* at
compile time, so buffers that are provably dead when another step runs share
one allocation (see the class docstring for the invariants).  The planner
only chooses keys — the pool itself stays a dumb keyed cache.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Hashable, Tuple

import numpy as np


class BufferPool:
    """A keyed pool of NumPy scratch arrays.

    Buffers are identified by an arbitrary hashable ``key`` (the compiler
    uses ``(step_index, role)``) plus the requested shape and dtype, so the
    same step can serve several batch sizes without aliasing.  Contents are
    never zeroed — callers must fully overwrite what they rent.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[Hashable, Tuple[int, ...], np.dtype], np.ndarray] = {}
        #: buffers handed out since creation (cache hits + misses); for tests
        self.requests = 0
        #: buffers actually allocated (cache misses)
        self.allocations = 0

    def get(self, key: Hashable, shape: Tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Rent the buffer for ``key`` at ``shape``; allocated once, then reused."""
        full_key = (key, tuple(int(s) for s in shape), np.dtype(dtype))
        self.requests += 1
        buffer = self._buffers.get(full_key)
        if buffer is None:
            buffer = np.empty(full_key[1], dtype=full_key[2])
            self._buffers[full_key] = buffer
            self.allocations += 1
        return buffer

    @property
    def hits(self) -> int:
        """Rentals served from cache — a warm pool's requests are all hits.

        The serving arena's tracemalloc probes assert on this: once every
        output geometry has been seen, ``allocations`` stops moving and
        ``hits`` tracks ``requests`` one-for-one.
        """
        return self.requests - self.allocations

    def clear(self) -> None:
        """Drop every cached buffer (e.g. after an input-resolution change)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def __repr__(self) -> str:
        return f"BufferPool({len(self)} buffers, {self.nbytes / 1024 ** 2:.2f} MiB)"


class LifetimePlanner:
    """Cross-layer buffer lifetime planning: assign pool keys at compile time.

    The compiled pipeline is a straight line: each step reads the previous
    step's output and hands its own output forward.  Two liveness facts
    follow, and each one collapses a whole class of buffers onto shared
    storage (the pool still distinguishes shapes, so sharing kicks in
    whenever two steps agree on shape and dtype):

    * **Activations** (step outputs) are dead once the *next* output has
      been consumed — at most two are live at any instant: a step's input
      and the output it is writing.  Outputs therefore ping-pong between two
      arenas, ``("act", 0)`` and ``("act", 1)``: the planner alternates the
      parity per allocating step, so a step always writes the arena its
      input does *not* occupy.
    * **Scratch** (``im2col`` columns, squared columns, per-projection
      panels) is dead the moment its step returns.  Each *role* maps to one
      arena shared by every step — distinct roles never alias within a step,
      and across steps the previous tenant is already dead.

    Residual regions break the straight-line assumption: a block holds its
    input alive across the whole inner chain.  Rules wrap such regions in
    :meth:`pinned`, which reverts activation keys to private per-step keys
    (and leaves the shared parity counter untouched) while keeping scratch
    sharing, which remains safe.

    With ``enabled=False`` every key is private — the planner degrades to
    the historical one-namespace-per-step behaviour (``optimize="none"``).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._parity = 0
        self._pinned_depth = 0

    def activation(self, step_key: Hashable, role: str = "out") -> Hashable:
        """Pool key for a step's output buffer."""
        if not self.enabled or self._pinned_depth:
            return (step_key, role)
        self._parity ^= 1
        return ("act", self._parity)

    def scratch(self, step_key: Hashable, role: str) -> Hashable:
        """Pool key for within-step scratch (dead when the step returns)."""
        if not self.enabled:
            return (step_key, role)
        return ("scratch", role)

    @contextmanager
    def pinned(self):
        """Suspend activation sharing while a region holds inputs alive."""
        self._pinned_depth += 1
        try:
            yield self
        finally:
            self._pinned_depth -= 1
