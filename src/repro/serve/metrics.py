"""Latency distributions and outcome counters for the serving data plane.

The first serving PR tracked running means only — fine for spotting a dead
server, useless for capacity work: a mean hides exactly the tail that SLOs
are written about, and MLSYSIM-style capacity models need per-stage latency
*distributions*, not one number.  This module keeps three kinds of state:

* :class:`ReservoirSample` — a fixed-memory uniform sample of a latency
  stream (Vitter's algorithm R) from which p50/p95/p99 are read at any
  moment.  Bounded memory, every request has an equal chance of being in
  the sample, and the RNG is seeded so tests are deterministic.
* :class:`EndpointMetrics` — per-HTTP-endpoint counters + a latency
  reservoir (what the *client* experienced at our front door).
* :class:`StageMetrics` — the pool's per-stage reservoirs: ``queue`` (time
  in the backlog before dispatch), ``transport`` (IPC both ways: frame
  writes, queue hops, response copy-out) and ``compute`` (the worker's
  forward), plus end-to-end ``total``.  Stages are measured as *durations*
  on whichever side owns them, so no cross-process clock comparison is
  ever needed.

Everything serializes into ``GET /stats``; the field set is drift-tested
against ``docs/serving.md`` so the documentation cannot rot.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

#: percentiles every latency summary reports, in order.
PERCENTILES = (50, 95, 99)

#: default reservoir size — large enough that p99 of a steady stream is
#: estimated from ~5 samples above it, small enough to forget about memory.
RESERVOIR_CAPACITY = 512


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (which may be unsorted).

    Nearest-rank (not interpolated) so the result is always a latency that
    actually happened — tails should never be softened by averaging.
    Returns 0.0 for an empty list.
    """
    if not values:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(values)
    rank = max(int(-(-q * len(ordered) // 100)), 1)  # ceil without floats
    return ordered[rank - 1]


class ReservoirSample:
    """Uniform fixed-size sample of an unbounded stream (algorithm R).

    Thread-safe; every ``add`` is O(1).  ``seed`` pins the replacement RNG
    so repeated runs sample identically — CI assertions on percentiles stay
    reproducible.
    """

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 17) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._values: List[float] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.count = 0          # stream length, not sample size
        self.total = 0.0
        self.max_value = 0.0

    def add(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value > self.max_value:
                self.max_value = value
            if len(self._values) < self.capacity:
                self._values.append(value)
                return
            index = self._rng.randrange(self.count)
            if index < self.capacity:
                self._values[index] = value

    def values(self) -> List[float]:
        with self._lock:
            return list(self._values)

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the current sample (0.0 when empty).

        The read side of adaptive control loops — the pipeline-depth
        controller asks a stage reservoir for its p50/p95/p99 on every
        re-target tick.
        """
        return percentile(self.values(), q)

    def percentiles(self, qs: Iterable[float] = PERCENTILES) -> Dict[str, float]:
        values = self.values()
        return {f"p{q:g}": round(percentile(values, q), 3) for q in qs}

    def summary(self) -> Dict[str, Any]:
        """count/mean/max plus the standard percentiles, JSON-ready."""
        with self._lock:
            count, total, max_value = self.count, self.total, self.max_value
            values = list(self._values)
        return {
            "count": count,
            "mean_ms": round(total / count, 3) if count else 0.0,
            "max_ms": round(max_value, 3),
            **{f"p{q:g}_ms": round(percentile(values, q), 3) for q in PERCENTILES},
        }


#: the pool's pipeline stages, in causal order.
STAGES = ("queue", "transport", "compute", "total")


class StageMetrics:
    """Per-stage latency reservoirs for the pool's request pipeline."""

    def __init__(self, capacity: int = RESERVOIR_CAPACITY) -> None:
        self._reservoirs = {stage: ReservoirSample(capacity, seed=11 + i)
                            for i, stage in enumerate(STAGES)}

    def record(self, queue_ms: float, transport_ms: float, compute_ms: float,
               total_ms: float) -> None:
        self._reservoirs["queue"].add(queue_ms)
        self._reservoirs["transport"].add(transport_ms)
        self._reservoirs["compute"].add(compute_ms)
        self._reservoirs["total"].add(total_ms)

    def stage(self, name: str) -> ReservoirSample:
        return self._reservoirs[name]

    def to_dict(self) -> Dict[str, Any]:
        return {stage: reservoir.summary()
                for stage, reservoir in self._reservoirs.items()}


class EndpointMetrics:
    """Counters + latency distribution for one endpoint."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0       # 4xx: the caller's fault
        self.failures = 0     # 5xx: our fault
        self.shed = 0         # backpressure rejections (429 budget + 503 load)
        self.reservoir = ReservoirSample()

    def record(self, latency_ms: float, status: int, shed: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if 400 <= status < 500:
                self.errors += 1
            elif status >= 500:
                self.failures += 1
            if shed:
                self.shed += 1
        self.reservoir.add(latency_ms)

    def to_dict(self) -> Dict[str, Any]:
        latency = self.reservoir.summary()
        with self._lock:
            return {
                "requests": self.requests,
                "errors_4xx": self.errors,
                "failures_5xx": self.failures,
                "shed": self.shed,
                "mean_ms": latency["mean_ms"],
                "max_ms": latency["max_ms"],
                "p50_ms": latency["p50_ms"],
                "p95_ms": latency["p95_ms"],
                "p99_ms": latency["p99_ms"],
            }


class ServingMetrics:
    """All endpoint counters plus uptime/throughput for ``GET /stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self.started_at = time.time()

    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            metrics = self._endpoints.get(name)
            if metrics is None:
                metrics = self._endpoints[name] = EndpointMetrics(name)
            return metrics

    def to_dict(self) -> Dict[str, Any]:
        uptime = time.time() - self.started_at
        with self._lock:
            endpoints = {name: metrics.to_dict()
                         for name, metrics in sorted(self._endpoints.items())}
        predict = endpoints.get("/predict", {})
        served = predict.get("requests", 0)
        return {
            "uptime_seconds": round(uptime, 3),
            "throughput_rps": round(served / uptime, 3) if uptime > 0 else 0.0,
            "endpoints": endpoints,
        }


class StageClock:
    """Tiny helper for measuring one duration on whichever side owns it."""

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = time.perf_counter()

    def ms(self) -> float:
        return (time.perf_counter() - self.started) * 1000.0


def split_batch_timings(compute_ms: Optional[List[float]], size: int) -> List[float]:
    """Per-request compute times for a batch, tolerant of lossy workers.

    Workers report one compute duration per request (exact mode) or a single
    fused duration (fused mode); either way every request in the batch gets
    a number.
    """
    if not compute_ms:
        return [0.0] * size
    if len(compute_ms) == size:
        return list(compute_ms)
    share = sum(compute_ms) / size
    return [share] * size
