"""Integration tests across the newer subsystems (ppml, explore, cli, plots).

Each test exercises a complete user workflow end to end rather than a single
module: converting a model for private inference and still training it,
exploring structures and persisting the winner, and driving the same flows
through the CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import explore, models, nn, ppml
from repro.analysis import ascii_bar_chart, sparkline
from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.builder import AutoBuilder, QuadraticModelConfig
from repro.cli import main as cli_main
from repro.data.synthetic import SyntheticImageClassification
from repro.training import train_classifier
from repro.utils import load_checkpoint, save_checkpoint, seed_everything


def synthetic_task(samples: int = 64, classes: int = 4, image_size: int = 16):
    train = SyntheticImageClassification(num_samples=samples, num_classes=classes,
                                         image_size=image_size, seed=0, split_seed=0)
    test = SyntheticImageClassification(num_samples=samples // 2, num_classes=classes,
                                        image_size=image_size, seed=0, split_seed=1)
    return train, test


def test_autobuild_then_ppml_convert_then_train():
    """First-order model → auto-built QDNN → PPML-friendly → still learns."""
    seed_everything(1)
    train_set, test_set = synthetic_task()
    model = models.vgg_from_cfg([16, "M", 32, "M"], num_classes=4,
                                config=QuadraticModelConfig(neuron_type="first_order",
                                                            width_multiplier=0.5))

    conversion = AutoBuilder(neuron_type="OURS").convert(model)
    assert conversion.converted_layers == 2
    friendly, report = ppml.to_ppml_friendly(model, strategy="quadratic_no_relu")
    assert report.relu_free

    cost = ppml.analyse_model(friendly, (3, 16, 16), protocol="delphi")
    assert cost.relu_count == 0

    with np.errstate(all="ignore"):
        history = train_classifier(friendly, train_set, test_set, epochs=2, batch_size=16,
                                   lr=0.05, max_batches_per_epoch=3, seed=1)
    assert history.final_train_accuracy > 1.0 / 4


def test_explore_then_checkpoint_best_candidate(tmp_path):
    """Search for a structure, persist the winner, reload it bit-exactly."""
    seed_everything(2)
    train_set, test_set = synthetic_task()
    space = explore.SearchSpace(min_stages=2, max_stages=2, min_convs_per_stage=1,
                                max_convs_per_stage=1, width_choices=(8, 16),
                                neuron_types=("OURS",))
    evaluator = explore.ProxyEvaluator(train_set, test_set, num_classes=4, image_size=16,
                                       epochs=1, batch_size=16, max_batches_per_epoch=2,
                                       width_multiplier=0.5, seed=2)
    with np.errstate(all="ignore"):
        result = explore.random_search(space, evaluator, budget=3, seed=2)
    best = result.best

    # Rebuild, train briefly, checkpoint and reload into a fresh instance.
    model = best.genome.build(num_classes=4, width_multiplier=0.5)
    with np.errstate(all="ignore"):
        train_classifier(model, train_set, epochs=1, batch_size=16, lr=0.05,
                         max_batches_per_epoch=2, seed=2)
    path = str(tmp_path / "best_candidate.npz")
    save_checkpoint(model, path)

    restored = best.genome.build(num_classes=4, width_multiplier=0.5)
    load_checkpoint(restored, path)
    probe = Tensor(np.random.default_rng(0).normal(size=(2, 3, 16, 16)).astype(np.float32))
    model.train(False)
    restored.train(False)
    with no_grad():
        np.testing.assert_allclose(model(probe).data, restored(probe).data, rtol=1e-6,
                                   atol=1e-6)


def test_cost_report_feeds_ascii_charts():
    """The PPML cost report and the plotting helpers compose without glue code."""
    model = models.vgg_from_cfg([16, "M", 32, "M"], num_classes=4,
                                config=QuadraticModelConfig(neuron_type="first_order",
                                                            width_multiplier=0.5))
    report = ppml.analyse_model(model, (3, 16, 16), protocol="delphi")
    labels = [layer.operations.name for layer in report.layers]
    latencies = [layer.total.milliseconds for layer in report.layers]
    chart = ascii_bar_chart(labels, latencies, width=30, title="per-layer online latency")
    assert "per-layer online latency" in chart
    assert len(chart.splitlines()) == len(labels) + 1
    # Sparkline over the same series is one character per layer.
    assert len(sparkline(latencies)) == len(latencies)


def test_cli_convert_matches_library_parameter_ratio(capsys):
    """The CLI and the library report the same conversion parameter ratio."""
    seed_everything(3)
    library_model = models.vgg8(num_classes=10, neuron_type="first_order",
                                width_multiplier=0.25)
    library_report = AutoBuilder(neuron_type="OURS").convert(library_model)

    assert cli_main(["convert", "--model", "vgg8", "--neuron-type", "OURS",
                     "--width-multiplier", "0.25", "--num-classes", "10", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    ratio_line = next(line for line in out.splitlines() if "parameter ratio" in line)
    cli_ratio = float(ratio_line.split("|")[-1].strip().rstrip("x"))
    assert cli_ratio == pytest.approx(library_report.parameter_ratio, abs=0.01)
