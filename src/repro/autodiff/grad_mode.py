"""Global gradient-tracking mode.

The autodiff engine records an operation graph only while gradient mode is
enabled.  ``no_grad`` mirrors ``torch.no_grad``: inside the context, newly
created tensors never receive a ``grad_fn`` and never require gradients, which
makes pure inference both faster and lighter on memory.

With gradient mode disabled, :meth:`Function.apply` takes a slimmer dispatch
path: no parent tracking and no ``requires_grad`` propagation scan at all.
``inference_mode`` is the serving-flavoured spelling of the same switch, used
by :mod:`repro.inference`.
"""

from __future__ import annotations

import contextlib
import threading


class _GradMode(threading.local):
    """Thread-local flag controlling whether operations are recorded."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = True


_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations are currently being recorded."""
    return _mode.enabled


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient recording."""
    _mode.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Example
    -------
    >>> from repro.autodiff import no_grad, tensor
    >>> with no_grad():
    ...     y = tensor([1.0], requires_grad=True) * 2
    >>> y.requires_grad
    False
    """
    previous = _mode.enabled
    _mode.enabled = False
    try:
        yield
    finally:
        _mode.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording inside ``no_grad``."""
    previous = _mode.enabled
    _mode.enabled = True
    try:
        yield
    finally:
        _mode.enabled = previous


@contextlib.contextmanager
def inference_mode():
    """Context manager for pure-inference execution.

    Today this delegates to :func:`no_grad` — same semantics, same fast
    dispatch path.  It exists as a distinct entry point so serving code reads
    as what it is; the compiled forward paths in :mod:`repro.inference` run
    inside it.
    """
    with no_grad():
        yield
