"""Image classification with the QDNN auto-builder (the paper's main workflow).

Run with::

    python examples/image_classification.py

Each Table-3-style row is one declarative :class:`~repro.experiment.ExperimentSpec`:
the first-order baseline is ``ModelSpec(neuron_type="first_order")``, and the
QuadraNN variants simply set ``auto_build=True`` so the
:class:`~repro.builder.AutoBuilder` converts the first-order structure to the
paper's quadratic neuron during ``Experiment.build()``.  The
``fit``/``evaluate``/``profile`` steps then run through the same facade — a
miniature version of the paper's Table 3 experiment with no hand-wiring.
"""

from repro.experiment import DataSpec, Experiment, ExperimentSpec, ModelSpec, ProfileSpec, TrainSpec
from repro.utils import print_table

EPOCHS = 3
BATCH_SIZE = 32
IMAGE_SIZE = 16
NUM_CLASSES = 6


def variant_spec(name: str, neuron_type: str, hybrid: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        seed=1,
        model=ModelSpec(
            name="small_convnet",
            neuron_type=neuron_type,
            num_classes=NUM_CLASSES,
            width_multiplier=0.5,
            hybrid_bp=hybrid,
            auto_build=neuron_type != "first_order",
            extra={"image_size": IMAGE_SIZE},
        ),
        data=DataSpec(num_samples=256, test_samples=128, num_classes=NUM_CLASSES,
                      image_size=IMAGE_SIZE),
        train=TrainSpec(epochs=EPOCHS, batch_size=BATCH_SIZE, lr=0.05),
        profile=ProfileSpec(batch_size=BATCH_SIZE),
        steps=["build", "fit", "profile"],
    )


def main() -> None:
    rows = []
    for name, neuron_type, hybrid in (("First-order CNN", "first_order", False),
                                      ("QuadraNN (auto-built)", "OURS", False),
                                      ("QuadraNN (hybrid BP)", "OURS", True)):
        experiment = Experiment(variant_spec(name, neuron_type, hybrid))
        experiment.build()
        if neuron_type != "first_order":
            print(f"{name}: auto-built with {experiment.results['build']['parameters']:,} "
                  f"parameters")
        history = experiment.fit()
        profile = experiment.profile()
        rows.append([
            name,
            f"{profile['parameters']:,}",
            f"{profile['training_memory_bytes'] / 2**20:.1f} MiB",
            f"{history.final_train_accuracy:.3f}",
            f"{history.best_test_accuracy:.3f}",
        ])

    print()
    print_table(["Model", "#Param", "Train memory", "Train acc", "Test acc"], rows,
                title="First-order vs. auto-built QuadraNN on the synthetic CIFAR stand-in")


if __name__ == "__main__":
    main()
