"""Generative-model metrics: Inception Score and FID with a proxy feature network.

The paper reports IS (Salimans et al., 2016) and FID (Heusel et al., 2017)
computed from an ImageNet Inception-v3.  Offline, the same *construction* of
both metrics is preserved but the feature extractor is a small convolutional
classifier trained on the synthetic image distribution's mode labels (the
"proxy inception").  Because both the first-order SNGAN and the quadratic
QuadraNN generator are scored by the same fixed proxy network, the relative
comparison of Table 5 carries over even though the absolute numbers are on a
different scale than the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import linalg

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..data.synthetic.generation import SyntheticGenerationDataset
from ..models.simple import SmallConvNet
from ..nn import functional as F
from ..nn.losses import CrossEntropyLoss
from ..optim.adam import Adam


@dataclass
class GenerationScores:
    """IS and FID of a batch of generated images."""

    inception_score: float
    inception_score_std: float
    fid: float


class ProxyInception:
    """A small classifier over the synthetic image distribution's modes.

    Provides class probabilities (for IS) and penultimate-layer features
    (for FID).  Train once, reuse for every generator under comparison.
    """

    def __init__(self, dataset: SyntheticGenerationDataset, epochs: int = 3,
                 batch_size: int = 64, lr: float = 2e-3, seed: int = 0) -> None:
        self.dataset = dataset
        self.model = SmallConvNet(num_classes=dataset.num_modes,
                                  in_channels=dataset.channels,
                                  image_size=dataset.image_size)
        self._train(epochs=epochs, batch_size=batch_size, lr=lr, seed=seed)

    def _train(self, epochs: int, batch_size: int, lr: float, seed: int) -> None:
        rng = np.random.default_rng(seed)
        images = self.dataset.images
        labels = self.dataset.modes
        optimizer = Adam(self.model.parameters(), lr=lr)
        loss_fn = CrossEntropyLoss()
        n = len(images)
        self.model.train(True)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                optimizer.zero_grad()
                logits = self.model(Tensor(images[idx]))
                loss = loss_fn(logits, labels[idx])
                loss.backward()
                optimizer.step()
        self.model.train(False)

    # ------------------------------------------------------------------ probes
    def probabilities(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class probabilities p(y|x) under the proxy classifier."""
        outputs = []
        with no_grad():
            for start in range(0, len(images), batch_size):
                logits = self.model(Tensor(images[start:start + batch_size]))
                outputs.append(F.softmax(logits, axis=-1).data)
        return np.concatenate(outputs, axis=0)

    def features(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Penultimate-layer activations used for FID."""
        feats = []
        with no_grad():
            for start in range(0, len(images), batch_size):
                x = Tensor(images[start:start + batch_size])
                h = self.model.features(x)
                h = self.model.classifier[0](h)       # Flatten
                h = self.model.classifier[1](h)       # Linear → 128
                feats.append(h.relu().data)
        return np.concatenate(feats, axis=0)


def inception_score(probabilities: np.ndarray, splits: int = 4) -> Tuple[float, float]:
    """IS = exp(E_x KL(p(y|x) || p(y))), mean ± std over splits."""
    probabilities = np.clip(probabilities, 1e-12, 1.0)
    scores = []
    n = len(probabilities)
    split_size = max(n // splits, 1)
    for i in range(0, n, split_size):
        part = probabilities[i:i + split_size]
        marginal = part.mean(axis=0, keepdims=True)
        kl = (part * (np.log(part) - np.log(marginal))).sum(axis=1)
        scores.append(float(np.exp(kl.mean())))
    return float(np.mean(scores)), float(np.std(scores))


def frechet_distance(features_real: np.ndarray, features_fake: np.ndarray,
                     eps: float = 1e-6) -> float:
    """Fréchet distance between Gaussian fits of real and generated features."""
    mu_r, mu_f = features_real.mean(axis=0), features_fake.mean(axis=0)
    cov_r = np.cov(features_real, rowvar=False) + eps * np.eye(features_real.shape[1])
    cov_f = np.cov(features_fake, rowvar=False) + eps * np.eye(features_fake.shape[1])
    diff = mu_r - mu_f
    covmean, _ = linalg.sqrtm(cov_r @ cov_f, disp=False)
    if np.iscomplexobj(covmean):
        covmean = covmean.real
    return float(diff @ diff + np.trace(cov_r) + np.trace(cov_f) - 2.0 * np.trace(covmean))


def evaluate_generator(proxy: ProxyInception, generated: np.ndarray,
                       real: Optional[np.ndarray] = None,
                       splits: int = 4) -> GenerationScores:
    """Score generated images with the proxy IS and (if real images given) FID."""
    probs = proxy.probabilities(generated)
    is_mean, is_std = inception_score(probs, splits=splits)
    fid = float("nan")
    if real is not None:
        fid = frechet_distance(proxy.features(real), proxy.features(generated))
    return GenerationScores(inception_score=is_mean, inception_score_std=is_std, fid=fid)
