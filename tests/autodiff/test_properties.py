"""Property-based tests (hypothesis) for core autodiff invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, tensor
from repro.autodiff.function import unbroadcast

_float_arrays = arrays(
    dtype=np.float32,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
)


@settings(max_examples=40, deadline=None)
@given(_float_arrays)
def test_sum_gradient_is_ones(data):
    """d(sum(x))/dx == 1 for any shape."""
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    assert t.grad.shape == data.shape
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(_float_arrays)
def test_addition_gradient_symmetry(data):
    """Gradients of a+b match for both operands."""
    a = Tensor(data, requires_grad=True)
    b = Tensor(data.copy(), requires_grad=True)
    (a + b).sum().backward()
    assert np.allclose(a.grad, b.grad)


@settings(max_examples=40, deadline=None)
@given(_float_arrays)
def test_mul_gradient_equals_other_operand(data):
    a = Tensor(data, requires_grad=True)
    b = Tensor(2.0 * np.ones_like(data), requires_grad=True)
    (a * b).sum().backward()
    assert np.allclose(a.grad, 2.0)
    assert np.allclose(b.grad, data, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(_float_arrays)
def test_reshape_preserves_gradient_total(data):
    """Reshape is a bijection: gradient mass is preserved element-wise."""
    t = Tensor(data, requires_grad=True)
    t.reshape(-1).sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(_float_arrays)
def test_relu_gradient_is_indicator(data):
    t = Tensor(data, requires_grad=True)
    t.relu().sum().backward()
    assert np.allclose(t.grad, (data > 0).astype(np.float32))


@settings(max_examples=40, deadline=None)
@given(_float_arrays)
def test_double_negation_identity(data):
    t = Tensor(data, requires_grad=True)
    out = -(-t)
    assert np.allclose(out.data, data, atol=1e-6)
    out.sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=30, deadline=None)
@given(
    arrays(dtype=np.float32, shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
           elements=st.floats(-5, 5, allow_nan=False, width=32)),
)
def test_unbroadcast_restores_shape(grad):
    """unbroadcast reduces any broadcast gradient back to the original shape."""
    original_shape = (1, grad.shape[1])
    broadcast = np.broadcast_to(grad, (3,) + grad.shape).copy()
    reduced = unbroadcast(broadcast, original_shape)
    assert reduced.shape == original_shape
    # Total mass must be preserved by the summation.
    assert np.allclose(reduced.sum(), broadcast.sum(), rtol=1e-4, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6))
def test_matmul_gradient_shapes_always_match(n, k, m):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(n, k)).astype(np.float32), requires_grad=True)
    b = Tensor(rng.normal(size=(k, m)).astype(np.float32), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (n, k)
    assert b.grad.shape == (k, m)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3), st.integers(4, 9), st.integers(1, 3))
def test_conv_output_spatial_size_invariant(batch, channels, size, kernel):
    """Padded 'same' convolution never changes spatial dimensions."""
    from repro.autodiff import randn

    if kernel % 2 == 0:
        kernel += 1
    x = randn(batch, channels, size, size)
    w = randn(2, channels, kernel, kernel)
    out = x.conv2d(w, stride=1, padding=kernel // 2)
    assert out.shape == (batch, 2, size, size)


@settings(max_examples=25, deadline=None)
@given(
    arrays(dtype=np.float32, shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
           elements=st.floats(-3, 3, allow_nan=False, width=32)),
)
def test_softmax_rows_sum_to_one(data):
    from repro.nn import functional as F

    probs = F.softmax(Tensor(data), axis=-1)
    assert np.allclose(probs.data.sum(axis=-1), 1.0, atol=1e-5)
    assert np.all(probs.data >= 0)
