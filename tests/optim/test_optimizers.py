"""Tests for SGD / Adam optimizers and LR schedulers."""

import numpy as np
import pytest

import repro.nn as nn
import repro.optim as optim
from repro.autodiff import Tensor, randn
from repro.nn.parameter import Parameter


def quadratic_bowl_step(optimizer, param):
    """One optimisation step on f(w) = ||w||^2 / 2 whose gradient is w."""
    optimizer.zero_grad()
    param.grad = param.data.copy()
    optimizer.step()


class TestSGD:
    def test_vanilla_step_matches_formula(self):
        p = Parameter(np.array([1.0, -2.0], dtype=np.float32))
        opt = optim.SGD([p], lr=0.1)
        p.grad = np.array([0.5, 0.5], dtype=np.float32)
        opt.step()
        assert np.allclose(p.data, [0.95, -2.05])

    def test_converges_on_quadratic_bowl(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = optim.SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_bowl_step(opt, p)
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.array([5.0], dtype=np.float32))
        p_momentum = Parameter(np.array([5.0], dtype=np.float32))
        opt_plain = optim.SGD([p_plain], lr=0.01)
        opt_momentum = optim.SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_bowl_step(opt_plain, p_plain)
            quadratic_bowl_step(opt_momentum, p_momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = optim.SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = optim.SGD([p], lr=0.1)
        opt.step()  # no grad set: should not move or crash
        assert np.allclose(p.data, [1.0])

    def test_frozen_parameters_not_updated(self):
        p = Parameter(np.array([1.0], dtype=np.float32), requires_grad=False)
        opt = optim.SGD([p], lr=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        assert np.allclose(p.data, [1.0])

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            optim.SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            optim.SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_zero_grad_clears(self):
        p = Parameter(np.ones(3))
        opt = optim.SGD([p], lr=0.1)
        p.grad = np.ones(3, dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_converges_on_quadratic_bowl(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = optim.Adam([p], lr=0.2)
        for _ in range(200):
            quadratic_bowl_step(opt, p)
        assert np.abs(p.data).max() < 1e-2

    def test_first_step_size_approximately_lr(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.array([100.0], dtype=np.float32)
        opt.step()
        # Adam normalises by the gradient magnitude: first step ≈ lr.
        assert abs((1.0 - p.data[0]) - 0.1) < 0.01

    def test_adamw_decouples_weight_decay(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = optim.AdamW([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.99, abs=1e-5)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            optim.Adam([Parameter(np.zeros(1))], betas=(1.5, 0.9))

    def test_trains_small_network_better_than_init(self):
        net = nn.Sequential(nn.Linear(4, 16), nn.ReLU(), nn.Linear(16, 1))
        opt = optim.Adam(net.parameters(), lr=1e-2)
        x = randn(32, 4)
        y = Tensor((x.data[:, :1] ** 2).astype(np.float32))
        loss_fn = nn.MSELoss()
        first = loss_fn(net(x), y).item()
        for _ in range(50):
            opt.zero_grad()
            loss = loss_fn(net(x), y)
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5


class TestSchedulers:
    def _make(self, lr=0.1):
        p = Parameter(np.zeros(1))
        return optim.SGD([p], lr=lr)

    def test_cosine_annealing_endpoints(self):
        opt = self._make(lr=0.1)
        sched = optim.CosineAnnealingLR(opt, t_max=10)
        assert opt.lr == pytest.approx(0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-6)

    def test_cosine_midpoint_half(self):
        opt = self._make(lr=0.2)
        sched = optim.CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.1, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        opt = self._make(0.1)
        sched = optim.CosineAnnealingLR(opt, t_max=20)
        values = []
        for _ in range(20):
            values.append(opt.lr)
            sched.step()
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_step_lr(self):
        opt = self._make(0.1)
        sched = optim.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            lrs.append(round(opt.lr, 6))
            sched.step()
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[2] == pytest.approx(0.01)
        assert lrs[4] == pytest.approx(0.001)

    def test_multistep_lr_matches_paper_recipe(self):
        # SSD recipe: decay 10x at the two milestones.
        opt = self._make(1e-3)
        sched = optim.MultiStepLR(opt, milestones=[8, 10], gamma=0.1)
        for _ in range(8):
            sched.step()
        assert opt.lr == pytest.approx(1e-4, rel=1e-5)
        for _ in range(2):
            sched.step()
        assert opt.lr == pytest.approx(1e-5, rel=1e-5)

    def test_lambda_lr(self):
        opt = self._make(0.1)
        sched = optim.LambdaLR(opt, lambda epoch: 1.0 / (epoch + 1))
        sched.step()
        assert opt.lr == pytest.approx(0.05)

    def test_warmup_cosine(self):
        opt = self._make(0.1)
        sched = optim.WarmupCosineLR(opt, warmup_steps=5, t_max=10)
        assert opt.lr < 0.1  # still warming up at step 0
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.1, rel=1e-5)

    def test_param_groups_scaled_together(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = optim.SGD([{"params": [p1], "lr": 0.1}, {"params": [p2], "lr": 0.01}], lr=0.1)
        sched = optim.StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.05)
        assert opt.param_groups[1]["lr"] == pytest.approx(0.005)
