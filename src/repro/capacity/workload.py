"""What one request costs, in kernel-class work counts.

The planner prices work the way the compiled inference path executes it:
:func:`repro.profiler.profile_model` pushes a probe through the model (the
same ``inference_plan()`` flattening the compiler walks) and reports exact
per-layer MACs; this module buckets those MACs by the *kernel class* that
will execute them, because a GEMM MAC and an im2col-conv MAC sustain very
different rates on the same host:

``conv_macs``
    layers lowered through ``Backend.im2col`` + ``Backend.conv_project``
    (``Conv2d`` and every quadratic conv variant — their extra first-order
    responses and element-wise combines are already folded into the
    profiler's MAC counts).
``gemm_macs``
    layers lowered to ``Backend.gemm`` (``Linear`` and the quadratic linear
    variants).
``elementwise_ops``
    everything else the profiler counted (BatchNorm-style per-element
    work), priced at the element-wise glue rate.
``pool_window_elems``
    windowed-reduction work (max/avg pooling): output elements times the
    window each one reduces over.  Pooling has no parameters and almost no
    MACs, so the profiler skips it — but the windowed kernels run far
    below element-wise rates (strided window views defeat vectorization),
    and on small backbones they are a *plurality* of inference time.  A
    separate probe forward collects them here.

Secure serving adds a second ledger: the per-request
:class:`~repro.ppml.offline.OfflineBudget` (Beaver triples, garbled labels)
and the protocol's online structure (communication rounds, GC/mult wire
costs) from a measured :class:`~repro.ppml.ProtocolTrace` — the same trace
the worker pool's warm-up forward produces to size its triple pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RequestWork", "SecureWork", "request_work", "secure_work"]

#: layer-type substrings → kernel class (checked in order; first hit wins).
_KERNEL_CLASSES = (
    ("Conv", "conv"),
    ("Linear", "gemm"),
    ("MLP", "gemm"),
)


def classify_layer(layer_type: str) -> str:
    """Kernel class (``conv``/``gemm``/``elementwise``) of a profiled layer."""
    for needle, kernel in _KERNEL_CLASSES:
        if needle in layer_type:
            return kernel
    return "elementwise"


@dataclass(frozen=True)
class RequestWork:
    """Per-request (batch-of-1) work counts of one model."""

    conv_macs: int
    gemm_macs: int
    elementwise_ops: int
    input_bytes: int
    output_bytes: int
    layers: int
    pool_window_elems: int = 0

    @property
    def total_macs(self) -> int:
        return self.conv_macs + self.gemm_macs

    @property
    def transport_bytes(self) -> int:
        """Payload bytes one request moves through the data plane (in + out)."""
        return self.input_bytes + self.output_bytes

    def to_dict(self) -> Dict[str, int]:
        return {
            "conv_macs": self.conv_macs,
            "gemm_macs": self.gemm_macs,
            "elementwise_ops": self.elementwise_ops,
            "total_macs": self.total_macs,
            "pool_window_elems": self.pool_window_elems,
            "input_bytes": self.input_bytes,
            "output_bytes": self.output_bytes,
            "layers": self.layers,
        }


@dataclass(frozen=True)
class SecureWork:
    """Per-request secure-serving structure from one measured trace."""

    rounds: int
    mult_ops: int
    relu_ops: int
    truncations: int
    online_ms: float            # trace priced under its protocol (incl. RTTs)
    round_trip_us: float
    triples_per_request: int
    labels_per_request: int

    def to_dict(self) -> Dict[str, float]:
        return {
            "rounds": self.rounds,
            "mult_ops": self.mult_ops,
            "relu_ops": self.relu_ops,
            "truncations": self.truncations,
            "online_ms": self.online_ms,
            "round_trip_us": self.round_trip_us,
            "triples_per_request": self.triples_per_request,
            "labels_per_request": self.labels_per_request,
        }


def _pool_window_elems(model, shape: Tuple[int, ...]) -> int:
    """Windowed-reduction work of one batch-1 forward (output elems x window).

    The profiler only reports parametric layers, so pooling — which the
    compiled path executes as real strided-window kernels — is collected
    here with its own probe forward.  For fixed-window pools the window is
    ``kernel_size²``; for global/adaptive pools it is the input-to-output
    element ratio (every input element is read once).
    """
    from ..autodiff import no_grad
    from ..autodiff.tensor import Tensor
    from ..nn.layers.pooling import (AdaptiveAvgPool2d, AvgPool2d,
                                     GlobalAvgPool2d, MaxPool2d)

    counts = []
    removers = []

    def make_hook(module):
        def hook(_module, inputs, output):
            if not isinstance(output, Tensor):
                return
            out_elems = int(np.prod(output.shape))
            kernel = getattr(module, "kernel_size", None)
            if isinstance(kernel, (tuple, list)):
                window = int(kernel[0]) * int(kernel[1])
            elif isinstance(kernel, int):
                window = kernel * kernel
            else:                       # global/adaptive: reads all of the input
                in_elems = int(np.prod(inputs[0].shape)) if inputs else out_elems
                window = max(1, in_elems // max(1, out_elems))
            counts.append(out_elems * window)
        return hook

    for _name, module in model.named_modules():
        if isinstance(module, (AdaptiveAvgPool2d, AvgPool2d,
                               GlobalAvgPool2d, MaxPool2d)):
            removers.append(module.register_forward_hook(make_hook(module)))
    if not removers:
        return 0
    try:
        probe = Tensor(np.zeros((1,) + shape, dtype=np.float32))
        was_training = model.training
        model.train(False)
        with no_grad():
            model(probe)
        model.train(was_training)
    finally:
        for remove in removers:
            remove()
    return int(sum(counts))


def request_work(model, input_shape: Sequence[int],
                 num_classes: Optional[int] = None) -> RequestWork:
    """Profile ``model`` at batch 1 and bucket its work by kernel class.

    ``input_shape`` is the per-sample shape (no batch dimension).  The
    output payload size is taken from ``num_classes`` when given, else from
    the probe forward's final layer profile.
    """
    from ..profiler.flops import profile_model

    shape = tuple(int(dim) for dim in input_shape)
    profile = profile_model(model, shape, batch_size=1)
    counters = {"conv": 0, "gemm": 0, "elementwise": 0}
    last_shape: Tuple[int, ...] = (1,)
    for layer in profile.layers:
        counters[classify_layer(layer.layer_type)] += layer.macs
        if layer.output_shape:
            last_shape = layer.output_shape
    if num_classes is not None:
        output_elements = int(num_classes)
    else:
        output_elements = int(np.prod(last_shape))
    itemsize = np.dtype(np.float32).itemsize
    return RequestWork(
        conv_macs=int(counters["conv"]),
        gemm_macs=int(counters["gemm"]),
        elementwise_ops=int(counters["elementwise"]),
        input_bytes=int(np.prod(shape)) * itemsize,
        output_bytes=output_elements * itemsize,
        layers=len(profile.layers),
        pool_window_elems=_pool_window_elems(model, shape),
    )


def secure_work(trace) -> SecureWork:
    """Distill one :class:`~repro.ppml.ProtocolTrace` into planner inputs."""
    from ..ppml.offline import OfflineBudget

    estimate = trace.estimate()
    budget = OfflineBudget.from_trace(trace)
    return SecureWork(
        rounds=int(trace.total_rounds),
        mult_ops=int(trace.total_mult_ops),
        relu_ops=int(trace.total_relu_ops),
        truncations=int(trace.total_truncations),
        online_ms=float(estimate.online_milliseconds),
        round_trip_us=float(estimate.protocol.round_trip_us),
        triples_per_request=budget.triples,
        labels_per_request=budget.labels,
    )
