"""Latency profiling: training and inference time per batch (Table 3 columns)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Module


@dataclass
class LatencyReport:
    """Per-batch timing results in milliseconds."""

    train_ms_per_batch: float
    inference_ms_per_batch: float
    batch_size: int
    warmup_iterations: int
    timed_iterations: int
    #: forward time of the compiled no-grad path (``compiled=True`` only).
    compiled_ms_per_batch: Optional[float] = None
    #: resolved compute-backend name of the compiled timing (None when the
    #: compiled path was not measured).
    compiled_backend: Optional[str] = None

    @property
    def compiled_speedup(self) -> Optional[float]:
        """Eager-inference over compiled-inference time (None if not measured)."""
        if not self.compiled_ms_per_batch:
            return None
        return self.inference_ms_per_batch / self.compiled_ms_per_batch


def _median_ms(samples) -> float:
    return float(np.median(np.asarray(samples)) * 1000.0)


def median_runtime_ms(fn, warmup: int = 1, iterations: int = 3) -> float:
    """Median wall-clock milliseconds of ``fn()`` over ``iterations`` runs.

    The shared timing primitive behind :func:`profile_latency`, the
    ``repro infer`` CLI and the inference benchmark — one definition so the
    three surfaces always measure the same way.
    """
    samples = []
    for i in range(warmup + iterations):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if i >= warmup:
            samples.append(elapsed)
    return _median_ms(samples)


def profile_latency(model: Module, input_shape: Tuple[int, int, int], batch_size: int = 8,
                    num_classes: Optional[int] = None, warmup: int = 1,
                    iterations: int = 3, seed: int = 0,
                    compiled: bool = False, backend=None) -> LatencyReport:
    """Measure train (forward+backward) and inference (forward-only) time per batch.

    The absolute numbers are CPU times on the NumPy substrate; the benchmark
    tables report them alongside the paper's GPU milliseconds because only the
    *relative* ordering between model variants is expected to transfer.

    With ``compiled=True`` the model is additionally lowered through
    :func:`repro.inference.compile_model` and the compiled forward is timed,
    filling ``compiled_ms_per_batch`` in the report.  ``backend`` selects the
    compute backend of that compiled timing (a :mod:`repro.backends` name or
    instance; ``None`` is the reference engine) and the resolved name is
    recorded in ``compiled_backend``.
    """
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    x = Tensor(rng.standard_normal((batch_size, c, h, w)).astype(np.float32))
    labels = rng.integers(0, num_classes, size=batch_size) if num_classes else None
    loss_fn = CrossEntropyLoss()

    # ---- training iteration timing
    def train_step() -> None:
        model.zero_grad()
        out = model(x)
        loss = loss_fn(out, labels) if labels is not None and out.ndim == 2 else out.sum()
        loss.backward()

    model.train(True)
    train_ms = median_runtime_ms(train_step, warmup=warmup, iterations=iterations)
    model.zero_grad()

    # ---- inference timing
    model.train(False)
    with no_grad():
        infer_ms = median_runtime_ms(lambda: model(x), warmup=warmup,
                                     iterations=iterations)
    # ---- compiled inference timing (optional; still in eval mode so any
    # fallback modules see the same semantics as the eager timing above)
    compiled_ms = None
    compiled_backend = None
    if compiled:
        from ..inference import compile_model

        compiled_model = compile_model(model, backend=backend)
        compiled_backend = compiled_model.backend.name
        raw = x.data
        compiled_ms = median_runtime_ms(lambda: compiled_model(raw),
                                        warmup=warmup, iterations=iterations)
    model.train(True)

    return LatencyReport(
        train_ms_per_batch=train_ms,
        inference_ms_per_batch=infer_ms,
        batch_size=batch_size,
        warmup_iterations=warmup,
        timed_iterations=iterations,
        compiled_ms_per_batch=compiled_ms,
        compiled_backend=compiled_backend,
    )
