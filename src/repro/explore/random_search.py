"""Random search over the QDNN architecture space.

Random search is the standard baseline for design-space exploration
(Radosavovic et al., whom the paper cites for the capacity argument, use it to
characterise whole design spaces).  It doubles as the sanity check for the
evolutionary driver: with the same evaluation budget, evolution should match
or beat it.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .evaluate import CandidateEvaluation, SearchResult
from .space import ArchitectureGenome, SearchSpace


def random_search(space: SearchSpace, evaluator: Callable[[ArchitectureGenome], CandidateEvaluation],
                  budget: int = 16, seed: int = 0,
                  deduplicate: bool = True,
                  callback: Optional[Callable[[CandidateEvaluation], None]] = None
                  ) -> SearchResult:
    """Evaluate ``budget`` uniformly sampled candidates.

    Parameters
    ----------
    space : SearchSpace
        Where candidates are drawn from.
    evaluator : callable
        Maps a genome to a :class:`CandidateEvaluation`
        (normally a :class:`~repro.explore.ProxyEvaluator`).
    budget : int
        Number of evaluations.
    deduplicate : bool
        Skip genomes that were already drawn (the space is discrete, so
        repeats are common in small spaces); the budget still counts them.
    callback : callable, optional
        Invoked after every evaluation (e.g. for progress printing).
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    rng = np.random.default_rng(seed)
    result = SearchResult()
    seen = set()
    for _ in range(budget):
        genome = space.sample(rng)
        result.evaluations_used += 1
        if deduplicate and genome.key() in seen:
            continue
        seen.add(genome.key())
        evaluation = evaluator(genome)
        result.history.append(evaluation)
        if callback is not None:
            callback(evaluation)
    return result
