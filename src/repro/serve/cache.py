"""Thread-safe LRU response cache keyed by input digest.

Serving traffic is often repetitive (the same image thumbnail, the same
feature vector), and the compiled forward is deterministic, so a repeated
input can be answered from memory without touching the pool.  The cache maps
a digest of the *exact* float32 bytes of a sample to the output array the
pool produced for it — a hit therefore returns a bit-identical payload.
"""

from __future__ import annotations

import collections
import hashlib
import threading
from typing import Optional

import numpy as np


def input_digest(sample: np.ndarray) -> str:
    """A collision-resistant key for one input sample.

    Hashes dtype, shape and raw bytes, so two arrays share a digest exactly
    when they are indistinguishable to the model.
    """
    sample = np.ascontiguousarray(sample)
    hasher = hashlib.sha256()
    hasher.update(str(sample.dtype).encode())
    hasher.update(str(sample.shape).encode())
    hasher.update(sample.tobytes())
    return hasher.hexdigest()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity=0`` disables caching: ``get`` always misses and ``put`` is a
    no-op, so callers never need to special-case the disabled state.
    All operations take an internal lock — the HTTP front door calls this
    from many handler threads at once.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "collections.OrderedDict[str, np.ndarray]" = collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[np.ndarray]:
        """The cached value for ``key`` (refreshing its recency), else None."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert (or refresh) ``key``, evicting the oldest entry when full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return (f"LRUCache(capacity={self.capacity}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
