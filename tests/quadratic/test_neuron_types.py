"""Tests of the neuron-type registry and complexity model (paper Table 1)."""

import numpy as np
import pytest

from repro.quadratic import NEURON_TYPES, available_types, resolve_type
from repro.quadratic.complexity import (
    complexity_table,
    conv_layer_cost,
    first_order_conv_cost,
    first_order_linear_cost,
    linear_layer_cost,
)


class TestRegistry:
    def test_all_paper_types_present(self):
        for name in ["T1", "T1_PURE", "T2", "T3", "T4", "T1_2", "T2_4", "T4_ID", "OURS"]:
            assert name in NEURON_TYPES

    def test_resolve_canonical_and_alias(self):
        assert resolve_type("OURS").name == "OURS"
        assert resolve_type("ours").name == "OURS"
        assert resolve_type("typenew").name == "OURS"
        assert resolve_type("fan").name == "T2_4"
        assert resolve_type("bu").name == "T4"
        assert resolve_type("type2").name == "T2"

    def test_resolve_case_insensitive(self):
        assert resolve_type("t4_id").name == "T4_ID"

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            resolve_type("T99")

    def test_quadratic_layer_unknown_type_lists_registered_designs(self):
        from repro.quadratic import quadratic_layer

        with pytest.raises(ValueError) as excinfo:
            quadratic_layer("T99", 4, 4, kernel_size=3)
        message = str(excinfo.value)
        for name in available_types():
            assert name in message
        assert "typenew" in message  # aliases are listed too

    def test_factory_functions_raise_value_error_on_unknown_type(self):
        from repro.quadratic import quadratic_layer

        with pytest.raises(ValueError, match="registered neuron types"):
            quadratic_layer("definitely_not_a_neuron", 4, 4)

    def test_available_types_matches_registry(self):
        assert set(available_types()) == set(NEURON_TYPES)

    def test_our_design_has_linear_path_and_three_weight_sets(self):
        spec = resolve_type("OURS")
        assert spec.has_linear_path
        assert spec.weight_sets == 3
        assert not spec.full_rank

    def test_t1_designs_are_full_rank(self):
        assert resolve_type("T1").full_rank
        assert resolve_type("T1_PURE").full_rank
        assert resolve_type("T1_2").full_rank

    def test_issue_annotations_match_paper(self):
        # P1 (approximation capability) is attributed to T2 and T3 only.
        assert "P1" in resolve_type("T2").issues
        assert "P1" in resolve_type("T3").issues
        assert "P1" not in resolve_type("T4").issues
        # Our design resolves all listed issues.
        assert resolve_type("OURS").issues == ()

    def test_describe_contains_formula(self):
        assert "Wa" in resolve_type("OURS").describe()


class TestComplexityModel:
    def test_first_order_linear_params(self):
        cost = first_order_linear_cost(64, 32)
        assert cost.parameters == 64 * 32 + 32

    def test_ours_has_three_times_first_order_params(self):
        ours = linear_layer_cost("OURS", 64, 32, bias=False)
        first = first_order_linear_cost(64, 32, bias=False)
        assert ours.parameters == 3 * first.parameters

    def test_t4_has_two_weight_sets(self):
        t4 = linear_layer_cost("T4", 64, 32, bias=False)
        first = first_order_linear_cost(64, 32, bias=False)
        assert t4.parameters == 2 * first.parameters

    def test_t2_t3_same_params_as_first_order(self):
        for name in ("T2", "T3"):
            cost = linear_layer_cost(name, 64, 32, bias=False)
            assert cost.parameters == first_order_linear_cost(64, 32, bias=False).parameters

    def test_t1_quadratic_in_input_size(self):
        small = linear_layer_cost("T1_PURE", 8, 4, bias=False).parameters
        large = linear_layer_cost("T1_PURE", 16, 4, bias=False).parameters
        # Doubling n should roughly quadruple the full-rank parameter count.
        assert large / small == pytest.approx(4.0, rel=0.05)

    def test_ours_linear_in_input_size(self):
        small = linear_layer_cost("OURS", 8, 4, bias=False).parameters
        large = linear_layer_cost("OURS", 16, 4, bias=False).parameters
        assert large / small == pytest.approx(2.0, rel=0.05)

    def test_conv_cost_matches_instantiated_layer(self):
        from repro.quadratic import QuadraticConv2d

        layer = QuadraticConv2d(8, 16, kernel_size=3, neuron_type="OURS", bias=True)
        cost = conv_layer_cost("OURS", 8, 16, 3, bias=True)
        assert cost.parameters == layer.num_parameters()

    def test_conv_cost_matches_t1_layer(self):
        from repro.quadratic import QuadraticConv2dT1

        layer = QuadraticConv2dT1(4, 6, kernel_size=3, neuron_type="T1_PURE", bias=True)
        cost = conv_layer_cost("T1_PURE", 4, 6, 3, bias=True)
        assert cost.parameters == layer.num_parameters()

    def test_macs_scale_with_output_positions(self):
        single = conv_layer_cost("OURS", 8, 8, 3, output_hw=(1, 1)).macs
        grid = conv_layer_cost("OURS", 8, 8, 3, output_hw=(4, 4)).macs
        assert grid == pytest.approx(16 * single, rel=1e-6)

    def test_complexity_table_covers_all_types(self):
        table = complexity_table(32, 32)
        assert set(table) == set(NEURON_TYPES)

    def test_table1_ordering_t1_most_expensive(self):
        table = complexity_table(64, 64)
        assert table["T1_PURE"].parameters > table["OURS"].parameters > table["T2"].parameters

    def test_relative_to(self):
        ours = linear_layer_cost("OURS", 64, 64, bias=False)
        first = first_order_linear_cost(64, 64, bias=False)
        ratio_params, ratio_macs = ours.relative_to(first)
        assert ratio_params == pytest.approx(3.0)
        assert ratio_macs > 2.9
