"""Classification training loop (the recipe of paper Sec. 5.2, scaled down).

The paper trains with SGD + CosineAnnealing, initial learning rate 0.1,
200 epochs, batch 256/128.  ``train_classifier`` keeps that recipe but lets
benchmarks shrink epochs/batches so every Table 2/3/4 row trains in CPU time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..data.dataloader import DataLoader
from ..data.dataset import Dataset
from ..metrics.classification import accuracy
from ..nn.losses import CrossEntropyLoss
from ..nn.module import Module
from ..optim.lr_scheduler import CosineAnnealingLR, LRScheduler
from ..optim.sgd import SGD
from ..quadratic.gradients import GradientFlowProbe
from ..utils.deprecation import warn_deprecated


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by :func:`train_classifier`."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    seconds_per_batch: List[float] = field(default_factory=list)
    gradient_norms: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def final_train_accuracy(self) -> float:
        return self.train_accuracy[-1] if self.train_accuracy else float("nan")

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else float("nan")

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else float("nan")

    @property
    def mean_seconds_per_batch(self) -> float:
        return float(np.mean(self.seconds_per_batch)) if self.seconds_per_batch else float("nan")

    def diverged(self, floor: float) -> bool:
        """True if training never exceeded chance-level ``floor`` accuracy."""
        return self.final_train_accuracy <= floor

    # ------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view so specs, benchmarks and the CLI can persist runs."""
        return {
            "train_loss": [float(v) for v in self.train_loss],
            "train_accuracy": [float(v) for v in self.train_accuracy],
            "test_accuracy": [float(v) for v in self.test_accuracy],
            "seconds_per_batch": [float(v) for v in self.seconds_per_batch],
            "gradient_norms": {name: [float(v) for v in values]
                               for name, values in self.gradient_norms.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainingHistory":
        """Inverse of :meth:`to_dict` (unknown keys are ignored for forward compat)."""
        return cls(
            train_loss=[float(v) for v in data.get("train_loss", [])],
            train_accuracy=[float(v) for v in data.get("train_accuracy", [])],
            test_accuracy=[float(v) for v in data.get("test_accuracy", [])],
            seconds_per_batch=[float(v) for v in data.get("seconds_per_batch", [])],
            gradient_norms={name: [float(v) for v in values]
                            for name, values in data.get("gradient_norms", {}).items()},
        )


def evaluate_classifier(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy of ``model`` over a data loader."""
    was_training = model.training
    model.train(False)
    correct, total = 0, 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(np.asarray(images, dtype=np.float32)))
            correct += int((logits.data.argmax(axis=-1) == labels).sum())
            total += len(labels)
    model.train(was_training)
    return correct / max(total, 1)


def train_classifier(model: Module, train_dataset: Dataset, test_dataset: Optional[Dataset] = None,
                     epochs: int = 5, batch_size: int = 64, lr: float = 0.1,
                     momentum: float = 0.9, weight_decay: float = 5e-4,
                     scheduler: str = "cosine", label_smoothing: float = 0.0,
                     grad_probe_layers: Optional[Sequence[str]] = None,
                     max_batches_per_epoch: Optional[int] = None,
                     seed: int = 0) -> TrainingHistory:
    """Deprecated direct-call trainer; see :class:`repro.experiment.Experiment`.

    The loop itself is unchanged (it still trains exactly as before); new code
    should declare the recipe in a :class:`repro.experiment.TrainSpec` and call
    ``Experiment(spec).fit()`` so the run is serializable and reproducible.
    """
    warn_deprecated(
        "repro.training.train_classifier(model, dataset, ...)",
        "repro.experiment.Experiment(spec).fit() with a TrainSpec",
    )
    return _train_classifier_impl(model, train_dataset, test_dataset, epochs=epochs,
                                  batch_size=batch_size, lr=lr, momentum=momentum,
                                  weight_decay=weight_decay, scheduler=scheduler,
                                  label_smoothing=label_smoothing,
                                  grad_probe_layers=grad_probe_layers,
                                  max_batches_per_epoch=max_batches_per_epoch, seed=seed)


def _train_classifier_impl(model: Module, train_dataset: Dataset,
                           test_dataset: Optional[Dataset] = None,
                           epochs: int = 5, batch_size: int = 64, lr: float = 0.1,
                           momentum: float = 0.9, weight_decay: float = 5e-4,
                           scheduler: str = "cosine", label_smoothing: float = 0.0,
                           grad_probe_layers: Optional[Sequence[str]] = None,
                           max_batches_per_epoch: Optional[int] = None,
                           seed: int = 0,
                           optimizer_factory: Optional[Callable] = None) -> TrainingHistory:
    """Train a classifier with the paper's SGD + CosineAnnealing recipe.

    Parameters
    ----------
    grad_probe_layers : list of str, optional
        Parameter-name substrings whose gradient norms should be recorded each
        epoch (used to regenerate Fig. 7).
    max_batches_per_epoch : int, optional
        Cap on batches per epoch so benchmark rows finish quickly.
    optimizer_factory : callable, optional
        ``factory(parameters) -> Optimizer`` override; defaults to the paper's
        SGD recipe.  The experiment API uses this to honour
        ``TrainSpec.optimizer``.
    """
    loader = DataLoader(train_dataset, batch_size=batch_size, shuffle=True, drop_last=True,
                        seed=seed)
    test_loader = (DataLoader(test_dataset, batch_size=batch_size) if test_dataset is not None
                   else None)
    if optimizer_factory is not None:
        optimizer = optimizer_factory(model.parameters())
    else:
        optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                        weight_decay=weight_decay)
    lr_scheduler: Optional[LRScheduler] = None
    if scheduler == "cosine":
        lr_scheduler = CosineAnnealingLR(optimizer, t_max=max(epochs, 1))
    loss_fn = CrossEntropyLoss(label_smoothing=label_smoothing)
    probe = GradientFlowProbe(model, layer_filter=grad_probe_layers) if grad_probe_layers else None

    history = TrainingHistory()
    model.train(True)
    for _ in range(epochs):
        epoch_losses, epoch_accs, batch_times = [], [], []
        for batch_index, (images, labels) in enumerate(loader):
            if max_batches_per_epoch is not None and batch_index >= max_batches_per_epoch:
                break
            start = time.perf_counter()
            optimizer.zero_grad()
            logits = model(Tensor(np.asarray(images, dtype=np.float32)))
            loss = loss_fn(logits, labels)
            loss.backward()
            optimizer.step()
            batch_times.append(time.perf_counter() - start)

            loss_value = loss.item()
            if not np.isfinite(loss_value):
                # Divergence (e.g. gradient explosion in deep plain QDNNs):
                # record and stop, mirroring a failed paper run.
                history.train_loss.append(float("inf"))
                history.train_accuracy.append(1.0 / logits.shape[-1])
                if test_loader is not None:
                    history.test_accuracy.append(1.0 / logits.shape[-1])
                return history
            epoch_losses.append(loss_value)
            epoch_accs.append(accuracy(logits, labels))
        if probe is not None:
            probe.snapshot()

        history.train_loss.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
        history.train_accuracy.append(float(np.mean(epoch_accs)) if epoch_accs else float("nan"))
        history.seconds_per_batch.append(float(np.mean(batch_times)) if batch_times else float("nan"))
        if test_loader is not None:
            history.test_accuracy.append(evaluate_classifier(model, test_loader))
            model.train(True)
        if lr_scheduler is not None:
            lr_scheduler.step()

    if probe is not None:
        history.gradient_norms = {name: list(values) for name, values in probe.history.items()}
    return history
