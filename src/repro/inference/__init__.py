"""``repro.inference`` — the compiled, gradient-free serving path.

Training needs the autodiff graph; serving does not.  This package turns a
trained :class:`~repro.nn.module.Module` into a flat list of closed-over
NumPy callables (:func:`compile_model`), fuses the quadratic combination
step into ``out=``-buffered element-wise kernels with a shared ``im2col``
lowering per layer, and micro-batches single-sample traffic through the
compiled path (:class:`BatchedPredictor`).

Every numerical primitive the compiled steps execute dispatches through a
pluggable compute backend (:mod:`repro.backends` — ``numpy``, ``threaded``,
``int8``), and a graph optimizer rewrites each chain before lowering
(dead-layer elimination, padding/BatchNorm folding) while a
:class:`LifetimePlanner` shares pooled buffers across steps whose lifetimes
provably never overlap.  ``compile_model(model, backend=..., optimize=...)``
selects both.

Every serving front end — :class:`BatchedPredictor` here and
:class:`repro.ppml.SecurePredictor` on the fixed-point path — implements the
:class:`Predictor` protocol (``predict`` / ``predict_batch`` / ``stats`` /
``close`` + context manager), so the serving worker hosts either behind one
code path.

Compiled outputs are verified (tests + ``benchmarks/bench_inference_throughput``)
to match the eager forward; single-sample latency drops by well over 2× on
the quadratic backbones because the three weight projections of the paper's
neuron share one patch lowering and skip all graph construction.

Example
-------
>>> from repro.experiment import Experiment, get_preset
>>> exp = Experiment(get_preset("smoke"))
>>> exp.build()
>>> compiled = exp.compile_inference()      # or: compile_model(exp.model)
>>> logits = compiled(batch)                # raw NumPy in, raw NumPy out
>>> with exp.predictor(max_batch_size=8) as served:
...     out = served.predict(batch[0])      # single sample, micro-batched
"""

from .buffers import BufferPool, LifetimePlanner
from .compiler import CompiledModel, compile_model, register_compile_rule
from .evaluation import max_abs_diff, measure_serving
from .optimizer import FrozenBatchNorm, OptimizationReport, optimize_plan
from .predictor import BatchedPredictor, PendingPrediction, PredictorStats
from .protocol import Predictor

#: Alias so ``repro.inference.compile(model)`` reads like the spec'd API.
compile = compile_model

__all__ = [
    "BufferPool",
    "LifetimePlanner",
    "CompiledModel",
    "compile_model",
    "compile",
    "register_compile_rule",
    "FrozenBatchNorm",
    "OptimizationReport",
    "optimize_plan",
    "BatchedPredictor",
    "PendingPrediction",
    "Predictor",
    "PredictorStats",
    "max_abs_diff",
    "measure_serving",
]
