"""Prefetching data-pipeline benchmark: overlap batch assembly with compute.

Trains one epoch's worth of batches on a transform-heavy classification
config twice — once through the synchronous :class:`DataLoader`, once through
:class:`PrefetchDataLoader` (background worker + bounded queue) — and
measures the wall-clock of the loop.  Two properties are checked:

1. **Numerics**: the prefetched batch stream is bit-identical to the
   synchronous one (order, shuffling, per-sample transform RNG draws).  This
   is asserted unconditionally, at every core count, in every mode.
2. **Overlap**: on a host with parallelism headroom (>= 2 cores) the
   prefetched loop must run at least ``MIN_SPEEDUP`` (1.1x) faster, and the
   run **fails** otherwise — the CI regression gate for the pipeline.  On a
   single core there is nothing to overlap onto, so the ratio is reported
   but not asserted (the report says so explicitly).

Run with ``PYTHONPATH=src python benchmarks/bench_dataloader_prefetch.py``;
``--quick`` / ``REPRO_BENCH_QUICK=1`` is the CI mode (smaller sweep).
"""

from __future__ import annotations

import os
import time

import numpy as np

from common import fresh_seed, quick_mode, save_experiment

from repro.autodiff.tensor import Tensor
from repro.data import DataLoader, PrefetchDataLoader, TransformDataset, transforms
from repro.data.synthetic import SyntheticImageClassification
from repro.nn.losses import CrossEntropyLoss
from repro.optim.sgd import SGD
from repro.utils.logging import format_table

#: dataset size / geometry (transform cost scales with resolution)
SAMPLES, IMAGE_SIZE, NUM_CLASSES, BATCH = 256, 32, 6, 16
QUICK_SAMPLES = 128
#: timed epochs per pipeline (the first is a warmup)
REPEATS = 3
QUICK_REPEATS = 2
#: prefetch queue depth under test
DEPTH = 4

#: the acceptance bar: prefetched epoch time vs synchronous epoch time
MIN_SPEEDUP = 1.1


def heavy_dataset(num_samples: int) -> TransformDataset:
    """A classification set whose per-sample assembly is deliberately expensive."""
    base = SyntheticImageClassification(num_samples=num_samples, num_classes=NUM_CLASSES,
                                        image_size=IMAGE_SIZE, seed=0)
    pipeline = transforms.Compose([
        transforms.RandomCrop(IMAGE_SIZE, padding=4, seed=1),
        transforms.RandomHorizontalFlip(seed=2),
        transforms.GaussianNoise(0.05, seed=3),
        # A deliberately transform-heavy tail: repeated separable blurs stand
        # in for the decode/augment cost of a real ingestion pipeline.
        _blur_stack(iterations=6),
        transforms.Normalize(mean=(0.5, 0.5, 0.5), std=(0.25, 0.25, 0.25)),
    ])
    return TransformDataset(base, pipeline)


def _blur_stack(iterations: int):
    kernel = np.array([0.25, 0.5, 0.25], dtype=np.float32)

    def blur(image: np.ndarray) -> np.ndarray:
        out = image
        for _ in range(iterations):
            out = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 1, out)
            out = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 2, out)
        return out.astype(np.float32)

    return blur


def _model():
    from repro.builder import QuadraticModelConfig
    from repro.models import SmallConvNet

    return SmallConvNet(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE,
                        config=QuadraticModelConfig(width_multiplier=0.5))


def collect_batches(loader) -> list:
    return [(np.array(images), np.array(labels)) for images, labels in loader]


def timed_epochs(loader, model, repeats: int) -> float:
    """Seconds per epoch of a realistic train loop over ``loader`` (best of N)."""
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
    loss_fn = CrossEntropyLoss()
    best = float("inf")
    for repeat in range(repeats + 1):  # +1 warmup epoch
        start = time.perf_counter()
        for images, labels in loader:
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(np.asarray(images, dtype=np.float32))), labels)
            loss.backward()
            optimizer.step()
        elapsed = time.perf_counter() - start
        if repeat > 0:
            best = min(best, elapsed)
    return best


def main() -> None:
    quick = quick_mode()
    fresh_seed()
    num_samples = QUICK_SAMPLES if quick else SAMPLES
    repeats = QUICK_REPEATS if quick else REPEATS
    cores = os.cpu_count() or 1

    def sync_loader():
        return DataLoader(heavy_dataset(num_samples), batch_size=BATCH, shuffle=True,
                          drop_last=True, seed=5)

    # ---- 1. numerics: the prefetched stream must be bit-identical.
    sync_stream = collect_batches(sync_loader())
    prefetch_stream = collect_batches(PrefetchDataLoader(sync_loader(), depth=DEPTH))
    assert len(sync_stream) == len(prefetch_stream)
    for (sync_images, sync_labels), (pf_images, pf_labels) in zip(sync_stream,
                                                                  prefetch_stream):
        assert np.array_equal(sync_images, pf_images), "prefetch changed batch numerics"
        assert np.array_equal(sync_labels, pf_labels), "prefetch changed batch order"

    # ---- 2. overlap: time the same training loop over both pipelines.
    fresh_seed(1)
    sync_seconds = timed_epochs(sync_loader(), _model(), repeats)
    fresh_seed(1)
    prefetch_seconds = timed_epochs(PrefetchDataLoader(sync_loader(), depth=DEPTH),
                                    _model(), repeats)
    speedup = sync_seconds / prefetch_seconds if prefetch_seconds > 0 else float("inf")

    gate_armed = cores >= 2
    rows = [
        ["synchronous DataLoader", f"{sync_seconds * 1000:.0f} ms/epoch", "baseline"],
        ["PrefetchDataLoader", f"{prefetch_seconds * 1000:.0f} ms/epoch",
         f"{speedup:.2f}x"],
    ]
    note = (f"gate: >= {MIN_SPEEDUP}x on {cores} cores" if gate_armed else
            f"{cores} cpu(s), nothing to overlap onto: ratio reported, not asserted")
    print(format_table(
        ["Pipeline", "Epoch time", "Speedup"], rows,
        title=f"Batch-assembly overlap, transform-heavy config "
              f"({num_samples} samples @ {IMAGE_SIZE}px, depth {DEPTH}) — {note}"))

    save_experiment("dataloader_prefetch", {
        "quick": quick,
        "cores": cores,
        "samples": num_samples,
        "batch_size": BATCH,
        "depth": DEPTH,
        "sync_seconds_per_epoch": sync_seconds,
        "prefetch_seconds_per_epoch": prefetch_seconds,
        "speedup": speedup,
        "bit_identical": True,
        "gate_armed": gate_armed,
        "min_speedup": MIN_SPEEDUP,
    })

    if gate_armed:
        assert speedup >= MIN_SPEEDUP, (
            f"prefetching pipeline regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"on a {cores}-core host")


if __name__ == "__main__":
    main()
