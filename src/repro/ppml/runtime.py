"""The secure-inference runtime: execute models under hybrid-protocol semantics.

:mod:`repro.ppml.cost` predicts what a privacy-preserving deployment would
pay; this module *runs* the model the way a hybrid protocol would and
measures it.  :func:`secure_compile` lowers a module tree — reusing the
traversal scheme of :mod:`repro.inference.compiler` (compile rules resolved
through the MRO, ``inference_plan()`` flattening, a shared
:class:`~repro.inference.buffers.BufferPool` for scratch space) — into a
flat list of *fixed-point* steps:

* every activation is an ``int64`` array at scale ``2^f``
  (:mod:`repro.ppml.fixedpoint`), truncated after each multiplication with
  nearest or stochastic rounding, which is exactly the arithmetic a
  secret-sharing protocol performs;
* every step appends a :class:`~repro.ppml.trace.LayerTrace` recording the
  MACs, Beaver-triple multiplications and garbled-circuit comparisons it
  actually executed, and its communication-round structure;
* the resulting :class:`~repro.ppml.trace.ProtocolTrace` converts into
  online latency/communication through the same
  :class:`~repro.ppml.protocols.Protocol` constants as the static analysis,
  plus one network round trip per round.

What the simulation does and does not model
-------------------------------------------
The runtime reproduces the *numerics* (fixed-point quantization and
truncation) and the *operation/round counts* of a hybrid protocol.  It does
not perform cryptography: secret shares, garbled circuits and Beaver triples
are costed, not computed — plaintext stands in for shares, which leaves the
values (and therefore the measured counts and fixed-point error) identical
to a real deployment while running at simulation speed.

Two conventions keep measured counts comparable with the static analysis:

* Multiplications by *public* constants (batch-norm scales, pooling
  divisors, ``Square(scale=...)``) are local in every secret-sharing
  protocol — they cost a truncation but no Beaver triple, so they appear in
  ``truncations`` and ``macs``, never in ``mult_ops``.
* Smooth activations (GELU/sigmoid/tanh) and the final ``Softmax`` follow
  the static model's convention: the former are garbled-circuit evaluations
  (one comparison-equivalent per element), the latter is client-side
  post-processing and free.

Unsupported layers (full-rank T1 bilinear layers, ``LayerNorm``, batch
normalisation without running statistics) raise :class:`SecureExecutionError`
with the offending layer's name — the secure path never silently falls back
to float execution, because that would fabricate trace entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

import numpy as np

from ..autodiff.ops.conv import conv_output_size, im2col
from ..inference.buffers import BufferPool
from ..nn.containers import Sequential
from ..nn.layers.activations import (
    GELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Square,
    Tanh,
)
from ..nn.layers.conv import Conv2d, DepthwiseSeparableConv2d
from ..nn.layers.linear import Linear
from ..nn.layers.misc import Dropout, Flatten, UpsampleNearest2d, ZeroPad2d
from ..nn.layers.normalization import LayerNorm, _BatchNorm
from ..nn.layers.pooling import AdaptiveAvgPool2d, AvgPool2d, GlobalAvgPool2d, MaxPool2d
from ..nn.module import Module
from ..quadratic.functional import REQUIRED_RESPONSES
from ..quadratic.layers.hybrid import (
    HybridQuadraticConv2d,
    HybridQuadraticConv2dFan,
    HybridQuadraticConv2dT4,
    HybridQuadraticLinear,
)
from ..quadratic.layers.qconv import QuadraticConv2d, QuadraticConv2dT1
from ..quadratic.layers.qlinear import QuadraticLinear
from ..utils.deprecation import warn_deprecated
from .fixedpoint import FixedPointFormat, decode, encode, truncate
from .protocols import Protocol, resolve_protocol
from .trace import LayerTrace, ProtocolTrace, SecureCostEstimate

#: Communication rounds charged per traced step, by primitive kind.
ROUNDS_LINEAR = 1      #: share reconstruction after a pre-processed linear layer
ROUNDS_MULT = 1        #: one Beaver-triple reconstruction
ROUNDS_GARBLED = 2     #: garbled-circuit transfer + evaluation exchange


class SecureExecutionError(RuntimeError):
    """A model contains a layer the secure runtime cannot execute faithfully."""


@dataclass(frozen=True)
class SecureConfig:
    """Configuration of one secure execution.

    Attributes
    ----------
    protocol :
        Protocol name or instance used for trace costing (execution itself is
        protocol-independent — every hybrid protocol computes the same
        fixed-point values).
    frac_bits, truncation :
        The fixed-point number format (see
        :class:`~repro.ppml.fixedpoint.FixedPointFormat`).
    seed :
        Seed of the stochastic-truncation noise stream (each call derives a
        fresh, deterministic substream).
    """

    protocol: Union[str, Protocol] = "delphi"
    frac_bits: int = 12
    truncation: str = "nearest"
    seed: int = 0

    def fixed_point(self) -> FixedPointFormat:
        """The validated number format of this configuration."""
        return FixedPointFormat(frac_bits=self.frac_bits, truncation=self.truncation)


class _SecureContext:
    """Per-call execution state: number format, noise stream, trace, buffers."""

    def __init__(self, fmt: FixedPointFormat, rng: np.random.Generator,
                 pool: BufferPool) -> None:
        self.fmt = fmt
        self.rng = rng
        self.pool = pool
        self.layers: List[LayerTrace] = []

    def truncate(self, q: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Rescale after a multiplication (``2f → f``) in the configured mode."""
        return truncate(q, self.fmt.frac_bits, mode=self.fmt.truncation,
                        rng=self.rng, out=out)

    def record(self, name: str, layer_type: str, output_shape: Tuple[int, ...],
               macs: int = 0, relu_ops: int = 0, mult_ops: int = 0,
               truncations: int = 0, rounds: int = 0) -> None:
        self.layers.append(LayerTrace(
            name=name, layer_type=layer_type, macs=int(macs), relu_ops=int(relu_ops),
            mult_ops=int(mult_ops), truncations=int(truncations), rounds=int(rounds),
            output_shape=tuple(int(s) for s in output_shape)))


#: One secure step: int64 scale-f activations in, int64 scale-f activations out.
SecureStep = Callable[[np.ndarray, _SecureContext], np.ndarray]

#: module type -> rule(module, compiler) -> list of secure steps.
_SECURE_RULES: Dict[Type[Module], Callable] = {}


def register_secure_rule(*module_types: Type[Module]):
    """Register a fixed-point lowering rule for one or more layer classes.

    Mirrors :func:`repro.inference.compiler.register_compile_rule`: the rule
    receives ``(module, compiler)``, returns the step list, and is resolved
    through the module's MRO so base-class rules cover subclasses.
    """

    def _register(fn: Callable) -> Callable:
        for module_type in module_types:
            _SECURE_RULES[module_type] = fn
        return fn

    return _register


class _SecureCompiler:
    """Tree walker emitting fixed-point steps; carries names and the pool."""

    def __init__(self, fmt: FixedPointFormat, pool: BufferPool,
                 names: Dict[int, str]) -> None:
        self.fmt = fmt
        self.pool = pool
        self.names = names
        self._step_index = 0

    def next_key(self) -> Tuple[str, int]:
        """A unique id per emitted step, namespacing its pooled buffers.

        The ``"ppml"`` prefix keeps secure buffers disjoint from any float
        steps sharing the same :class:`BufferPool`.
        """
        self._step_index += 1
        return ("ppml", self._step_index)

    def name_of(self, module: Module) -> str:
        return self.names.get(id(module), type(module).__name__)

    def encode_weight(self, array: np.ndarray) -> np.ndarray:
        """Quantize a parameter to the runtime's scale (snapshot at compile time)."""
        return encode(array, self.fmt.frac_bits)

    def encode_bias(self, array: np.ndarray) -> np.ndarray:
        """Quantize an additive term at scale ``2f`` so it joins pre-truncation
        accumulators without its own rounding step."""
        return encode(array, 2 * self.fmt.frac_bits)

    # -------------------------------------------------------------- traversal
    def compile_module(self, module: Module) -> List[SecureStep]:
        if isinstance(module, Sequential):
            return self.compile_chain(module)
        plan = getattr(module, "inference_plan", None)
        if callable(plan):
            return self.compile_chain(plan())
        for klass in type(module).__mro__:
            rule = _SECURE_RULES.get(klass)
            if rule is not None:
                return list(rule(module, self))
        raise SecureExecutionError(
            f"no secure lowering for {type(module).__name__} "
            f"(layer '{self.name_of(module)}'); the secure runtime supports: "
            f"{', '.join(sorted(set(cls.__name__ for cls in _SECURE_RULES)))}")

    def compile_chain(self, modules) -> List[SecureStep]:
        steps: List[SecureStep] = []
        for module in modules:
            steps.extend(self.compile_module(module))
        return steps


class SecureCompiledModel:
    """A model lowered to fixed-point hybrid-protocol steps.

    Calling it takes a *float* batch, encodes it at scale ``2^f``, runs every
    step in the integer domain and returns the decoded float output.  The
    executed :class:`~repro.ppml.trace.ProtocolTrace` of the most recent call
    is available as :attr:`last_trace` (or use :meth:`run` to get output and
    trace together).

    Weights are quantized once at compile time — re-run
    :func:`secure_compile` after updating parameters.
    """

    def __init__(self, model: Module, steps: List[SecureStep], pool: BufferPool,
                 config: SecureConfig) -> None:
        self.model = model
        self.pool = pool
        self.config = config
        self.protocol = resolve_protocol(config.protocol)
        self.fmt = config.fixed_point()
        self.last_trace: Optional[ProtocolTrace] = None
        self._steps = steps
        self._calls = 0

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    def run(self, x: np.ndarray) -> Tuple[np.ndarray, ProtocolTrace]:
        """Execute one secure forward pass; returns ``(float output, trace)``."""
        data = getattr(x, "data", x)
        q = encode(np.asarray(data, dtype=np.float32), self.fmt.frac_bits)
        # A deterministic noise substream per call: run k of a model is
        # reproducible regardless of what ran before it.
        rng = np.random.default_rng((self.config.seed, self._calls))
        self._calls += 1
        ctx = _SecureContext(self.fmt, rng, self.pool)
        for step in self._steps:
            q = step(q, ctx)
        trace = ProtocolTrace(frac_bits=self.fmt.frac_bits, layers=ctx.layers,
                              protocol=self.protocol)
        self.last_trace = trace
        return decode(np.array(q, copy=True), self.fmt.frac_bits), trace

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out, _ = self.run(x)
        return out

    def estimate(self, protocol: Union[str, Protocol, None] = None) -> SecureCostEstimate:
        """Online-cost estimate of the most recent call's trace."""
        if self.last_trace is None:
            raise RuntimeError("no trace yet — run the model first")
        return self.last_trace.estimate(protocol)

    def __repr__(self) -> str:
        return (f"SecureCompiledModel({type(self.model).__name__}, "
                f"steps={self.num_steps}, frac_bits={self.fmt.frac_bits}, "
                f"protocol={self.protocol.name})")


def secure_compile(model: Module, config: Optional[SecureConfig] = None,
                   pool: Optional[BufferPool] = None) -> SecureCompiledModel:
    """Lower ``model`` to the fixed-point secure-inference path.

    The model is compiled with evaluation semantics (dropout removed, batch
    normalisation folded to its running statistics).  Raises
    :class:`SecureExecutionError` for layers a hybrid protocol cannot
    execute (or that this runtime does not model); see the module docstring.
    """
    cfg = config if config is not None else SecureConfig()
    names = {id(module): name for name, module in model.named_modules()}
    compiler = _SecureCompiler(cfg.fixed_point(), pool if pool is not None else BufferPool(),
                               names)
    steps = compiler.compile_module(model)
    return SecureCompiledModel(model, steps, compiler.pool, cfg)


@dataclass
class SecureStats:
    """Cumulative protocol accounting of one :class:`SecurePredictor`.

    The secure counterpart of :class:`repro.inference.PredictorStats`:
    ``requests``/``batches`` count the traffic; the remaining fields
    accumulate the measured :meth:`~repro.ppml.trace.ProtocolTrace.totals`
    of every executed forward — the per-request protocol accounting that
    secure serving surfaces in ``GET /stats``.
    """

    requests: int = 0
    batches: int = 0
    macs: int = 0
    mult_ops: int = 0
    relu_ops: int = 0
    truncations: int = 0
    rounds: int = 0

    def record(self, trace: ProtocolTrace, requests: int) -> None:
        """Fold one executed trace (covering ``requests`` queries) in."""
        totals = trace.totals()
        self.requests += int(requests)
        self.batches += 1
        self.macs += int(totals["macs"])
        self.mult_ops += int(totals["mult_ops"])
        self.relu_ops += int(totals["relu_ops"])
        self.truncations += int(totals["truncations"])
        self.rounds += int(totals["rounds"])

    def to_dict(self) -> Dict[str, int]:
        """All counters as one JSON-ready dict."""
        return {"requests": self.requests, "batches": self.batches,
                "macs": self.macs, "mult_ops": self.mult_ops,
                "relu_ops": self.relu_ops, "truncations": self.truncations,
                "rounds": self.rounds}


class SecurePredictor:
    """Single-sample front end over a :class:`SecureCompiledModel`.

    The secure analogue of :class:`repro.inference.BatchedPredictor` —
    without micro-batching, because PPML protocols answer one client query
    at a time (which is also the static analysis' counting convention).
    Both predictors implement the :class:`repro.inference.Predictor`
    protocol (``predict`` / ``predict_batch`` / ``stats`` / ``close`` and
    context-manager use), which is what lets the serving worker host either
    behind one code path.
    """

    def __init__(self, model: Module, protocol: Union[str, Protocol] = "delphi",
                 frac_bits: int = 12, truncation: str = "nearest", seed: int = 0,
                 pool: Optional[BufferPool] = None) -> None:
        self.model = model
        self.seed = int(seed)
        self.stats = SecureStats()
        self.compiled = secure_compile(
            model, SecureConfig(protocol=protocol, frac_bits=frac_bits,
                                truncation=truncation, seed=seed), pool=pool)
        self._variants: Dict[Tuple[str, int, str], SecureCompiledModel] = {
            self._variant_key(self.compiled.config): self.compiled}
        self._closed = False

    @staticmethod
    def _variant_key(config: SecureConfig) -> Tuple[str, int, str]:
        return (resolve_protocol(config.protocol).name, config.frac_bits,
                config.truncation)

    @property
    def last_trace(self) -> Optional[ProtocolTrace]:
        """Trace of the most recent query."""
        return self.compiled.last_trace

    @property
    def protocol(self) -> Protocol:
        """Protocol the default compilation is costed under."""
        return self.compiled.protocol

    def variant(self, protocol: Union[str, Protocol, None] = None,
                frac_bits: Optional[int] = None,
                truncation: Optional[str] = None) -> SecureCompiledModel:
        """The compiled model for a per-request (protocol, frac_bits,
        truncation) override, compiled lazily and cached.

        Variants share this predictor's model, seed and
        :class:`~repro.inference.buffers.BufferPool`; omitted fields fall
        back to the defaults given at construction.  This is what lets one
        serving worker answer requests in several secure configurations
        without re-building the model.
        """
        base = self.compiled.config
        config = SecureConfig(
            protocol=base.protocol if protocol is None else protocol,
            frac_bits=base.frac_bits if frac_bits is None else int(frac_bits),
            truncation=base.truncation if truncation is None else str(truncation),
            seed=self.seed)
        key = self._variant_key(config)
        compiled = self._variants.get(key)
        if compiled is None:
            compiled = secure_compile(self.model, config, pool=self.compiled.pool)
            self._variants[key] = compiled
        return compiled

    def predict(self, sample: np.ndarray,
                timeout: Optional[float] = None) -> np.ndarray:
        """Answer one client query (a single un-batched sample).

        ``timeout`` exists for :class:`repro.inference.Predictor` parity and
        is ignored: secure execution is synchronous in-process, so there is
        no queue to time out of.
        """
        del timeout
        data = getattr(sample, "data", sample)
        out, trace = self.compiled.run(np.asarray(data)[None, ...])
        self.stats.record(trace, 1)
        return out[0]

    def predict_one(self, sample: np.ndarray) -> np.ndarray:
        """Deprecated alias of :meth:`predict` (the pre-unification name)."""
        warn_deprecated("SecurePredictor.predict_one", "SecurePredictor.predict")
        return self.predict(sample)

    def predict_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run a batch in one pass (trace counts then cover the whole batch)."""
        out, trace = self.compiled.run(batch)
        self.stats.record(trace, int(np.asarray(getattr(batch, "data", batch)).shape[0]))
        return out

    def estimate(self, protocol: Union[str, Protocol, None] = None) -> SecureCostEstimate:
        """Online cost of the most recent query under ``protocol``."""
        return self.compiled.estimate(protocol)

    def close(self, timeout: float = 5.0) -> None:
        """Release the predictor.  Idempotent; ``timeout`` exists for
        :class:`repro.inference.Predictor` parity (nothing here blocks)."""
        del timeout
        self._closed = True

    #: Deprecated-era alias kept for symmetry with ``BatchedPredictor``.
    shutdown = close

    def __enter__(self) -> "SecurePredictor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Shared lowering helpers
# --------------------------------------------------------------------------- #

def _int_project(cols: np.ndarray, wq: np.ndarray, out: np.ndarray) -> np.ndarray:
    """One grouped projection on pre-lowered integer columns (scale ``2f``)."""
    return np.matmul(wq, cols, out=out)


def _conv_geometry(module) -> Tuple[Tuple[int, int], Tuple[int, int], int]:
    return module.stride, module.padding, getattr(module, "groups", 1)


def _conv_macs(n: int, groups: int, f_g: int, patch: int, positions: int) -> int:
    return n * groups * f_g * patch * positions


# --------------------------------------------------------------------------- #
# First-order layers
# --------------------------------------------------------------------------- #

@register_secure_rule(Linear)
def _secure_linear(module: Linear, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    wq_t = compiler.encode_weight(module.weight.data.T)
    bias_q = (compiler.encode_bias(module.bias.data)
              if module.bias is not None else None)
    in_features, out_features = module.in_features, module.out_features

    def linear_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        acc = q @ wq_t                       # scale 2f
        if bias_q is not None:
            np.add(acc, bias_q, out=acc)
        out = ctx.truncate(acc, out=acc)
        batch = int(np.prod(out.shape[:-1]))
        ctx.record(name, "Linear", out.shape,
                   macs=batch * in_features * out_features,
                   truncations=out.size, rounds=ROUNDS_LINEAR)
        return out

    return [linear_step]


@register_secure_rule(Conv2d)
def _secure_conv2d(module: Conv2d, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    stride, padding, groups = _conv_geometry(module)
    f, c_g, kh, kw = module.weight.shape
    wq = compiler.encode_weight(module.weight.data).reshape(groups, f // groups,
                                                            c_g * kh * kw)
    bias_q = (compiler.encode_bias(module.bias.data).reshape(1, f, 1, 1)
              if module.bias is not None else None)
    key = compiler.next_key()

    def conv_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        n, c, h, w = q.shape
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        cols_buf = ctx.pool.get((key, "cols"), (n, c, kh, kw, oh, ow), dtype=np.int64)
        cols = im2col(q, kh, kw, stride, padding, out=cols_buf)
        cols = cols.reshape(n, groups, c_g * kh * kw, oh * ow)
        acc = _int_project(cols, wq,
                           ctx.pool.get((key, "out"), (n, groups, f // groups, oh * ow),
                                        dtype=np.int64))
        acc = acc.reshape(n, f, oh, ow)
        if bias_q is not None:
            np.add(acc, bias_q, out=acc)
        out = ctx.truncate(acc, out=acc)
        ctx.record(name, "Conv2d", out.shape,
                   macs=_conv_macs(n, groups, f // groups, c_g * kh * kw, oh * ow),
                   truncations=out.size, rounds=ROUNDS_LINEAR)
        return out

    return [conv_step]


@register_secure_rule(DepthwiseSeparableConv2d)
def _secure_depthwise_separable(module: DepthwiseSeparableConv2d,
                                compiler: _SecureCompiler) -> List[SecureStep]:
    return compiler.compile_chain([module.depthwise, module.pointwise])


@register_secure_rule(_BatchNorm)
def _secure_batchnorm(module: _BatchNorm, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    if not module.track_running_stats:
        raise SecureExecutionError(
            f"batch normalisation without running statistics (layer '{name}') "
            f"depends on batch-mate values; a PPML deployment folds BatchNorm "
            f"into an affine transform of its running statistics")
    # Fold to the affine form out = x * scale + shift, like any deployment.
    inv_std = 1.0 / np.sqrt(module.running_var + module.eps)
    scale = inv_std * (module.weight.data if module.affine else 1.0)
    shift = -module.running_mean * scale + (module.bias.data if module.affine else 0.0)
    scale_q = compiler.encode_weight(scale)
    shift_q = compiler.encode_bias(shift)
    type_name = type(module).__name__

    def batchnorm_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        stat_shape = module._stat_shape(q.ndim)
        acc = q * scale_q.reshape(stat_shape)          # public per-channel mult
        np.add(acc, shift_q.reshape(stat_shape), out=acc)
        out = ctx.truncate(acc, out=acc)
        ctx.record(name, type_name, out.shape, macs=out.size,
                   truncations=out.size, rounds=0)
        return out

    return [batchnorm_step]


@register_secure_rule(LayerNorm)
def _secure_layernorm(module: LayerNorm, compiler: _SecureCompiler) -> List[SecureStep]:
    raise SecureExecutionError(
        f"LayerNorm (layer '{compiler.name_of(module)}') needs a secure inverse "
        f"square root, which no supported protocol provides as a cheap "
        f"primitive; fold or remove it before secure compilation")


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #

@register_secure_rule(ReLU)
def _secure_relu(module: ReLU, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)

    def relu_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        out = np.maximum(q, 0)            # exact comparison on fixed point
        ctx.record(name, "ReLU", out.shape, relu_ops=out.size, rounds=ROUNDS_GARBLED)
        return out

    return [relu_step]


@register_secure_rule(LeakyReLU)
def _secure_leaky_relu(module: LeakyReLU, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    slope_q = int(encode(np.asarray(module.negative_slope), compiler.fmt.frac_bits))

    def leaky_relu_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        negative = ctx.truncate(q * slope_q)        # public-constant multiply
        out = np.where(q > 0, q, negative)
        ctx.record(name, "LeakyReLU", out.shape, relu_ops=out.size,
                   truncations=out.size, rounds=ROUNDS_GARBLED)
        return out

    return [leaky_relu_step]


def _garbled_function(fn, type_label: str):
    """Lowering for smooth activations evaluated inside a garbled circuit.

    A garbled circuit can evaluate an arbitrary fixed-point function table;
    the cost model (like the static one) charges one comparison-equivalent
    per element.  The simulation evaluates the function on the decoded
    values and re-encodes — the value a circuit for the same fixed-point
    format would output, up to its final rounding.
    """

    def rule(module: Module, compiler: _SecureCompiler) -> List[SecureStep]:
        name = compiler.name_of(module)

        def garbled_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
            out = encode(fn(decode(q, ctx.fmt.frac_bits)), ctx.fmt.frac_bits)
            ctx.record(name, type_label, out.shape, relu_ops=out.size,
                       rounds=ROUNDS_GARBLED)
            return out

        return [garbled_step]

    return rule


register_secure_rule(Sigmoid)(_garbled_function(
    lambda x: 1.0 / (1.0 + np.exp(-x)), "Sigmoid"))
register_secure_rule(Tanh)(_garbled_function(np.tanh, "Tanh"))
register_secure_rule(GELU)(_garbled_function(
    lambda x: 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi)
                                       * (x + 0.044715 * x * x * x))), "GELU"))


@register_secure_rule(Softmax)
def _secure_softmax(module: Softmax, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    axis = module.axis

    def softmax_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        # The client decrypts the logits and normalises locally — standard in
        # every PPML deployment, and why the static model prices Softmax at
        # zero.  Recorded (with zero ops) so the trace stays complete.
        x = decode(q, ctx.fmt.frac_bits)
        shifted = x - x.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = encode(e / e.sum(axis=axis, keepdims=True), ctx.fmt.frac_bits)
        ctx.record(name, "Softmax", out.shape, rounds=0)
        return out

    return [softmax_step]


@register_secure_rule(Square)
def _secure_square(module: Square, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    frac_bits = compiler.fmt.frac_bits
    scale_q = int(encode(np.asarray(module.scale), frac_bits))
    linear_q = int(encode(np.asarray(module.linear), frac_bits))
    plain_square = module.scale == 1.0 and not module.linear

    def square_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        squared = ctx.truncate(q * q)                  # the one Beaver triple
        truncations = q.size
        if plain_square:
            out = squared
        else:
            out = ctx.truncate(squared * scale_q)      # public-constant mults
            truncations += q.size
            if module.linear:
                np.add(out, ctx.truncate(q * linear_q), out=out)
                truncations += q.size
        ctx.record(name, "Square", out.shape, mult_ops=q.size,
                   truncations=truncations, rounds=ROUNDS_MULT)
        return out

    return [square_step]


@register_secure_rule(Identity, Dropout)
def _secure_noop(module: Module, compiler: _SecureCompiler) -> List[SecureStep]:
    # Dropout is the identity in evaluation mode; both are share-local.
    return []


@register_secure_rule(Flatten)
def _secure_flatten(module: Flatten, compiler: _SecureCompiler) -> List[SecureStep]:
    start_dim = module.start_dim

    def flatten_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        return q.reshape(q.shape[:start_dim] + (-1,))

    return [flatten_step]


@register_secure_rule(ZeroPad2d)
def _secure_zeropad(module: ZeroPad2d, compiler: _SecureCompiler) -> List[SecureStep]:
    left, right, top, bottom = module.padding

    def zeropad_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        pad_width = [(0, 0)] * (q.ndim - 2) + [(top, bottom), (left, right)]
        return np.pad(q, pad_width, mode="constant")

    return [zeropad_step]


@register_secure_rule(UpsampleNearest2d)
def _secure_upsample(module: UpsampleNearest2d, compiler: _SecureCompiler) -> List[SecureStep]:
    scale = module.scale_factor

    def upsample_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        return q.repeat(scale, axis=2).repeat(scale, axis=3)

    return [upsample_step]


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #

@register_secure_rule(MaxPool2d)
def _secure_maxpool(module: MaxPool2d, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    from ..autodiff.ops.conv import _pair

    kh, kw = _pair(module.kernel_size)
    stride = _pair(module.stride if module.stride is not None else module.kernel_size)
    padding = _pair(module.padding)
    key = compiler.next_key()

    def maxpool_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        n, c, h, w = q.shape
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        # Same zero-padded window gather as the eager/float path, evaluated
        # with exact integer comparisons (k*k-1 per output element).
        cols_buf = ctx.pool.get((key, "cols"), (n, c, kh, kw, oh, ow), dtype=np.int64)
        cols = im2col(q, kh, kw, stride, padding, out=cols_buf)
        out = cols.reshape(n, c, kh * kw, oh, ow).max(axis=2)
        ctx.record(name, "MaxPool2d", out.shape,
                   relu_ops=out.size * max(kh * kw - 1, 1), rounds=ROUNDS_GARBLED)
        return out

    return [maxpool_step]


def _window_average(q: np.ndarray, kh: int, kw: int, stride, padding,
                    key, ctx: _SecureContext, name: str,
                    type_name: str) -> np.ndarray:
    """Shared secure average pooling: free window sums, one public divisor mult."""
    n, c, h, w = q.shape
    oh = conv_output_size(h, kh, stride[0], padding[0])
    ow = conv_output_size(w, kw, stride[1], padding[1])
    cols_buf = ctx.pool.get((key, "cols"), (n, c, kh, kw, oh, ow), dtype=np.int64)
    cols = im2col(q, kh, kw, stride, padding, out=cols_buf)
    sums = cols.reshape(n, c, kh * kw, oh, ow).sum(axis=2)      # additions: free
    inv_q = int(encode(np.asarray(1.0 / (kh * kw)), ctx.fmt.frac_bits))
    out = ctx.truncate(sums * inv_q)
    ctx.record(name, type_name, out.shape, macs=out.size,
               truncations=out.size, rounds=0)
    return out


@register_secure_rule(AvgPool2d)
def _secure_avgpool(module: AvgPool2d, compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    from ..autodiff.ops.conv import _pair

    kh, kw = _pair(module.kernel_size)
    stride = _pair(module.stride if module.stride is not None else module.kernel_size)
    padding = _pair(module.padding)
    key = compiler.next_key()

    def avgpool_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        return _window_average(q, kh, kw, stride, padding, key, ctx, name, "AvgPool2d")

    return [avgpool_step]


@register_secure_rule(AdaptiveAvgPool2d)
def _secure_adaptive_avgpool(module: AdaptiveAvgPool2d,
                             compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)
    output_size = module.output_size
    key = compiler.next_key()

    def adaptive_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        n, c, h, w = q.shape
        if output_size != 1 and (h % output_size or w % output_size):
            raise ValueError(
                f"adaptive_avg_pool2d requires divisible sizes, got {h}x{w} -> {output_size}"
            )
        kh = h if output_size == 1 else h // output_size
        kw = w if output_size == 1 else w // output_size
        return _window_average(q, kh, kw, (kh, kw), (0, 0), key, ctx, name,
                               "AdaptiveAvgPool2d")

    return [adaptive_step]


@register_secure_rule(GlobalAvgPool2d)
def _secure_global_avgpool(module: GlobalAvgPool2d,
                           compiler: _SecureCompiler) -> List[SecureStep]:
    name = compiler.name_of(module)

    def global_avgpool_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        n, c, h, w = q.shape
        sums = q.sum(axis=(2, 3))                                # additions: free
        inv_q = int(encode(np.asarray(1.0 / (h * w)), ctx.fmt.frac_bits))
        out = ctx.truncate(sums * inv_q)
        ctx.record(name, "GlobalAvgPool2d", out.shape, macs=out.size,
                   truncations=out.size, rounds=0)
        return out

    return [global_avgpool_step]


# --------------------------------------------------------------------------- #
# Quadratic layers
# --------------------------------------------------------------------------- #

_WEIGHT_ATTRS = {"a": "weight_a", "b": "weight_b", "c": "weight_c", "sq": "weight_sq"}


def _combine_projections(required, proj: Dict[str, np.ndarray],
                         bias_q2: Optional[np.ndarray],
                         ctx: _SecureContext) -> Tuple[np.ndarray, int]:
    """Assemble scale-``f`` projections into the neuron output (one truncation).

    The Hadamard product is the layer's one Beaver-triple batch (scale
    ``2f``); linear-path terms and the bias are shifted up to ``2f`` and
    added before the single truncation, exactly as an MPC implementation
    accumulates them.  Returns ``(output, secure_mults_performed)``.
    """
    frac_bits = ctx.fmt.frac_bits
    mults = 0
    if "a" in required and "b" in required:
        acc = proj["a"] * proj["b"]
        mults = acc.size
    elif "a" in required:                     # T3: (Wa X)^2
        acc = proj["a"] * proj["a"]
        mults = acc.size
    else:                                     # T2: the projection is the output
        acc = proj["sq"] << np.int64(frac_bits)
    for kind in ("c", "sq", "id"):
        if kind in required and not (kind == "sq" and "a" not in required):
            acc = acc + (proj[kind] << np.int64(frac_bits))
    if bias_q2 is not None:
        acc = acc + bias_q2
    return ctx.truncate(acc, out=acc), mults


@register_secure_rule(QuadraticConv2d, HybridQuadraticConv2d,
                      HybridQuadraticConv2dT4, HybridQuadraticConv2dFan)
def _secure_quadratic_conv(module: Module, compiler: _SecureCompiler) -> List[SecureStep]:
    """Fused fixed-point quadratic convolution (one shared im2col, like the
    float compiler) with per-projection truncation and one combine truncation."""
    name = compiler.name_of(module)
    type_name = type(module).__name__
    required = REQUIRED_RESPONSES[module.neuron_type]
    stride, padding, groups = _conv_geometry(module)
    kh, kw = module.kernel_size
    f = module.out_channels
    c_g = module.in_channels // groups
    patch = c_g * kh * kw
    wqs = {
        kind: compiler.encode_weight(
            getattr(module, _WEIGHT_ATTRS[kind]).data).reshape(groups, f // groups, patch)
        for kind in required if kind != "id"
    }
    bias_q2 = (compiler.encode_bias(module.bias.data).reshape(1, f, 1, 1)
               if module.bias is not None else None)
    key = compiler.next_key()

    def quadratic_conv_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        n, c, h, w = q.shape
        oh = conv_output_size(h, kh, stride[0], padding[0])
        ow = conv_output_size(w, kw, stride[1], padding[1])
        positions = oh * ow
        out_shape = (n, groups, f // groups, positions)
        cols_buf = ctx.pool.get((key, "cols"), (n, c, kh, kw, oh, ow), dtype=np.int64)
        cols = im2col(q, kh, kw, stride, padding, out=cols_buf)
        cols = cols.reshape(n, groups, patch, positions)
        macs = 0
        mult_ops = 0
        truncations = 0
        proj: Dict[str, np.ndarray] = {}
        sq_cols = None
        for kind in required:
            if kind == "id":
                proj["id"] = q
                continue
            if kind == "sq":
                # One Beaver triple per *input* element: square the input
                # once, share its lowering (im2col of x² == im2col(x)²,
                # because zero padding squares to zero).
                sq_in = ctx.truncate(q * q)
                mult_ops += q.size
                truncations += q.size
                sq_buf = ctx.pool.get((key, "sq_cols"), (n, c, kh, kw, oh, ow),
                                      dtype=np.int64)
                sq_cols = im2col(sq_in, kh, kw, stride, padding, out=sq_buf)
                source = sq_cols.reshape(n, groups, patch, positions)
            else:
                source = cols
            projected = _int_project(source, wqs[kind],
                                     ctx.pool.get((key, kind), out_shape, dtype=np.int64))
            macs += _conv_macs(n, groups, f // groups, patch, positions)
            projected = ctx.truncate(projected, out=projected)
            truncations += projected.size
            proj[kind] = projected.reshape(n, f, oh, ow)
        out, combine_mults = _combine_projections(required, proj, bias_q2, ctx)
        mult_ops += combine_mults
        truncations += out.size
        ctx.record(name, type_name, out.shape, macs=macs, mult_ops=mult_ops,
                   truncations=truncations,
                   rounds=ROUNDS_LINEAR + (ROUNDS_MULT if mult_ops else 0))
        return out

    return [quadratic_conv_step]


@register_secure_rule(QuadraticLinear, HybridQuadraticLinear)
def _secure_quadratic_linear(module: Module, compiler: _SecureCompiler) -> List[SecureStep]:
    """Fixed-point dense quadratic layer (composable designs; T1 unsupported)."""
    name = compiler.name_of(module)
    type_name = type(module).__name__
    required = REQUIRED_RESPONSES[module.neuron_type]
    if "bilinear" in required:
        raise SecureExecutionError(
            f"full-rank bilinear (T1-family) layers are not supported by the "
            f"secure runtime (layer '{name}'): the X^T W X term has no cheap "
            f"secret-shared evaluation — convert to a composable design first")
    wqs_t = {
        kind: compiler.encode_weight(getattr(module, _WEIGHT_ATTRS[kind]).data.T)
        for kind in required if kind != "id"
    }
    bias_q2 = compiler.encode_bias(module.bias.data) if module.bias is not None else None
    in_features, out_features = module.in_features, module.out_features

    def quadratic_linear_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
        batch = int(np.prod(q.shape[:-1]))
        macs = 0
        mult_ops = 0
        truncations = 0
        proj: Dict[str, np.ndarray] = {}
        for kind in required:
            if kind == "id":
                proj["id"] = q
                continue
            if kind == "sq":
                source = ctx.truncate(q * q)
                mult_ops += q.size
                truncations += q.size
            else:
                source = q
            projected = ctx.truncate(source @ wqs_t[kind])
            macs += batch * in_features * out_features
            truncations += projected.size
            proj[kind] = projected
        out, combine_mults = _combine_projections(required, proj, bias_q2, ctx)
        mult_ops += combine_mults
        truncations += out.size
        ctx.record(name, type_name, out.shape, macs=macs, mult_ops=mult_ops,
                   truncations=truncations,
                   rounds=ROUNDS_LINEAR + (ROUNDS_MULT if mult_ops else 0))
        return out

    return [quadratic_linear_step]


@register_secure_rule(QuadraticConv2dT1)
def _secure_quadratic_conv_t1(module: QuadraticConv2dT1,
                              compiler: _SecureCompiler) -> List[SecureStep]:
    raise SecureExecutionError(
        f"full-rank bilinear (T1-family) layers are not supported by the "
        f"secure runtime (layer '{compiler.name_of(module)}'): the X^T W X "
        f"term has no cheap secret-shared evaluation — convert to a "
        f"composable design first")


# --------------------------------------------------------------------------- #
# Composite blocks (registered here so the zoo stays free of ppml imports)
# --------------------------------------------------------------------------- #

def _register_secure_block_rules() -> None:
    from ..models.mobilenet import DepthwiseSeparableBlock
    from ..models.resnet import BasicBlock

    @register_secure_rule(BasicBlock)
    def _secure_basic_block(module: BasicBlock, compiler: _SecureCompiler) -> List[SecureStep]:
        main = compiler.compile_chain(
            [module.conv1, module.bn1, module.relu, module.conv2, module.bn2])
        shortcut = compiler.compile_module(module.shortcut)
        final_relu = compiler.compile_module(module.relu)

        def basic_block_step(q: np.ndarray, ctx: _SecureContext) -> np.ndarray:
            out = q
            for step in main:
                out = step(out, ctx)
            residual = q
            for step in shortcut:
                residual = step(residual, ctx)
            out = out + residual                # share addition: free, exact
            for step in final_relu:
                out = step(out, ctx)
            return out

        return [basic_block_step]

    @register_secure_rule(DepthwiseSeparableBlock)
    def _secure_dw_block(module: DepthwiseSeparableBlock,
                         compiler: _SecureCompiler) -> List[SecureStep]:
        return compiler.compile_chain([module.depthwise, module.bn1, module.relu,
                                       module.pointwise, module.bn2, module.relu])


_register_secure_block_rules()
