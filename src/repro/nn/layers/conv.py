"""First-order convolution layers."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ...autodiff.tensor import Tensor
from .. import functional as F
from .. import init
from ..module import Module
from ..parameter import Parameter

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class Conv2d(Module):
    """2-D convolution over NCHW tensors.

    Supports grouped convolution; setting ``groups == in_channels`` yields the
    depthwise convolution used by MobileNetV1.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair,
                 stride: IntOrPair = 1, padding: IntOrPair = 0, groups: int = 1,
                 bias: bool = True) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"in_channels ({in_channels}) and out_channels ({out_channels}) "
                f"must both be divisible by groups ({groups})"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = int(groups)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, kh, kw))
        )
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}, groups={self.groups}, "
                f"bias={self.bias is not None}")


class DepthwiseSeparableConv2d(Module):
    """Depthwise 3×3 convolution followed by a pointwise 1×1 convolution.

    This is the "DW" building block of MobileNetV1 referenced in Table 3.
    BatchNorm/activation are left to the caller so the block composes with
    either first-order or quadratic pointwise layers.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: IntOrPair = 1,
                 bias: bool = False) -> None:
        super().__init__()
        self.depthwise = Conv2d(in_channels, in_channels, kernel_size=3, stride=stride,
                                padding=1, groups=in_channels, bias=bias)
        self.pointwise = Conv2d(in_channels, out_channels, kernel_size=1, bias=bias)

    def forward(self, x: Tensor) -> Tensor:
        return self.pointwise(self.depthwise(x))
