"""Profilers against the compiled inference path: same outputs, fewer allocations."""

from __future__ import annotations

import numpy as np

from repro.autodiff.function import Function
from repro.autodiff.tensor import Tensor
from repro.experiment import ModelSpec
from repro.inference import compile_model
from repro.profiler.flops import profile_model
from repro.profiler.latency import profile_latency
from repro.utils import seed_everything

INPUT_SHAPE = (3, 16, 16)


def build_model():
    seed_everything(0)
    return ModelSpec(name="small_convnet", neuron_type="OURS", num_classes=4,
                     width_multiplier=0.25, extra={"image_size": 16}).build()


class TestLatencyProfiler:
    def test_compiled_timing_is_reported(self):
        model = build_model()
        report = profile_latency(model, INPUT_SHAPE, batch_size=2, num_classes=4,
                                 warmup=0, iterations=1, compiled=True)
        assert report.compiled_ms_per_batch is not None
        assert report.compiled_ms_per_batch > 0
        assert report.compiled_speedup is not None
        assert report.compiled_speedup > 0

    def test_compiled_timing_off_by_default(self):
        model = build_model()
        report = profile_latency(model, INPUT_SHAPE, batch_size=2, num_classes=4,
                                 warmup=0, iterations=1)
        assert report.compiled_ms_per_batch is None
        assert report.compiled_speedup is None


class TestFlopsProfilerAgainstCompiled:
    def test_compilation_does_not_disturb_the_profile(self):
        model = build_model()
        before = profile_model(model, INPUT_SHAPE)
        compiled = compile_model(model)
        after = profile_model(model, INPUT_SHAPE)
        assert after.total_parameters == before.total_parameters
        assert after.total_macs == before.total_macs
        assert len(after.layers) == len(before.layers)

        # ... and the compiled forward still matches the probe forward.
        x = np.random.default_rng(0).standard_normal((2,) + INPUT_SHAPE).astype(np.float32)
        model.eval()
        np.testing.assert_array_equal(compiled(x), model(Tensor(x)).data)

    def test_compiled_forward_performs_fewer_graph_dispatches(self, monkeypatch):
        """The compiled path must not touch Function.apply at all."""
        model = build_model()
        model.eval()
        compiled = compile_model(model)
        x = np.random.default_rng(1).standard_normal((1,) + INPUT_SHAPE).astype(np.float32)
        compiled(x)  # warm the buffer pool before counting

        counter = {"applies": 0}
        original_apply = Function.apply.__func__

        def counting_apply(cls, *args, **kwargs):
            counter["applies"] += 1
            return original_apply(cls, *args, **kwargs)

        monkeypatch.setattr(Function, "apply", classmethod(counting_apply))

        model(Tensor(x))
        eager_dispatches = counter["applies"]
        assert eager_dispatches > 10  # the eager forward is graph-heavy

        counter["applies"] = 0
        compiled(x)
        assert counter["applies"] == 0

    def test_compiled_forward_allocates_nothing_new_in_steady_state(self):
        model = build_model()
        compiled = compile_model(model)
        x = np.random.default_rng(2).standard_normal((1,) + INPUT_SHAPE).astype(np.float32)
        compiled(x)
        steady = compiled.pool.allocations
        for _ in range(3):
            compiled(x)
        assert compiled.pool.allocations == steady
