"""Tests of the memory, latency and FLOPs profilers."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor, no_grad, randn
from repro.builder import QuadraticModelConfig
from repro.models import SmallConvNet, vgg8
from repro.profiler import (
    GPU_MEMORY_BUDGETS,
    MemoryTracker,
    count_parameters,
    estimate_training_memory,
    profile_latency,
    profile_model,
)


class TestMemoryTracker:
    def test_peak_and_current(self):
        x = randn(4, 16, requires_grad=True)
        w = randn(16, 16, requires_grad=True)
        with MemoryTracker() as tracker:
            (x @ w).relu().sum().backward()
        assert tracker.peak_bytes > 0
        assert tracker.current_bytes == 0  # everything released after backward

    def test_forward_only_grows_backward_releases(self):
        x = randn(8, 32, requires_grad=True)
        w = randn(32, 32, requires_grad=True)
        with MemoryTracker() as tracker:
            out = ((x @ w).relu() @ w).sum()
            forward_peak = tracker.current_bytes
            out.backward()
        assert forward_peak > 0
        assert tracker.current_bytes < forward_peak

    def test_timeline_monotone_during_forward(self):
        x = randn(4, 8, requires_grad=True)
        w = randn(8, 8, requires_grad=True)
        with MemoryTracker() as tracker:
            y = (x @ w).relu()
            y = (y @ w).relu()
            n_forward_events = len(tracker.samples)
            curve = tracker.timeline_bytes()[:n_forward_events]
            assert all(a <= b for a, b in zip(curve, curve[1:]))
            y.sum().backward()

    def test_no_grad_caches_nothing(self):
        x = randn(4, 16)
        w = randn(16, 16)
        with MemoryTracker() as tracker:
            with no_grad():
                (x @ w).relu()
        assert tracker.peak_bytes == 0

    def test_deduplicates_shared_arrays(self):
        # The same input fed to three convolutions must be counted once.
        x = randn(2, 4, 8, 8, requires_grad=True)
        w1, w2, w3 = (randn(4, 4, 3, 3, requires_grad=True) for _ in range(3))
        with MemoryTracker() as tracker:
            out = x.conv2d(w1, padding=1) + x.conv2d(w2, padding=1) + x.conv2d(w3, padding=1)
            out.sum().backward()
        weights_bytes = 3 * w1.nbytes
        # Upper bound if x were triple-counted would exceed x.nbytes * 3.
        assert tracker.peak_bytes < x.nbytes * 3 + weights_bytes

    def test_per_op_peak_contains_op_names(self):
        x = randn(2, 3, 8, 8, requires_grad=True)
        w = randn(4, 3, 3, 3, requires_grad=True)
        with MemoryTracker() as tracker:
            x.conv2d(w, padding=1).sum().backward()
        assert any("Conv2d" in name for name in tracker.per_op_peak())

    def test_nested_trackers_both_observe(self):
        x = randn(4, 4, requires_grad=True)
        with MemoryTracker() as outer:
            with MemoryTracker() as inner:
                (x * x).sum().backward()
        assert outer.peak_bytes == inner.peak_bytes


class TestMemoryEstimate:
    def test_estimate_fields(self):
        model = SmallConvNet(num_classes=10, config=QuadraticModelConfig(width_multiplier=0.5))
        est = estimate_training_memory(model, (3, 32, 32), probe_batch_size=2, num_classes=10)
        assert est.parameter_bytes == sum(p.nbytes for p in model.parameters())
        assert est.gradient_bytes == est.parameter_bytes
        assert est.activation_bytes_per_sample > 0

    def test_total_scales_with_batch_size(self):
        model = SmallConvNet(num_classes=10, config=QuadraticModelConfig(width_multiplier=0.5))
        est = estimate_training_memory(model, (3, 32, 32), probe_batch_size=2, num_classes=10)
        assert est.total_bytes(256) > est.total_bytes(64) > est.total_bytes(1)
        assert est.total_gib(256) == pytest.approx(est.total_bytes(256) / 1024 ** 3)

    def test_quadratic_model_needs_more_memory_than_first_order(self):
        """The Fig. 5 effect: same structure, quadratic neurons, more training memory."""
        first = SmallConvNet(num_classes=10,
                             config=QuadraticModelConfig(neuron_type="first_order",
                                                         width_multiplier=0.5))
        quad = SmallConvNet(num_classes=10,
                            config=QuadraticModelConfig(neuron_type="T2_4",
                                                        width_multiplier=0.5))
        est_first = estimate_training_memory(first, (3, 32, 32), num_classes=10)
        est_quad = estimate_training_memory(quad, (3, 32, 32), num_classes=10)
        assert est_quad.total_bytes(256) > est_first.total_bytes(256)

    def test_gpu_budget_constants(self):
        assert set(GPU_MEMORY_BUDGETS) == {"GTX 1080 Ti", "RTX 2080", "TITAN X"}
        assert all(v > 7 * 1024 ** 3 for v in GPU_MEMORY_BUDGETS.values())

    def test_model_restored_to_original_mode(self):
        model = SmallConvNet(num_classes=10)
        model.eval()
        estimate_training_memory(model, (3, 32, 32), num_classes=10)
        assert model.training is False
        assert all(p.grad is None for p in model.parameters())


class TestLatencyProfiler:
    def test_report_fields(self):
        model = SmallConvNet(num_classes=10, config=QuadraticModelConfig(width_multiplier=0.5))
        report = profile_latency(model, (3, 32, 32), batch_size=4, num_classes=10,
                                 warmup=0, iterations=2)
        assert report.train_ms_per_batch > 0
        assert report.inference_ms_per_batch > 0
        assert report.batch_size == 4

    def test_train_slower_than_inference(self):
        model = SmallConvNet(num_classes=10, config=QuadraticModelConfig(width_multiplier=0.5))
        report = profile_latency(model, (3, 32, 32), batch_size=4, num_classes=10,
                                 warmup=1, iterations=3)
        assert report.train_ms_per_batch > report.inference_ms_per_batch


class TestFlopsProfiler:
    def test_counts_match_module_count(self):
        model = SmallConvNet(num_classes=10)
        profile = profile_model(model, (3, 32, 32))
        assert profile.total_parameters == count_parameters(model)

    def test_conv_macs_scale_with_resolution(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1))
        small = profile_model(model, (3, 16, 16)).total_macs
        large = profile_model(model, (3, 32, 32)).total_macs
        assert large == pytest.approx(4 * small, rel=1e-6)

    def test_quadratic_layers_counted_with_all_weight_sets(self):
        first = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1, bias=False))
        from repro.quadratic import QuadraticConv2d

        quad = nn.Sequential(QuadraticConv2d(3, 8, 3, padding=1, neuron_type="OURS",
                                             bias=False))
        p_first = profile_model(first, (3, 16, 16))
        p_quad = profile_model(quad, (3, 16, 16))
        assert p_quad.total_parameters == 3 * p_first.total_parameters
        assert p_quad.total_macs > 2.9 * p_first.total_macs

    def test_by_name_lookup(self):
        model = SmallConvNet(num_classes=10)
        profile = profile_model(model, (3, 32, 32))
        name = profile.layers[0].name
        assert profile.by_name(name).parameters > 0
        with pytest.raises(KeyError):
            profile.by_name("not_a_layer")

    def test_vgg_profile_reasonable(self):
        model = vgg8(num_classes=10, width_multiplier=0.25)
        profile = profile_model(model, (3, 32, 32))
        conv_layers = [l for l in profile.layers if l.layer_type == "Conv2d"]
        assert len(conv_layers) == 5
