"""Utility helpers: seeding, logging/tables, checkpoint serialisation."""

from .deprecation import reset_deprecation_warnings, warn_deprecated
from .logging import MetricLogger, format_table, print_table
from .seed import current_seed, seed_everything, spawn_rng
from .serialization import load_checkpoint, load_results, save_checkpoint, save_results

__all__ = [
    "warn_deprecated",
    "reset_deprecation_warnings",
    "seed_everything",
    "current_seed",
    "spawn_rng",
    "MetricLogger",
    "format_table",
    "print_table",
    "save_checkpoint",
    "load_checkpoint",
    "save_results",
    "load_results",
]
