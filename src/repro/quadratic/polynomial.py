"""Higher-order polynomial layers (Π-nets / PolyNet style).

Table 5 of the paper compares the quadratic SNGAN against *PolyNet* (Chrysos
et al., 2020), whose Π-net blocks build polynomials of arbitrary order through
a coupled CP-decomposition recursion.  This module implements that family so
the comparison baseline exists in the library and so QuadraLib users can
explore orders beyond two:

.. math::

    x_1 &= U_1 z \\
    x_n &= (U_n z) \circ x_{n-1} + x_{n-1}, \qquad n = 2 \dots N \\
    f(z) &= x_N + b

where every :math:`U_n` is an ordinary first-order projection (dense matrix or
convolution) of the *input* :math:`z` and :math:`\circ` is the Hadamard
product.  The composition is a degree-:math:`N` polynomial in :math:`z`.

Relation to the paper's neuron: at order 2 the recursion gives
``(U_2 z) ∘ (U_1 z) + U_1 z`` — exactly Eq. 2 with the weight of the Hadamard
factor tied to the weight of the linear term (``Wb = Wc``).  The untied
quadratic layer (:class:`~repro.quadratic.QuadraticConv2d` with type
``OURS``) is therefore the more expressive order-2 special case, while this
module provides the general-order extension.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..autodiff.tensor import Tensor
from ..nn import init
from ..nn.containers import ModuleList
from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Module
from ..nn.parameter import Parameter

IntOrPair = Union[int, Tuple[int, int]]


class _PolynomialBase(Module):
    """Shared recursion over per-order projections of the input."""

    def __init__(self, order: int) -> None:
        super().__init__()
        if order < 1:
            raise ValueError(f"polynomial order must be at least 1, got {order}")
        self.order = int(order)
        self.projections = ModuleList()

    def _project(self, index: int, z: Tensor) -> Tensor:
        return self.projections[index](z)

    def _combine(self, z: Tensor) -> Tensor:
        out = self._project(0, z)
        for n in range(1, self.order):
            out = self._project(n, z) * out + out
        return out

    def extra_repr(self) -> str:
        return f"order={self.order}"


class PolyLinear(_PolynomialBase):
    """Dense Π-net layer: a degree-``order`` polynomial of the input vector.

    Parameters
    ----------
    in_features, out_features : int
        Input and output dimensionality (all intermediate recursion states
        live in the output space, as in the CCP formulation).
    order : int
        Polynomial degree; ``order=1`` reduces to an ordinary linear layer.
    bias : bool
        Learn an additive bias applied after the recursion.
    """

    def __init__(self, in_features: int, out_features: int, order: int = 2,
                 bias: bool = True) -> None:
        super().__init__(order)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        for _ in range(self.order):
            self.projections.append(Linear(in_features, out_features, bias=False))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, z: Tensor) -> Tensor:
        out = self._combine(z)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (f"{self.in_features}, {self.out_features}, order={self.order}, "
                f"bias={self.bias is not None}")


class PolyConv2d(_PolynomialBase):
    """Convolutional Π-net layer over NCHW tensors.

    Every order owns one first-order convolution of the input; all orders use
    the same kernel size / stride / padding so the recursion states share a
    spatial resolution.  ``order=1`` reduces to an ordinary convolution,
    ``order=2`` is the weight-tied variant of the paper's quadratic neuron.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntOrPair = 3,
                 stride: IntOrPair = 1, padding: IntOrPair = 0, order: int = 2,
                 groups: int = 1, bias: bool = True) -> None:
        super().__init__(order)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = int(groups)
        for _ in range(self.order):
            self.projections.append(Conv2d(in_channels, out_channels, kernel_size,
                                           stride=stride, padding=padding, groups=groups,
                                           bias=False))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, z: Tensor) -> Tensor:
        out = self._combine(z)
        if self.bias is not None:
            out = out + self.bias.reshape((1, self.out_channels, 1, 1))
        return out

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"order={self.order}, bias={self.bias is not None}")


def polynomial_layer(in_features: int, out_features: int, order: int = 2,
                     kernel_size: Optional[int] = None, stride: int = 1, padding: int = 0,
                     groups: int = 1, bias: bool = True) -> Module:
    """Factory mirroring :func:`repro.quadratic.quadratic_layer` for Π-net layers.

    A convolutional layer is built when ``kernel_size`` is given, a dense one
    otherwise.
    """
    if kernel_size is None:
        return PolyLinear(in_features, out_features, order=order, bias=bias)
    return PolyConv2d(in_features, out_features, kernel_size=kernel_size, stride=stride,
                      padding=padding, order=order, groups=groups, bias=bias)
