"""Global seeding utilities for reproducible experiments.

The paper reports means over 10 runs (Sec. 5.2/5.3); the benchmark harness
uses :func:`seed_everything` to make each run deterministic and
:func:`spawn_rng` to derive independent per-run generators.
"""

from __future__ import annotations

import random

import numpy as np

from ..nn import init as nn_init

_GLOBAL_SEED = 0


def seed_everything(seed: int) -> None:
    """Seed Python, NumPy and the layer-initialisation RNG."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2 ** 32 - 1))
    nn_init.seed(seed)


def current_seed() -> int:
    """The seed most recently passed to :func:`seed_everything`."""
    return _GLOBAL_SEED


def spawn_rng(offset: int = 0) -> np.random.Generator:
    """Create an independent generator derived from the global seed."""
    return np.random.default_rng(_GLOBAL_SEED + 1000003 * (offset + 1))
