"""Link and docstring integrity for the documentation set.

Two rot vectors the executable-docs runner cannot see:

* **Dead links** — a guide referencing a moved/renamed file keeps "passing"
  because its code blocks still run.  Every relative markdown link in
  ``README.md`` and ``docs/*.md`` must resolve to an existing file.
* **Undocumented API** — the PPML subsystem is the repo's demonstration
  artifact; every public symbol it exports must explain itself.  Each
  ``repro.ppml`` ``__all__`` entry (and each submodule) must carry a
  docstring.

This file also runs standalone in the CI lint job (it needs no trained
models, only imports), so documentation rot fails the cheap job first.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: markdown links ``[text](target)``; nested image links match per-URL.
_LINK = re.compile(r"\]\(([^)\s]+)\)")

#: link schemes that point outside the repository.
_EXTERNAL = ("http://", "https://", "mailto:")


def _documents():
    documents = [REPO_ROOT / "README.md"]
    documents.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in documents if path.exists()]


def _relative_links(path: Path):
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        yield target


@pytest.mark.parametrize("path", _documents(), ids=lambda p: p.name)
def test_every_relative_link_resolves(path: Path):
    """Relative links in the docs must point at files that exist."""
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        assert resolved.exists(), (
            f"{path.name} links to '{target}' which does not exist "
            f"(resolved to {resolved})")


def test_docs_index_links_every_guide():
    """docs/index.md is the table of contents: each guide must appear in it."""
    index = REPO_ROOT / "docs" / "index.md"
    assert index.exists(), "docs/index.md is missing"
    text = index.read_text()
    for guide in sorted((REPO_ROOT / "docs").glob("*.md")):
        if guide.name == "index.md":
            continue
        assert guide.name in text, f"docs/index.md does not link {guide.name}"


def test_every_public_ppml_symbol_has_a_docstring():
    import repro.ppml as ppml

    missing = []
    for name in ppml.__all__:
        obj = getattr(ppml, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue        # constants/registries document themselves in-module
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            missing.append(name)
    assert not missing, f"public repro.ppml symbols without docstrings: {missing}"


def test_every_ppml_submodule_has_a_docstring():
    import importlib
    import pkgutil

    import repro.ppml as ppml

    for info in pkgutil.iter_modules(ppml.__path__):
        module = importlib.import_module(f"repro.ppml.{info.name}")
        assert module.__doc__ and module.__doc__.strip(), (
            f"repro.ppml.{info.name} has no module docstring")


def test_public_ppml_classes_document_their_methods():
    """Public callables on the runtime's main classes carry docstrings too."""
    import repro.ppml as ppml

    for cls in (ppml.SecureCompiledModel, ppml.SecurePredictor, ppml.ProtocolTrace,
                ppml.FixedPointFormat, ppml.Protocol, ppml.CostReport):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} has no docstring"
