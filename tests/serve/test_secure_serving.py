"""Secure serving end to end: the worker pool hosting SecurePredictors.

Three properties carry this file:

* **bit-identity** — `serve --secure` answers must equal the single-process
  :meth:`Experiment.secure_predictor` bit for bit (nearest truncation is
  deterministic, so any drift is a real transport/runtime bug), for every
  zoo model that compiles securely;
* **accounting** — every served request debits the offline triple pools,
  and ``produced == available + consumed`` survives a SIGKILL mid-batch
  (crash retries deliberately re-debit, so ``consumed >= answered``);
* **scheduling** — requests only co-batch with requests sharing their
  (protocol, frac_bits, truncation) configuration.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiment import (
    MODELS,
    DataSpec,
    Experiment,
    ExperimentSpec,
    ModelSpec,
    get_preset,
)
from repro.ppml import SecureExecutionError
from repro.serve import ServeConfig, WorkerPool, coalescing_key


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def pool_accounting(pool: WorkerPool) -> dict:
    """Sum the produced/available/consumed counters across all triple pools."""
    pools = pool.stats()["secure"]["offline"]["pools"]
    return {field: sum(p[field] for p in pools.values())
            for field in ("produced", "available", "consumed", "stalls")}


class SecureSmokeSetup:
    """The smoke experiment plus its secure (fixed-point) reference outputs."""

    def __init__(self) -> None:
        self.experiment = Experiment(get_preset("smoke"))
        self.model = self.experiment.build()
        self.model.eval()
        self.state = self.model.state_dict()
        self.spec = self.experiment.spec
        rng = np.random.default_rng(11)
        self.samples = rng.standard_normal(
            (4,) + tuple(self.spec.data.input_shape)).astype(np.float32)
        with self.experiment.secure_predictor() as predictor:
            self.expected = [predictor.predict(s) for s in self.samples]


@pytest.fixture(scope="module")
def secure_smoke():
    return SecureSmokeSetup()


@pytest.fixture(scope="module")
def secure_pool(secure_smoke):
    """One 1-worker secure pool shared by the happy-path tests."""
    config = ServeConfig(workers=1, secure=True, startup_timeout=120.0)
    with WorkerPool(secure_smoke.spec, state=secure_smoke.state,
                    config=config) as running:
        yield running


# --------------------------------------------------------------------------- #
# Bit-identity
# --------------------------------------------------------------------------- #

class TestSecureBitIdentity:
    def test_served_answers_equal_the_single_process_secure_predictor(
            self, secure_pool, secure_smoke):
        for sample, expected in zip(secure_smoke.samples, secure_smoke.expected):
            out = secure_pool.predict(sample, timeout=120.0)
            assert out.dtype == expected.dtype
            assert np.array_equal(out, expected)

    def test_per_request_variant_matches_a_matching_reference(
            self, secure_pool, secure_smoke):
        """A frac_bits override is honoured end to end: the answer equals a
        fresh single-process secure predictor built at that format."""
        sample = secure_smoke.samples[0]
        future = secure_pool.submit(sample, frac_bits=10)
        with secure_smoke.experiment.secure_predictor(frac_bits=10) as reference:
            expected = reference.predict(sample)
        assert np.array_equal(future.result(timeout=120.0), expected)
        # ... and the override drew from its own pool, not the default's.
        pools = secure_pool.stats()["secure"]["offline"]["pools"]
        assert pools["delphi/f10"]["consumed"] >= 1

    def test_warmup_trace_sized_the_budget(self, secure_pool):
        """The pools were sized from exactly what the warm-up measured."""
        trace = secure_pool.warmup_trace
        assert trace is not None
        totals = trace.totals()
        budget = secure_pool.stats()["secure"]["offline"]["budget"]
        assert budget["triples"] == totals["mult_ops"]
        assert budget["labels"] == totals["relu_ops"]
        assert budget["macs"] == totals["macs"]


ZOO_SPECS = MODELS.names()


@pytest.mark.parametrize("name", ZOO_SPECS)
def test_every_securely_compilable_zoo_model_serves_bit_identically(name):
    """The issue's acceptance bar, per model: spin a 1-worker secure pool and
    compare two served answers against the in-process secure predictor."""
    spec = ExperimentSpec(
        name=f"secure-serve-{name}",
        model=ModelSpec(name=name, neuron_type="OURS", num_classes=4,
                        width_multiplier=0.125),
        data=DataSpec(num_classes=4),
        steps=["build"],
    )
    experiment = Experiment(spec)
    model = experiment.build()
    model.eval()
    try:
        with experiment.secure_predictor() as reference:
            samples = np.random.default_rng(3).standard_normal(
                (2,) + tuple(spec.data.input_shape)).astype(np.float32)
            expected = [reference.predict(s) for s in samples]
    except (SecureExecutionError, ValueError) as error:
        pytest.skip(f"{name} does not compile securely: {error}")
    config = ServeConfig(workers=1, secure=True, startup_timeout=120.0)
    with WorkerPool(spec, state=model.state_dict(), config=config) as pool:
        for sample, exp in zip(samples, expected):
            assert np.array_equal(pool.predict(sample, timeout=120.0), exp)


# --------------------------------------------------------------------------- #
# Accounting (including the SIGKILL fault)
# --------------------------------------------------------------------------- #

class TestOfflineAccounting:
    def test_every_request_debits_the_pool(self, secure_smoke):
        config = ServeConfig(workers=1, secure=True, startup_timeout=120.0)
        with WorkerPool(secure_smoke.spec, state=secure_smoke.state,
                        config=config) as pool:
            for sample in secure_smoke.samples:
                pool.predict(sample, timeout=120.0)
            acc = pool_accounting(pool)
            assert acc["consumed"] == len(secure_smoke.samples)
            assert acc["produced"] == acc["available"] + acc["consumed"]
            measured = pool.stats()["secure"]["offline"]["measured"]
            assert measured["requests"] == len(secure_smoke.samples)
            budget = pool.stats()["secure"]["offline"]["budget"]
            assert measured["mult_ops"] == \
                budget["triples"] * len(secure_smoke.samples)

    def test_sigkill_mid_secure_batch_preserves_accounting(self, secure_smoke):
        """Kill the lone worker with a secure request in flight: the request
        is retried on the respawn, the caller still gets the bit-identical
        answer, and the triple-pool invariant holds — with the retry counted
        as a second (deliberate) debit."""
        config = ServeConfig(workers=1, secure=True, max_retries=1,
                             startup_timeout=120.0)
        with WorkerPool(secure_smoke.spec, state=secure_smoke.state,
                        config=config) as pool:
            future = pool.submit(secure_smoke.samples[0])
            pool._workers[0].process.kill()
            out = future.result(timeout=180.0)
            assert np.array_equal(out, secure_smoke.expected[0])
            assert pool.stats()["respawns"] >= 1
            acc = pool_accounting(pool)
            # invariant survives the crash ...
            assert acc["produced"] == acc["available"] + acc["consumed"]
            # ... and consumption covers every answer (a crash retry may
            # have re-debited, so >= rather than ==).
            assert acc["consumed"] >= 1
            # serving still works on the respawned worker, and keeps debiting
            again = pool.predict(secure_smoke.samples[1], timeout=120.0)
            assert np.array_equal(again, secure_smoke.expected[1])
            after = pool_accounting(pool)
            assert after["consumed"] > acc["consumed"]
            assert after["produced"] == after["available"] + after["consumed"]


# --------------------------------------------------------------------------- #
# Scheduling
# --------------------------------------------------------------------------- #

class _Req:
    def __init__(self, shape, secure):
        self.payload = np.zeros(shape, dtype=np.float32)
        self.secure = secure


class TestProtocolAwareScheduling:
    def test_coalescing_key_separates_secure_configs(self):
        a = _Req((3, 8, 8), ("delphi", 12, "nearest"))
        b = _Req((3, 8, 8), ("delphi", 12, "nearest"))
        c = _Req((3, 8, 8), ("delphi", 10, "nearest"))
        d = _Req((3, 8, 8), ("gazelle", 12, "nearest"))
        e = _Req((3, 8, 8), ("delphi", 12, "stochastic"))
        f = _Req((3, 8, 8), None)                       # float request
        assert coalescing_key(a) == coalescing_key(b)
        assert len({coalescing_key(r) for r in (a, c, d, e, f)}) == 5

    def test_mixed_configs_are_served_from_separate_pools(self, secure_pool,
                                                          secure_smoke):
        futures = [
            secure_pool.submit(secure_smoke.samples[0]),
            secure_pool.submit(secure_smoke.samples[0], frac_bits=9),
            secure_pool.submit(secure_smoke.samples[0]),
        ]
        outs = [f.result(timeout=120.0) for f in futures]
        assert np.array_equal(outs[0], outs[2])
        # frac_bits=9 quantizes differently — the answer must differ.
        assert not np.array_equal(outs[0], outs[1])
        pools = secure_pool.stats()["secure"]["offline"]["pools"]
        assert pools["delphi/f9"]["consumed"] >= 1
        # Distinct coalescing keys still ride the in-ring assembly path —
        # mixed-format bursts never regress to the inline fallback.
        assert secure_pool.stats()["transport"]["assembly_fallbacks"] == 0

    def test_overrides_on_a_float_pool_are_rejected(self, smoke):
        config = ServeConfig(workers=1, startup_timeout=120.0)
        with WorkerPool(smoke.spec, state=smoke.state, config=config) as pool:
            with pytest.raises(ValueError, match="secure"):
                pool.submit(smoke.samples[0], frac_bits=10)

    def test_unknown_protocol_override_is_rejected(self, secure_pool,
                                                   secure_smoke):
        with pytest.raises(ValueError):
            secure_pool.submit(secure_smoke.samples[0], protocol="nope")


# --------------------------------------------------------------------------- #
# Stats schema
# --------------------------------------------------------------------------- #

class TestSecureStats:
    def test_float_pool_reports_secure_none(self, smoke):
        unstarted = WorkerPool(smoke.spec, state=smoke.state,
                               config=ServeConfig(workers=1))
        assert unstarted.stats()["secure"] is None

    def test_unstarted_secure_pool_reports_full_schema(self, secure_smoke):
        unstarted = WorkerPool(
            secure_smoke.spec, state=secure_smoke.state,
            config=ServeConfig(workers=1, secure=True))
        secure = unstarted.stats()["secure"]
        assert set(secure) == {"protocol", "frac_bits", "truncation",
                               "strategy", "rejected_precompute", "offline"}
        assert secure["protocol"] == "delphi"
        assert secure["strategy"] == "quadratic_no_relu"
        offline = secure["offline"]
        assert set(offline) == {"pools", "budget", "measured"}
        assert "delphi/f12" in offline["pools"]
