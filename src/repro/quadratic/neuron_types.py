"""Taxonomy of quadratic-neuron designs (paper Table 1).

The paper groups the existing QDNN literature into four basic types — plus
two published hybrids and the identity-mapping variant used as a baseline in
Table 2 — according to how the second-order term in the neuron is formed:

=============  =====================================  ==========================
type           neuron format                          representative reference
=============  =====================================  ==========================
``T1``         ``f(X) = Xᵀ Wa X (+ Wb X)``            Cheung & Leung 1991
``T2``         ``f(X) = Wa X²``                       Goyal et al. 2020
``T3``         ``f(X) = (Wa X)²``                     DeClaris & Su 1991
``T4``         ``f(X) = (Wa X) ∘ (Wb X)``             Bu & Karpatne 2021
``T1_2``       ``f(X) = Xᵀ Wa X + Wb X²``             Milenkovic et al. 1996
``T2_4``       ``f(X) = (Wa X) ∘ (Wb X) + Wc X²``     Fan et al. 2018
``T4_ID``      ``f(X) = (Wa X) ∘ (Wb X) + X``         Table 2 baseline
``OURS``       ``f(X) = (Wa X) ∘ (Wb X) + Wc X``      this paper (Eq. 2)
=============  =====================================  ==========================

Every entry records the analytical time/space complexity from Table 1 and the
practical-usage problems (P1–P4) the paper attributes to the design, so the
complexity benchmark (``bench_table1_complexity``) can regenerate the table
directly from this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class NeuronSpec:
    """Description of one quadratic-neuron design."""

    name: str
    formula: str
    reference: str
    #: number of weight *sets* of the size of a first-order neuron's weight
    #: vector (T1-style full matrices are recorded separately via ``full_rank``).
    weight_sets: int
    #: whether the design carries an n×n full-rank weight matrix per output
    full_rank: bool
    #: asymptotic time complexity as reported in Table 1 (string, for display)
    time_complexity: str
    #: asymptotic space complexity as reported in Table 1 (string, for display)
    space_complexity: str
    #: practical problems P1..P6 the paper attributes to this design
    issues: Tuple[str, ...] = ()
    #: whether the neuron includes a first-order (linear or identity) path,
    #: which is what rescues gradient flow in deep plain networks (P3)
    has_linear_path: bool = False

    def describe(self) -> str:
        issues = ", ".join(self.issues) if self.issues else "-"
        return f"{self.name}: {self.formula}  [{self.reference}]  issues: {issues}"


#: Registry of all supported neuron designs, keyed by canonical name.
NEURON_TYPES: Dict[str, NeuronSpec] = {
    "T1": NeuronSpec(
        name="T1",
        formula="f(X) = X^T Wa X + Wb X",
        reference="Cheung & Leung (1991); Zoumpourlis et al. (2017)",
        weight_sets=1,
        full_rank=True,
        time_complexity="O(n^2 + n)",
        space_complexity="O(n^2 + n)",
        issues=("P2", "P3", "P4"),
        has_linear_path=True,
    ),
    "T1_PURE": NeuronSpec(
        name="T1_PURE",
        formula="f(X) = X^T Wa X",
        reference="Redlapalli et al. (2003); Jiang et al. (2019); Mantini & Shah (2021)",
        weight_sets=0,
        full_rank=True,
        time_complexity="O(n^2)",
        space_complexity="O(n^2)",
        issues=("P2", "P3", "P4"),
    ),
    "T2": NeuronSpec(
        name="T2",
        formula="f(X) = Wa X^2",
        reference="Goyal et al. (2020)",
        weight_sets=1,
        full_rank=False,
        time_complexity="O(2n)",
        space_complexity="O(n)",
        issues=("P1", "P3"),
    ),
    "T3": NeuronSpec(
        name="T3",
        formula="f(X) = (Wa X)^2",
        reference="DeClaris & Su (1991)",
        weight_sets=1,
        full_rank=False,
        time_complexity="O(2n)",
        space_complexity="O(n)",
        issues=("P1", "P3"),
    ),
    "T4": NeuronSpec(
        name="T4",
        formula="f(X) = (Wa X) ∘ (Wb X)",
        reference="Bu & Karpatne (2021)",
        weight_sets=2,
        full_rank=False,
        time_complexity="O(3n)",
        space_complexity="O(2n)",
        issues=("P3",),
    ),
    "T1_2": NeuronSpec(
        name="T1_2",
        formula="f(X) = X^T Wa X + Wb X^2",
        reference="Milenkovic et al. (1996)",
        weight_sets=1,
        full_rank=True,
        time_complexity="O(n^2 + 2n)",
        space_complexity="O(n^2 + n)",
        issues=("P2", "P3", "P4"),
    ),
    "T2_4": NeuronSpec(
        name="T2_4",
        formula="f(X) = (Wa X) ∘ (Wb X) + Wc X^2",
        reference="Fan et al. (2018)",
        weight_sets=3,
        full_rank=False,
        time_complexity="O(5n)",
        space_complexity="O(3n)",
        issues=("P3",),
    ),
    "T4_ID": NeuronSpec(
        name="T4_ID",
        formula="f(X) = (Wa X) ∘ (Wb X) + X",
        reference="Table 2 identity-mapping baseline",
        weight_sets=2,
        full_rank=False,
        time_complexity="O(3n)",
        space_complexity="O(2n)",
        issues=(),
        has_linear_path=True,
    ),
    "OURS": NeuronSpec(
        name="OURS",
        formula="f(X) = (Wa X) ∘ (Wb X) + Wc X",
        reference="QuadraLib (this paper, Eq. 2)",
        weight_sets=3,
        full_rank=False,
        time_complexity="O(4n)",
        space_complexity="O(3n)",
        issues=(),
        has_linear_path=True,
    ),
}

#: Aliases matching the paper's ``qua.type#()`` API naming and common spellings.
ALIASES: Dict[str, str] = {
    "type1": "T1",
    "type1_pure": "T1_PURE",
    "type2": "T2",
    "type3": "T3",
    "type4": "T4",
    "type4_identity": "T4_ID",
    "typenew": "OURS",
    "new": "OURS",
    "ours": "OURS",
    "quadralib": "OURS",
    "fan": "T2_4",
    "fan2018": "T2_4",
    "bu": "T4",
    "bu2021": "T4",
    "milenkovic": "T1_2",
    "cheung": "T1",
}


#: Accepted spellings of the non-quadratic baseline "neuron type".
FIRST_ORDER_NAMES: Tuple[str, ...] = ("first_order", "first-order", "linear", "fo")


def is_first_order(name: str) -> bool:
    """Whether ``name`` denotes the first-order (linear) baseline."""
    return str(name).strip().lower() in FIRST_ORDER_NAMES


def resolve_type(name: str) -> NeuronSpec:
    """Return the :class:`NeuronSpec` for a canonical name or alias."""
    key = name.strip()
    canonical = key.upper()
    if canonical in NEURON_TYPES:
        return NEURON_TYPES[canonical]
    lower = key.lower()
    if lower in ALIASES:
        return NEURON_TYPES[ALIASES[lower]]
    raise KeyError(
        f"unknown quadratic neuron type '{name}'; known types: "
        f"{sorted(NEURON_TYPES)} and aliases {sorted(ALIASES)}"
    )


def available_types() -> List[str]:
    """Canonical names of every registered neuron design."""
    return list(NEURON_TYPES)
