"""``repro.serve`` — scale-out serving: zero-copy data plane + async front door.

PR 2's :class:`~repro.inference.BatchedPredictor` made one process fast;
this package makes N of them a service.  A :class:`WorkerPool` shards
inference across worker processes (each rebuilds the model from the spec
and weights it receives over IPC and compiles it), with:

* a **zero-copy transport** — per-worker shared-memory ring buffers
  (:mod:`repro.serve.shm`) carry the tensors; only ~100-byte control frames
  are pickled.  The ``pipe`` transport (tensors pickled through the queues)
  is kept as the bit-identical reference path.
* **continuous cross-request batching** (:mod:`repro.serve.batching`) — one
  pool-wide FIFO backlog; batches are cut for whichever worker has capacity,
  growing with load instead of waiting on a timer.
* **latency-budget admission control** (:mod:`repro.serve.admission`) —
  requests predicted to wait longer than ``latency_budget_ms`` are shed
  with HTTP ``429`` + ``Retry-After`` before they ever queue.
* crash respawn with slot reclamation and front-of-backlog request retry.
* **secure serving** (``ServeConfig(secure=True)``) — workers host
  :class:`repro.ppml.SecurePredictor` instances (int64 fixed-point
  hybrid-protocol inference); a traced warm-up forward sizes the offline
  Beaver-triple / garbled-label pools (:mod:`repro.ppml.offline`), the
  batcher only co-batches requests sharing a (protocol, frac_bits,
  truncation) configuration, and every dispatch debits the pools.

:class:`ServingServer` puts an asyncio HTTP front door on top:
``POST /predict`` with an LRU response cache, ``GET /healthz`` (flips to 503
while draining) and ``GET /stats`` (p50/p95/p99 per endpoint and per
pipeline stage; plus the ``secure`` accounting section when serving
securely).

Example
-------
>>> from repro.experiment import Experiment, get_preset
>>> exp = Experiment(get_preset("smoke"))
>>> exp.build()
>>> with exp.serve(workers=2, port=0) as server:
...     out = server.predict(sample)        # same path as POST /predict
...     print(server.url)                   # point curl here

Entry points: :meth:`repro.experiment.Experiment.serve` — one call for both
modes (``serve(secure=True)`` flips to fixed-point serving) — and the
``repro serve <spec|preset> --workers N --port P [--secure ...]`` CLI
subcommand.
"""

from .admission import AdmissionController, AdmissionRejected, littles_law_wait_ms
from .batching import (
    DEFAULT_PIPELINE_DEPTH,
    MAX_PIPELINE_DEPTH,
    MIN_PIPELINE_DEPTH,
    PIPELINE_DEPTH,
    PipelineController,
    RequestBacklog,
    coalescing_key,
    ring_slots,
)
from .cache import LRUCache, input_digest
from .config import ServeConfig
from .http import AsyncFrontDoor, ServingApp, ServingServer
from .metrics import (
    EndpointMetrics,
    ReservoirSample,
    ServingMetrics,
    StageMetrics,
    percentile,
)
from .pool import (
    PoolClosed,
    PoolFuture,
    PoolSaturated,
    WorkerCrashed,
    WorkerPool,
)
from .shm import RingFull, ShmFrame, ShmRing, StaleFrame, WorkerRings
from .worker import build_serving_predictor, worker_main

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "littles_law_wait_ms",
    "DEFAULT_PIPELINE_DEPTH",
    "MAX_PIPELINE_DEPTH",
    "MIN_PIPELINE_DEPTH",
    "PIPELINE_DEPTH",
    "PipelineController",
    "RequestBacklog",
    "coalescing_key",
    "ring_slots",
    "LRUCache",
    "input_digest",
    "ServeConfig",
    "AsyncFrontDoor",
    "ServingApp",
    "ServingServer",
    "EndpointMetrics",
    "ReservoirSample",
    "ServingMetrics",
    "StageMetrics",
    "percentile",
    "PoolClosed",
    "PoolFuture",
    "PoolSaturated",
    "WorkerCrashed",
    "WorkerPool",
    "RingFull",
    "ShmFrame",
    "ShmRing",
    "StaleFrame",
    "WorkerRings",
    "build_serving_predictor",
    "worker_main",
]
