"""Interrupt-at-epoch-k → resume → bit-identical final weights (all adapters).

Each test runs a seeded workload twice: once uninterrupted, once stopped
cleanly after ``k`` epochs with a checkpoint directory, then resumed from
``latest.npz`` under a *different* ambient seed (resume must depend only on
the checkpoint, never on global RNG state).  Histories (timing excluded) and
every final weight must match exactly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.builder import QuadraticModelConfig
from repro.data.synthetic import (
    SyntheticDetectionDataset,
    SyntheticGenerationDataset,
    SyntheticImageClassification,
)
from repro.engine import run_classification, run_detection, run_gan
from repro.models import SmallConvNet, build_ssd, sngan_pair
from repro.training.pretrain import pretrain_backbone
from repro.utils import load_training_checkpoint, seed_everything


def assert_states_equal(state_a, state_b):
    assert list(state_a) == list(state_b)
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), f"weight '{name}' differs"


class TestClassificationResume:
    def _datasets(self):
        train = SyntheticImageClassification(num_samples=96, num_classes=4, image_size=16)
        test = SyntheticImageClassification(num_samples=32, num_classes=4, image_size=16,
                                            split_seed=1)
        return train, test

    def _model(self):
        return SmallConvNet(num_classes=4, image_size=16,
                            config=QuadraticModelConfig(width_multiplier=0.5))

    @pytest.mark.parametrize("stop_at", [1, 2])
    def test_resume_matches_uninterrupted(self, tmp_path, stop_at):
        train, test = self._datasets()
        kwargs = dict(epochs=3, batch_size=16, lr=0.05,
                      grad_probe_layers=["features"], max_batches_per_epoch=3, seed=1)

        seed_everything(5)
        full_model = self._model()
        full = run_classification(full_model, train, test, **kwargs)

        ckpt_dir = str(tmp_path / f"ck{stop_at}")
        seed_everything(5)
        interrupted_model = self._model()
        partial = run_classification(interrupted_model, train, test, **kwargs,
                                     checkpoint_dir=ckpt_dir, stop_after_epoch=stop_at)
        assert len(partial.train_loss) == stop_at

        # Resume under a different ambient seed: only the checkpoint may matter.
        seed_everything(999)
        resumed_model = self._model()
        resumed = run_classification(resumed_model, train, test, **kwargs,
                                     resume_from=os.path.join(ckpt_dir, "latest.npz"))

        assert resumed.train_loss == full.train_loss
        assert resumed.train_accuracy == full.train_accuracy
        assert resumed.test_accuracy == full.test_accuracy
        assert resumed.gradient_norms == full.gradient_norms
        assert_states_equal(resumed_model.state_dict(), full_model.state_dict())

    def test_checkpoint_files_written_per_epoch(self, tmp_path):
        train, test = self._datasets()
        seed_everything(5)
        run_classification(self._model(), train, test, epochs=2, batch_size=16,
                           max_batches_per_epoch=2, seed=1,
                           checkpoint_dir=str(tmp_path))
        names = sorted(os.listdir(tmp_path))
        assert names == ["epoch_001.npz", "epoch_002.npz", "latest.npz"]
        payload = load_training_checkpoint(str(tmp_path / "latest.npz"))
        assert payload["task"] == "classification"
        assert payload["epoch"] == 2
        assert payload["adapter"]["history"]["train_loss"]

    def test_resume_with_prefetch_matches_sync(self, tmp_path):
        """The prefetching pipeline changes neither numerics nor resumability."""
        train, test = self._datasets()
        kwargs = dict(epochs=3, batch_size=16, max_batches_per_epoch=3, seed=1)

        seed_everything(5)
        sync_model = self._model()
        sync = run_classification(sync_model, train, test, **kwargs)

        ckpt_dir = str(tmp_path / "pf")
        seed_everything(5)
        interrupted_model = self._model()
        run_classification(interrupted_model, train, test, **kwargs, prefetch=True,
                           checkpoint_dir=ckpt_dir, stop_after_epoch=1)
        seed_everything(123)
        resumed_model = self._model()
        resumed = run_classification(resumed_model, train, test, **kwargs, prefetch=True,
                                     resume_from=os.path.join(ckpt_dir, "latest.npz"))

        assert resumed.train_loss == sync.train_loss
        assert resumed.test_accuracy == sync.test_accuracy
        assert_states_equal(resumed_model.state_dict(), sync_model.state_dict())


class TestAugmentedResume:
    def test_stateful_transform_rngs_resume_bit_identically(self, tmp_path):
        """Checkpoints capture augmentation RNG streams, not just the shuffle."""
        from repro.data import TransformDataset, transforms

        def augmented():
            base = SyntheticImageClassification(num_samples=96, num_classes=4,
                                                image_size=16)
            pipeline = transforms.Compose([
                transforms.RandomCrop(16, padding=2, seed=11),
                transforms.RandomHorizontalFlip(seed=12),
                transforms.GaussianNoise(0.05, seed=13),
            ])
            return TransformDataset(base, pipeline)

        kwargs = dict(epochs=3, batch_size=16, max_batches_per_epoch=2, seed=1)

        seed_everything(5)
        full_model = SmallConvNet(num_classes=4, image_size=16,
                                  config=QuadraticModelConfig(width_multiplier=0.25))
        full = run_classification(full_model, augmented(), **kwargs)

        seed_everything(5)
        interrupted_model = SmallConvNet(num_classes=4, image_size=16,
                                         config=QuadraticModelConfig(width_multiplier=0.25))
        run_classification(interrupted_model, augmented(), **kwargs,
                           checkpoint_dir=str(tmp_path), stop_after_epoch=1)

        seed_everything(42)
        resumed_model = SmallConvNet(num_classes=4, image_size=16,
                                     config=QuadraticModelConfig(width_multiplier=0.25))
        resumed = run_classification(resumed_model, augmented(), **kwargs,
                                     resume_from=str(tmp_path / "latest.npz"))

        assert resumed.train_loss == full.train_loss
        assert_states_equal(resumed_model.state_dict(), full_model.state_dict())


class TestCallbackStateResume:
    def test_early_stopping_counters_survive_a_resume(self, tmp_path):
        """A resumed run stops at the same epoch an uninterrupted one would."""
        from repro.engine import ClassificationAdapter, EarlyStopping, Trainer

        train = SyntheticImageClassification(num_samples=48, num_classes=3, image_size=8)

        def make_adapter():
            seed_everything(21)
            model = SmallConvNet(num_classes=3, image_size=8,
                                 config=QuadraticModelConfig(width_multiplier=0.25))
            return ClassificationAdapter(model, train, epochs=10, batch_size=16,
                                         max_batches_per_epoch=1, seed=1)

        def make_stopper():
            # min_delta so large the metric never "improves": the run always
            # stops after exactly 1 (baseline) + patience epochs.
            return EarlyStopping(monitor="train_loss", mode="min", patience=3,
                                 min_delta=100.0)

        full = Trainer(make_adapter(), callbacks=[make_stopper()]).fit()
        assert len(full.train_loss) == 4

        # Interrupt inside the patience window, then resume with a *fresh*
        # EarlyStopping: its counters must restore from the checkpoint.
        interrupted = Trainer(make_adapter(), callbacks=[make_stopper()],
                              checkpoint_dir=str(tmp_path))
        interrupted.fit(stop_after_epoch=2)
        resumed = Trainer(make_adapter(), callbacks=[make_stopper()])
        history = resumed.fit(resume_from=str(tmp_path / "latest.npz"))
        assert len(history.train_loss) == len(full.train_loss)
        assert history.train_loss == full.train_loss


class TestSplitAndConcatResume:
    def test_subset_and_concat_delegate_augmentation_rng(self):
        from repro.data import ConcatDataset, Subset, TransformDataset, transforms

        base = SyntheticImageClassification(num_samples=16, num_classes=3, image_size=8)
        augmented = TransformDataset(base, transforms.RandomCrop(8, padding=2, seed=4))
        subset = Subset(augmented, list(range(8)))
        concat = ConcatDataset([augmented, base])

        state = subset.rng_state()
        assert state is not None
        augmented.dataset[0]  # no RNG use
        subset[0]             # advances the crop RNG
        assert subset.rng_state() != state
        subset.set_rng_state(state)
        assert subset.rng_state() == state

        concat_state = concat.rng_state()
        assert concat_state is not None and concat_state[1] is None
        concat.set_rng_state(concat_state)
        assert concat.rng_state() == concat_state

        # Datasets without any RNG report None (nothing to checkpoint).
        assert Subset(base, [0, 1]).rng_state() is None
        assert ConcatDataset([base]).rng_state() is None


class TestDetectionResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        dataset = SyntheticDetectionDataset(num_samples=24, image_size=64, num_classes=3,
                                            seed=0)
        kwargs = dict(epochs=3, batch_size=8, lr=5e-3, milestones=(1,),
                      max_batches_per_epoch=1, seed=2)

        seed_everything(7)
        full_model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        full = run_detection(full_model, dataset, **kwargs)

        seed_everything(7)
        interrupted_model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        run_detection(interrupted_model, dataset, **kwargs,
                      checkpoint_dir=str(tmp_path), stop_after_epoch=2)

        seed_everything(31)
        resumed_model = build_ssd(num_classes=3, image_size=64, width_multiplier=0.25)
        resumed = run_detection(resumed_model, dataset, **kwargs,
                                resume_from=str(tmp_path / "latest.npz"))

        assert resumed.loss == full.loss
        assert_states_equal(resumed_model.state_dict(), full_model.state_dict())


class TestGANResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        dataset = SyntheticGenerationDataset(num_samples=48, image_size=16)
        kwargs = dict(steps=4, batch_size=8, discriminator_steps=1, seed=4)

        seed_everything(9)
        full_gen, full_disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        full = run_gan(full_gen, full_disc, dataset, **kwargs)

        seed_everything(9)
        int_gen, int_disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        run_gan(int_gen, int_disc, dataset, **kwargs,
                checkpoint_dir=str(tmp_path), stop_after_epoch=2)

        seed_everything(77)
        res_gen, res_disc = sngan_pair(latent_dim=8, base_channels=8, image_size=16)
        resumed = run_gan(res_gen, res_disc, dataset, **kwargs,
                          resume_from=str(tmp_path / "latest.npz"))

        assert resumed.generator_loss == full.generator_loss
        assert resumed.discriminator_loss == full.discriminator_loss
        assert_states_equal(res_gen.state_dict(), full_gen.state_dict())
        assert_states_equal(res_disc.state_dict(), full_disc.state_dict())


class TestPretrainResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        config = QuadraticModelConfig(neuron_type="first_order", width_multiplier=0.25)
        dataset = SyntheticImageClassification(num_samples=64, num_classes=5, image_size=32)
        kwargs = dict(epochs=2, batch_size=16, lr=0.05, max_batches_per_epoch=2, seed=0)

        seed_everything(13)
        full_state, full = pretrain_backbone(config, dataset, **kwargs)

        seed_everything(13)
        pretrain_backbone(config, dataset, **kwargs,
                          checkpoint_dir=str(tmp_path), stop_after_epoch=1)

        seed_everything(55)
        resumed_state, resumed = pretrain_backbone(
            config, dataset, **kwargs, resume_from=str(tmp_path / "latest.npz"))

        assert resumed.train_loss == full.train_loss
        assert_states_equal(resumed_state, full_state)
