"""Tests of the classification model zoo (VGG / ResNet / MobileNet / small nets)."""

import numpy as np
import pytest

from repro.autodiff import randn
from repro.builder import QuadraticModelConfig
from repro.models import (
    VGG,
    FirstOrderMLP,
    LeNet,
    MobileNetV1,
    QuadraticMLP,
    ResNet,
    SmallConvNet,
    mobilenet_v1,
    mobilenet_v1_quadra,
    resnet20,
    resnet32,
    resnet32_quadra,
    vgg8,
    vgg16,
    vgg16_quadra,
)
from repro.quadratic import QuadraticConv2d


WM = 0.25  # width multiplier keeping test models small


class TestVGG:
    def test_vgg8_forward(self):
        model = vgg8(num_classes=10, width_multiplier=WM)
        assert model(randn(2, 3, 32, 32)).shape == (2, 10)
        assert model.num_conv_layers == 5

    def test_vgg16_has_13_convs(self):
        assert vgg16(num_classes=10, width_multiplier=WM).num_conv_layers == 13

    def test_vgg16_quadra_has_7_convs_and_quadratic_layers(self):
        model = vgg16_quadra(num_classes=10, width_multiplier=WM)
        assert model.num_conv_layers == 7
        assert any(isinstance(m, QuadraticConv2d) for m in model.modules())
        assert model(randn(1, 3, 32, 32)).shape == (1, 10)

    def test_quadra_vgg_fewer_params_than_naive_conversion(self):
        """The Table 3 comparison: auto-built (reduced) QuadraNN is much smaller
        than the naive full-depth conversion."""
        naive = vgg16(num_classes=10, neuron_type="OURS", width_multiplier=WM)
        reduced = vgg16_quadra(num_classes=10, width_multiplier=WM)
        assert reduced.num_parameters() < 0.5 * naive.num_parameters()

    def test_naive_conversion_triples_conv_parameters(self):
        first = vgg8(num_classes=10, width_multiplier=WM)
        quad = vgg8(num_classes=10, neuron_type="OURS", width_multiplier=WM)
        assert quad.num_parameters() > 2.0 * first.num_parameters()

    def test_gradients_flow_through_vgg(self):
        model = vgg8(num_classes=4, neuron_type="OURS", width_multiplier=WM)
        model(randn(2, 3, 32, 32)).sum().backward()
        grads = [p.grad for p in model.parameters() if p.requires_grad]
        assert all(g is not None for g in grads)

    def test_explicit_cfg(self):
        model = VGG([16, "M", 32, "M"], num_classes=5,
                    config=QuadraticModelConfig(neuron_type="T4"))
        assert model(randn(1, 3, 16, 16)).shape == (1, 5)


class TestResNet:
    def test_resnet32_block_counts(self):
        assert resnet32(width_multiplier=WM).block_counts == [5, 5, 5]
        assert resnet32_quadra(width_multiplier=WM).block_counts == [2, 2, 2]
        assert resnet20(width_multiplier=WM).block_counts == [3, 3, 3]

    def test_forward_shape(self):
        model = resnet20(num_classes=10, width_multiplier=WM)
        assert model(randn(2, 3, 32, 32)).shape == (2, 10)

    def test_quadra_resnet_smaller_than_naive_conversion(self):
        """Auto-built [2,2,2] QuadraNN is far smaller than naively converting
        the full [5,5,5] ResNet-32 to quadratic neurons (Table 3 contrast)."""
        naive = resnet32(num_classes=10, neuron_type="OURS", width_multiplier=WM)
        quadra = resnet32_quadra(num_classes=10, width_multiplier=WM)
        baseline = resnet32(num_classes=10, width_multiplier=WM)
        assert quadra.num_parameters() < 0.6 * naive.num_parameters()
        # And stays in the same ballpark as the first-order baseline.
        assert quadra.num_parameters() < 2.0 * baseline.num_parameters()

    def test_quadratic_blocks_used(self):
        model = resnet32_quadra(num_classes=10, width_multiplier=WM)
        assert any(isinstance(m, QuadraticConv2d) for m in model.modules())

    def test_downsampling_stages(self):
        model = resnet20(num_classes=10, width_multiplier=WM)
        feat = model.stages(model.stem(randn(1, 3, 32, 32)))
        assert feat.shape[2:] == (8, 8)  # two stride-2 stages: 32 -> 16 -> 8

    def test_gradients_flow(self):
        model = resnet32_quadra(num_classes=4, width_multiplier=WM)
        model(randn(2, 3, 32, 32)).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestMobileNet:
    def test_block_counts(self):
        assert mobilenet_v1(width_multiplier=WM).num_dw_blocks == 13
        assert mobilenet_v1_quadra(width_multiplier=WM).num_dw_blocks == 8

    def test_forward_shape(self):
        model = mobilenet_v1_quadra(num_classes=10, width_multiplier=WM)
        assert model(randn(2, 3, 32, 32)).shape == (2, 10)

    def test_depthwise_stays_first_order_pointwise_quadratic(self):
        from repro import nn

        model = mobilenet_v1_quadra(num_classes=10, width_multiplier=WM)
        block = model.blocks[0]
        assert isinstance(block.depthwise, nn.Conv2d)
        assert isinstance(block.pointwise, QuadraticConv2d)

    def test_quadra_fewer_params_than_naive(self):
        naive = mobilenet_v1(num_classes=10, neuron_type="OURS", width_multiplier=WM)
        reduced = mobilenet_v1_quadra(num_classes=10, width_multiplier=WM)
        assert reduced.num_parameters() < naive.num_parameters()


class TestSmallModels:
    def test_small_convnet_shapes(self):
        model = SmallConvNet(num_classes=7, image_size=32)
        assert model(randn(2, 3, 32, 32)).shape == (2, 7)

    def test_small_convnet_quadratic(self):
        model = SmallConvNet(num_classes=7, config=QuadraticModelConfig(neuron_type="OURS"))
        assert any(isinstance(m, QuadraticConv2d) for m in model.modules())

    def test_lenet(self):
        assert LeNet(num_classes=5)(randn(2, 3, 32, 32)).shape == (2, 5)

    def test_quadratic_mlp_uses_quadratic_hidden(self):
        from repro.quadratic import QuadraticLinear

        model = QuadraticMLP([4, 8, 2])
        assert any(isinstance(m, QuadraticLinear) for m in model.modules())
        assert model(randn(3, 4)).shape == (3, 2)

    def test_first_order_mlp(self):
        model = FirstOrderMLP([4, 8, 2])
        assert model(randn(3, 4)).shape == (3, 2)
