"""Unit tests for matrix multiplication, einsum and reductions."""

import numpy as np
import pytest

from repro.autodiff import Tensor, einsum, randn, tensor


class TestMatMul:
    def test_2d_forward(self):
        a = randn(3, 4)
        b = randn(4, 5)
        assert np.allclose((a @ b).data, a.data @ b.data, atol=1e-5)

    def test_2d_backward_shapes(self):
        a = randn(3, 4, requires_grad=True)
        b = randn(4, 5, requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 5)

    def test_2d_backward_values(self):
        a = randn(2, 3, requires_grad=True)
        b = randn(3, 4, requires_grad=True)
        (a @ b).sum().backward()
        ones = np.ones((2, 4), dtype=np.float32)
        assert np.allclose(a.grad, ones @ b.data.T, atol=1e-5)
        assert np.allclose(b.grad, a.data.T @ ones, atol=1e-5)

    def test_vector_matrix(self):
        a = randn(4, requires_grad=True)
        b = randn(4, 5, requires_grad=True)
        out = a @ b
        assert out.shape == (5,)
        out.sum().backward()
        assert a.grad.shape == (4,)
        assert b.grad.shape == (4, 5)
        assert np.allclose(a.grad, b.data.sum(axis=1), atol=1e-5)

    def test_matrix_vector(self):
        a = randn(3, 4, requires_grad=True)
        b = randn(4, requires_grad=True)
        out = a @ b
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(b.grad, a.data.sum(axis=0), atol=1e-5)

    def test_batched_matmul(self):
        a = randn(2, 3, 4, requires_grad=True)
        b = randn(2, 4, 5, requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_broadcast_batched_matmul(self):
        a = randn(2, 3, 4, requires_grad=True)
        b = randn(4, 5, requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert b.grad.shape == (4, 5)

    def test_numeric_gradient(self, numgrad):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(3, 2)).astype(np.float32),
                   requires_grad=True)

        def run():
            return float((Tensor(a.data) @ Tensor(b.data)).sum().data)

        (a @ b).sum().backward()
        assert np.allclose(a.grad, numgrad(run, a.data), atol=2e-2)
        assert np.allclose(b.grad, numgrad(run, b.data), atol=2e-2)


class TestEinsum:
    def test_einsum_matches_numpy(self):
        a = randn(4, 3)
        b = randn(3, 5)
        out = einsum("ij,jk->ik", a, b)
        assert np.allclose(out.data, np.einsum("ij,jk->ik", a.data, b.data), atol=1e-5)

    def test_einsum_backward(self):
        a = randn(2, 3, requires_grad=True)
        b = randn(3, requires_grad=True)
        einsum("ij,j->i", a, b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, a.data.sum(axis=0), atol=1e-5)

    def test_einsum_bilinear_contraction(self):
        # The T1 quadratic neuron uses this contraction pattern.
        w = randn(5, 4, 4, requires_grad=True)
        x = randn(3, 4, requires_grad=True)
        partial = einsum("oij,nj->noi", w, x)
        assert partial.shape == (3, 5, 4)
        out = (partial * x.unsqueeze(1)).sum(axis=-1)
        expected = np.einsum("ni,oij,nj->no", x.data, w.data, x.data)
        assert np.allclose(out.data, expected, atol=1e-4)


class TestReductions:
    def test_sum_all(self):
        a = randn(3, 4, requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_sum_axis_keepdims(self):
        a = randn(3, 4, requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_sum_multi_axis(self):
        a = randn(2, 3, 4, requires_grad=True)
        out = a.sum(axis=(0, 2))
        assert out.shape == (3,)

    def test_mean_grad_scaling(self):
        a = randn(4, 5, requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 1.0 / 20.0)

    def test_mean_axis(self):
        a = randn(4, 5, requires_grad=True)
        a.mean(axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0 / 4.0)

    def test_max_forward_and_grad_routing(self):
        a = tensor([[1.0, 5.0], [7.0, 3.0]], requires_grad=True)
        out = a.max(axis=1)
        assert np.allclose(out.data, [5.0, 7.0])
        out.sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = tensor([[2.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad.sum(), 1.0)

    def test_min(self):
        a = tensor([[1.0, 5.0], [7.0, 3.0]], requires_grad=True)
        out = a.min(axis=1)
        assert np.allclose(out.data, [1.0, 3.0])

    def test_global_max_scalar(self):
        a = randn(3, 3, requires_grad=True)
        out = a.max()
        assert out.data.size == 1

    def test_var_and_std(self):
        a = randn(100)
        assert np.allclose(a.var().data, a.data.var(), atol=1e-4)
        assert np.allclose(a.std().data, a.data.std(), atol=1e-3)

    def test_logsumexp_matches_naive(self):
        a = randn(4, 7, requires_grad=True)
        out = a.logsumexp(axis=1)
        naive = np.log(np.exp(a.data).sum(axis=1))
        assert np.allclose(out.data, naive, atol=1e-5)
        out.sum().backward()
        softmax = np.exp(a.data) / np.exp(a.data).sum(axis=1, keepdims=True)
        assert np.allclose(a.grad, softmax, atol=1e-5)

    def test_logsumexp_stable_for_large_values(self):
        a = tensor([[1000.0, 1000.0]])
        out = a.logsumexp(axis=1)
        assert np.isfinite(out.data).all()

    def test_argmax_argmin_are_detached(self):
        a = randn(3, 4)
        assert a.argmax(axis=1).shape == (3,)
        assert a.argmin(axis=1).shape == (3,)
