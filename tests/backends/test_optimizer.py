"""The graph optimizer and the cross-layer buffer lifetime planner.

Each pass is pinned at its own contract: dead-layer elimination and padding
folding are *bit-exact* rewrites, BatchNorm freezing is bit-exact constant
folding, and BN-into-conv (level ``"full"``) is an arithmetic refactor held
to float tolerance.  The :class:`OptimizationReport` counts are asserted
alongside, so ``repro infer --json`` keeps telling the truth about what the
optimizer did.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.experiment import ModelSpec
from repro.inference import (
    FrozenBatchNorm,
    OptimizationReport,
    compile_model,
    optimize_plan,
)
from repro.inference.optimizer import OPT_LEVELS, normalize_level
from repro.utils.seed import seed_everything

RNG = np.random.default_rng(11)


def eager(model, x: np.ndarray) -> np.ndarray:
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


# --------------------------------------------------------------------------- #
# Level normalisation
# --------------------------------------------------------------------------- #

def test_normalize_level_accepts_every_spelling():
    assert normalize_level(None) == "default"
    assert normalize_level(True) == "default"
    assert normalize_level(False) == "none"
    assert normalize_level(" FULL ") == "full"
    for level in OPT_LEVELS:
        assert normalize_level(level) == level


def test_normalize_level_rejects_unknown_levels():
    with pytest.raises(ValueError, match="none, default, full"):
        normalize_level("O3")


# --------------------------------------------------------------------------- #
# Dead-layer elimination (bit-exact)
# --------------------------------------------------------------------------- #

class TestDeadLayers:
    def build(self):
        seed_everything(0)
        return nn.Sequential(
            nn.Linear(8, 8), nn.Dropout(0.5), nn.Identity(),
            nn.ReLU(), nn.Linear(8, 3),
        )

    def test_dead_layers_are_removed_and_bits_preserved(self):
        model = self.build()
        x = RNG.standard_normal((4, 8)).astype(np.float32)
        raw = compile_model(model, optimize="none")
        opt = compile_model(model, optimize="default")
        assert opt.optimization.dead_layers_eliminated == 2
        np.testing.assert_array_equal(opt(x), raw(x))
        np.testing.assert_array_equal(opt(x), eager(model, x))

    def test_elimination_restores_adjacency_for_other_passes(self):
        # The pad-fold pass only sees *adjacent* pairs; removing the Dropout
        # in between is what lets the ZeroPad2d reach its conv.
        seed_everything(0)
        model = nn.Sequential(nn.ZeroPad2d(1), nn.Dropout(0.1),
                              nn.Conv2d(3, 4, 3))
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        opt = compile_model(model, optimize="default")
        assert opt.optimization.dead_layers_eliminated == 1
        assert opt.optimization.paddings_folded == 1
        np.testing.assert_array_equal(opt(x), eager(model, x))

    def test_hooked_layers_survive(self):
        # An observed module must keep running — analysis hooks rely on it.
        model = self.build()
        model[1].register_forward_hook(lambda module, inputs, output: None)
        opt = compile_model(model, optimize="default")
        assert opt.optimization.dead_layers_eliminated == 1  # Identity only

    def test_optimize_plan_does_not_mutate_its_input(self):
        modules = list(self.build())
        before = list(modules)
        planned, report = optimize_plan(modules, "default")
        assert modules == before
        assert len(planned) == 3
        assert isinstance(report, OptimizationReport)
        assert report.total_rewrites == report.dead_layers_eliminated == 2


# --------------------------------------------------------------------------- #
# Padding folding (bit-exact)
# --------------------------------------------------------------------------- #

class TestPaddingFold:
    def test_symmetric_pad_folds_into_conv(self):
        seed_everything(0)
        model = nn.Sequential(nn.ZeroPad2d(1), nn.Conv2d(3, 4, 3), nn.ReLU())
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        opt = compile_model(model, optimize="default")
        assert opt.optimization.paddings_folded == 1
        np.testing.assert_array_equal(opt(x), eager(model, x))
        # The model itself is untouched: its conv still pads 0.
        assert model[1].padding == (0, 0)

    def test_asymmetric_pad_is_left_alone(self):
        seed_everything(0)
        model = nn.Sequential(nn.ZeroPad2d((1, 2, 1, 1)), nn.Conv2d(3, 4, 3))
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        opt = compile_model(model, optimize="default")
        assert opt.optimization.paddings_folded == 0
        np.testing.assert_array_equal(opt(x), eager(model, x))


# --------------------------------------------------------------------------- #
# BatchNorm: freezing (bit-exact) and conv-folding (float tolerance)
# --------------------------------------------------------------------------- #

class TestBatchNorm:
    def trained_conv_bn(self):
        seed_everything(0)
        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.BatchNorm2d(4),
                              nn.ReLU())
        # One training-mode pass gives the BN non-trivial running statistics.
        model.train()
        with no_grad():
            model(Tensor(RNG.standard_normal((4, 3, 8, 8)).astype(np.float32)))
        model.eval()
        return model

    def test_default_level_freezes_batchnorms_bit_exactly(self):
        model = self.trained_conv_bn()
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        opt = compile_model(model, optimize="default")
        assert opt.optimization.constants_folded == 1
        assert opt.optimization.batchnorms_folded == 0
        np.testing.assert_array_equal(opt(x), eager(model, x))

    def test_full_level_folds_bn_into_conv_within_tolerance(self):
        model = self.trained_conv_bn()
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        opt = compile_model(model, optimize="full")
        assert opt.optimization.batchnorms_folded == 1
        assert opt.num_steps < compile_model(model, optimize="none").num_steps
        np.testing.assert_allclose(opt(x), eager(model, x), atol=1e-5, rtol=1e-5)

    def test_frozen_batchnorm_is_a_compile_time_construct(self):
        model = self.trained_conv_bn()
        frozen = FrozenBatchNorm(model[1])
        with pytest.raises(RuntimeError):
            frozen.forward(Tensor(np.zeros((1, 4, 2, 2), dtype=np.float32)))

    def test_report_round_trips_to_dict(self):
        model = self.trained_conv_bn()
        report = compile_model(model, optimize="full").optimization
        payload = report.to_dict()
        assert payload["level"] == "full"
        assert payload["batchnorms_folded"] == 1
        assert "notes" not in payload  # notes are for humans, not for schemas
        assert report.notes  # ...but they exist


# --------------------------------------------------------------------------- #
# Buffer lifetime planning
# --------------------------------------------------------------------------- #

class TestLifetimePlanner:
    @pytest.mark.parametrize("name", ["mobilenet_v1", "resnet20"])
    def test_planned_pool_is_smaller_and_bits_unchanged(self, name):
        seed_everything(0)
        spec = ModelSpec(name=name, neuron_type="OURS", num_classes=4,
                         width_multiplier=0.125)
        model = spec.build()
        model.eval()
        x = (0.1 * RNG.standard_normal((4, 3, 32, 32))).astype(np.float32)
        raw = compile_model(model, optimize="none")
        planned = compile_model(model, optimize="default")
        np.testing.assert_array_equal(planned(x), raw(x))
        # The planner's whole point: the steady-state arena is much smaller.
        assert planned.pool.nbytes < 0.75 * raw.pool.nbytes

    def test_repeated_calls_reuse_the_planned_buffers(self):
        seed_everything(0)
        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.ReLU(),
                              nn.Conv2d(4, 4, 3, padding=1), nn.ReLU())
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        compiled = compile_model(model, optimize="default")
        first = compiled(x).copy()
        size_after_first = compiled.pool.nbytes
        np.testing.assert_array_equal(compiled(x), first)
        assert compiled.pool.nbytes == size_after_first
