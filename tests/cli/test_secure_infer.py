"""Tests for ``repro secure-infer`` and the registry-regenerated CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.cli.main import LIST_CHOICES, _LIST_FAMILIES


def run(argv, capsys) -> str:
    assert main(argv) == 0
    return capsys.readouterr().out


# --------------------------------------------------------------------------- #
# secure-infer
# --------------------------------------------------------------------------- #

def test_secure_infer_smoke_runs_end_to_end(capsys):
    out = run(["secure-infer", "smoke", "--protocol", "delphi", "--frac-bits", "12",
               "--samples", "2"], capsys)
    assert "matches static analysis" in out and "NO" not in out
    assert "garbled-circuit free" in out
    assert "delphi" in out


def test_secure_infer_json_reports_trace_and_match(capsys):
    out = run(["secure-infer", "smoke", "--samples", "1", "--json"], capsys)
    results = json.loads(out)
    assert results["matches_static"] is True
    assert results["garbled_free"] is True
    assert results["trace"]["totals"]["relu_ops"] == 0
    assert results["trace"]["totals"]["mult_ops"] > 0
    assert results["top1_agreement"] == 1.0
    assert results["online_latency_ms"] > 0


def test_secure_infer_strategy_none_pays_garbled_circuits(capsys):
    out = run(["secure-infer", "smoke", "--samples", "1", "--strategy", "none",
               "--json"], capsys)
    results = json.loads(out)
    # smoke's model keeps its ReLUs when no conversion is applied.
    assert results["garbled_free"] is False
    assert results["matches_static"] is True


def test_secure_infer_per_layer_prints_the_trace(capsys):
    out = run(["secure-infer", "smoke", "--samples", "1", "--per-layer"], capsys)
    assert "Executed protocol trace" in out
    assert "TOTAL" in out


def test_secure_infer_rejects_unknown_protocol(capsys):
    assert main(["secure-infer", "smoke", "--protocol", "quantum"]) == 2
    assert "unknown PPML protocol" in capsys.readouterr().err


def test_secure_infer_rejects_bad_frac_bits(capsys):
    assert main(["secure-infer", "smoke", "--frac-bits", "40"]) == 2
    assert "frac_bits" in capsys.readouterr().err


def test_secure_infer_rejects_unknown_strategy(capsys):
    assert main(["secure-infer", "smoke", "--strategy", "prune"]) == 2
    assert "strategy" in capsys.readouterr().err


def test_secure_infer_rejects_zero_samples(capsys):
    assert main(["secure-infer", "smoke", "--samples", "0"]) == 2
    assert "at least 1" in capsys.readouterr().err


def test_secure_infer_writes_results_file(tmp_path, capsys):
    out_path = tmp_path / "secure.json"
    run(["secure-infer", "smoke", "--samples", "1", "--out", str(out_path)], capsys)
    payload = json.loads(out_path.read_text())
    assert payload["results"]["secure_infer"]["matches_static"] is True


# --------------------------------------------------------------------------- #
# The shared secure flag family (secure-infer and serve --secure)
# --------------------------------------------------------------------------- #

SECURE_FLAGS = ("--protocol", "--frac-bits", "--truncation", "--strategy")


def subcommand_help(name: str, capsys) -> str:
    with pytest.raises(SystemExit):
        build_parser().parse_args([name, "--help"])
    return capsys.readouterr().out


@pytest.mark.parametrize("command", ["secure-infer", "serve"])
def test_secure_flags_exist_on_both_secure_entry_points(command, capsys):
    """The flag family is a shared argparse parent: both commands must
    advertise all four flags, or the two secure surfaces have drifted."""
    help_text = subcommand_help(command, capsys)
    for flag in SECURE_FLAGS:
        assert flag in help_text, f"'repro {command} --help' omits {flag}"


def test_serve_advertises_its_secure_only_flags(capsys):
    help_text = subcommand_help("serve", capsys)
    assert "--secure" in help_text
    assert "--triple-pool-depth" in help_text


def test_secure_flag_defaults_agree_between_the_two_commands():
    """Same parent parser => same defaults; parse both and compare."""
    parser = build_parser()
    infer_args = parser.parse_args(["secure-infer", "smoke"])
    serve_args = parser.parse_args(["serve", "smoke"])
    for flag in ("protocol", "frac_bits", "truncation", "strategy"):
        assert getattr(infer_args, flag) == getattr(serve_args, flag), flag


def test_serve_secure_flags_require_secure(capsys):
    assert main(["serve", "smoke", "--frac-bits", "10"]) == 2
    assert "--secure" in capsys.readouterr().err
    assert main(["serve", "smoke", "--protocol", "gazelle",
                 "--strategy", "square"]) == 2
    err = capsys.readouterr().err
    assert "--protocol" in err and "--strategy" in err


def test_serve_secure_rejects_bad_frac_bits(capsys):
    assert main(["serve", "smoke", "--secure", "--frac-bits", "40"]) == 2
    assert "frac_bits" in capsys.readouterr().err


def test_serve_secure_rejects_fused_batching(capsys):
    assert main(["serve", "smoke", "--secure", "--fused-batching"]) == 2
    assert "fused_batching" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Registry-regenerated surfaces (the drift-proofing fix)
# --------------------------------------------------------------------------- #

def test_list_protocols_prints_every_registered_protocol(capsys):
    from repro.ppml import PROTOCOLS

    out = run(["list", "protocols"], capsys)
    for name in PROTOCOLS:
        assert name in out


def test_list_choices_are_generated_from_the_dispatch_table():
    # The help text, the error message and the dispatch share one source.
    assert LIST_CHOICES == tuple(_LIST_FAMILIES)
    assert "protocols" in LIST_CHOICES and "callbacks" in LIST_CHOICES


def test_list_help_text_names_every_family(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["list", "--help"])
    help_text = capsys.readouterr().out
    for family in LIST_CHOICES:
        assert family in help_text, f"'repro list --help' omits family '{family}'"


def test_list_error_names_every_family(capsys):
    assert main(["list", "gadgets"]) == 2
    err = capsys.readouterr().err
    for family in LIST_CHOICES:
        assert family in err


def test_every_list_family_prints(capsys):
    for family in LIST_CHOICES:
        out = run(["list", family], capsys)
        assert out.strip(), f"'repro list {family}' printed nothing"


def test_quadratic_layer_error_lists_every_registered_design():
    """The ValueError is regenerated from the registries on every raise."""
    from repro.quadratic.factory import quadratic_layer
    from repro.quadratic.neuron_types import ALIASES, NEURON_TYPES

    with pytest.raises(ValueError) as excinfo:
        quadratic_layer("made_up_type", 4, 4)
    message = str(excinfo.value)
    for name in NEURON_TYPES:
        assert name in message
    for alias in ALIASES:
        assert alias in message
    assert "hybrid_bp" in message
