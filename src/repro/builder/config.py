"""Model-structure configuration files (paper Sec. 4.2).

QuadraLib builds models from *structure configuration* objects: a list
describing depth and width, plus switches for the design insights the paper
derives (always insert BatchNorm after a quadratic layer; activation functions
are optional for shallow QDNNs but required for deep ones).  The same
configuration drives both the first-order and the quadratic construction
functions, so first-order baselines and QDNNs are structurally identical
except for the neuron type.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: VGG-style feature configurations: channel counts with "M" marking max-pooling.
#: These mirror the torchvision configurations at CIFAR scale.
VGG_CFGS: Dict[str, List[Union[int, str]]] = {
    # 5 conv layers + pools — the "VGG-8" used in Table 2 (plus classifier).
    "VGG8": [64, "M", 128, "M", 256, "M", 512, "M", 512, "M"],
    "VGG11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    # 13 conv layers — the paper's VGG-16 feature extractor (Table 3 row 1).
    "VGG16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M",
              512, 512, 512, "M"],
    # 7 conv layers — the auto-built QuadraNN version of VGG-16 (Table 3).
    "VGG16_QUADRA": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, "M"],
}

#: ResNet (CIFAR-style) block counts per stage: paper uses [5, 5, 5] = ResNet-32
#: for the first-order baseline and [2, 2, 2] for the auto-built QuadraNN.
RESNET_BLOCKS: Dict[str, List[int]] = {
    "RESNET20": [3, 3, 3],
    "RESNET32": [5, 5, 5],
    "RESNET32_QUADRA": [2, 2, 2],
    "RESNET8": [1, 1, 1],
}

#: MobileNetV1 configurations: (out_channels, stride) per depthwise-separable
#: block.  13 blocks for the first-order baseline, 8 for the QuadraNN version.
MOBILENET_CFGS: Dict[str, List[Tuple[int, int]]] = {
    "MOBILENET13": [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
        (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
    ],
    "MOBILENET8": [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2), (512, 1), (1024, 2),
    ],
}


@dataclass
class QuadraticModelConfig:
    """Switches controlling how a quadratic model is constructed.

    Attributes
    ----------
    neuron_type : str
        Quadratic design to use for converted layers ("OURS", "T2_4", …) or
        ``"first_order"`` for the baseline.
    use_batchnorm : bool
        Design insight 2: quadratic layers produce extreme values, so
        BatchNorm is inserted after every (quadratic) conv by default.
    use_activation : bool
        Design insight 3: shallow QDNNs may drop ReLU; deep ones need it.
    hybrid_bp : bool
        Use the symbolic-backward (memory-efficient) quadratic layers.
    width_multiplier : float
        Scales every channel count (used to fit CPU budgets in benchmarks).
    """

    neuron_type: str = "OURS"
    use_batchnorm: bool = True
    use_activation: bool = True
    hybrid_bp: bool = False
    width_multiplier: float = 1.0

    def scaled(self, channels: int) -> int:
        return max(int(round(channels * self.width_multiplier)), 8)

    def with_(self, **changes) -> "QuadraticModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def is_first_order(self) -> bool:
        from ..quadratic.neuron_types import is_first_order

        return is_first_order(self.neuron_type)


def scale_vgg_cfg(cfg: Sequence[Union[int, str]], multiplier: float) -> List[Union[int, str]]:
    """Scale the channel counts of a VGG configuration by ``multiplier``."""
    scaled: List[Union[int, str]] = []
    for item in cfg:
        if item == "M":
            scaled.append("M")
        else:
            scaled.append(max(int(round(int(item) * multiplier)), 8))
    return scaled


def conv_layer_count(cfg: Sequence[Union[int, str]]) -> int:
    """Number of convolution layers in a VGG-style configuration."""
    return sum(1 for item in cfg if item != "M")
