"""``repro.engine`` — the unified, callback-driven training engine.

One :class:`Trainer` runs every workload in the repository; what differs per
task lives in a :class:`TaskAdapter` (classification, detection, GAN — and
backbone pre-training, which is classification over a backbone-shaped
model).  On top of the shared loop the engine provides:

* a typed callback/hook system (:mod:`repro.engine.callbacks`) with built-in
  checkpointing, early stopping and progress logging;
* full-state checkpoints — model, optimizer(s), LR scheduler, RNG streams,
  epoch counter, history — written atomically and resumable to bit-identical
  final weights (``Trainer.fit(resume_from=...)``);
* optional prefetching data pipelines
  (:class:`repro.data.PrefetchDataLoader`) that overlap batch assembly with
  compute without changing numerics.

The legacy entry points in :mod:`repro.training` are thin adapters over this
engine with their public signatures and history semantics preserved bit for
bit.

Example
-------
>>> from repro.engine import ClassificationAdapter, Trainer
>>> adapter = ClassificationAdapter(model, train_set, test_set, epochs=2)
>>> history = Trainer(adapter, checkpoint_dir="ckpts").fit()
>>> resumed = Trainer(ClassificationAdapter(model2, train_set, test_set, epochs=2))
>>> resumed.fit(resume_from="ckpts/latest.npz")   # bit-identical continuation
"""

from .adapters import (
    ClassificationAdapter,
    DetectionAdapter,
    GANAdapter,
    StepResult,
    TaskAdapter,
    run_classification,
    run_detection,
    run_gan,
)
from .callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopping,
    LambdaCallback,
    ProgressCallback,
)
from .trainer import Trainer, TrainerState

__all__ = [
    "Trainer",
    "TrainerState",
    "TaskAdapter",
    "StepResult",
    "ClassificationAdapter",
    "DetectionAdapter",
    "GANAdapter",
    "run_classification",
    "run_detection",
    "run_gan",
    "Callback",
    "CallbackList",
    "CheckpointCallback",
    "EarlyStopping",
    "LambdaCallback",
    "ProgressCallback",
]
