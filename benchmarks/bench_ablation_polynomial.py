"""Ablation A5 — polynomial order beyond two (the Π-net / PolyNet family).

Table 5 compares the quadratic SNGAN against PolyNet (Chrysos et al., 2020),
whose blocks are degree-N polynomials built by the CCP recursion.  This
ablation sweeps the polynomial order of an otherwise identical small CNN and
reports parameters and proxy accuracy, plus the untied order-2 layer (the
paper's neuron) for reference:

* parameters grow linearly with the order (one extra projection per degree),
* order ≥ 2 (any second-order design) trains above chance on the non-linear
  synthetic task, and
* the paper's untied quadratic neuron is the largest-capacity order-2 variant.
"""

import numpy as np
import pytest

from common import BATCH_SIZE, MAX_BATCHES, NUM_CLASSES, classification_data, fresh_seed, save_experiment
from repro import nn
from repro.quadratic import PolyConv2d, typenew
from repro.training import train_classifier
from repro.utils import print_table

EPOCHS = 3
CHANCE = 1.0 / NUM_CLASSES
CHANNELS = (12, 24)


def build_backbone(make_conv) -> nn.Sequential:
    """Two conv blocks + classifier head, with the conv factory swapped in."""
    layers = []
    in_channels = 3
    for width in CHANNELS:
        layers += [make_conv(in_channels, width), nn.BatchNorm2d(width), nn.ReLU(),
                   nn.MaxPool2d(2)]
        in_channels = width
    layers += [nn.GlobalAvgPool2d(), nn.Linear(in_channels, NUM_CLASSES)]
    return nn.Sequential(*layers)


def test_ablation_polynomial_order(benchmark):
    train_set, test_set = classification_data()

    variants = [
        ("Order 1 (first-order conv)",
         lambda cin, cout: PolyConv2d(cin, cout, kernel_size=3, padding=1, order=1)),
        ("Order 2 (tied, Pi-net CCP)",
         lambda cin, cout: PolyConv2d(cin, cout, kernel_size=3, padding=1, order=2)),
        ("Order 3 (Pi-net CCP)",
         lambda cin, cout: PolyConv2d(cin, cout, kernel_size=3, padding=1, order=3)),
        ("Order 2, untied (paper Eq. 2)",
         lambda cin, cout: typenew(cin, cout, kernel_size=3, padding=1)),
    ]

    rows, results = [], {}
    for index, (name, factory) in enumerate(variants):
        fresh_seed(60 + index)
        model = build_backbone(factory)
        with np.errstate(all="ignore"):
            history = train_classifier(model, train_set, test_set, epochs=EPOCHS,
                                       batch_size=BATCH_SIZE, lr=0.05,
                                       max_batches_per_epoch=MAX_BATCHES, seed=31)
        rows.append([name, model.num_parameters(),
                     round(history.final_train_accuracy, 3),
                     round(history.final_test_accuracy, 3)])
        results[name] = {
            "parameters": model.num_parameters(),
            "train_accuracy": history.final_train_accuracy,
            "test_accuracy": history.final_test_accuracy,
        }

    print()
    print_table(["Variant", "#Param", "Train acc", "Test acc"], rows,
                title="Ablation A5 (polynomial order): Pi-net orders vs. the paper's neuron")
    save_experiment("ablation_polynomial", results)

    # Parameters grow monotonically with the order, and the untied paper neuron
    # is strictly larger than the tied order-2 Pi-net layer.
    assert (results["Order 1 (first-order conv)"]["parameters"]
            < results["Order 2 (tied, Pi-net CCP)"]["parameters"]
            < results["Order 3 (Pi-net CCP)"]["parameters"])
    assert (results["Order 2, untied (paper Eq. 2)"]["parameters"]
            > results["Order 2 (tied, Pi-net CCP)"]["parameters"])
    # Every second-order-or-higher design trains above chance on the proxy task.
    for name, values in results.items():
        if "Order 1" in name:
            continue
        assert values["train_accuracy"] > CHANCE

    # Timed kernel: forward+backward of the order-3 block.
    fresh_seed(69)
    model = build_backbone(lambda cin, cout: PolyConv2d(cin, cout, kernel_size=3, padding=1,
                                                        order=3))
    from repro.autodiff import randn

    x = randn(8, 3, 16, 16)

    def step():
        model.zero_grad()
        model(x).sum().backward()

    benchmark(step)
