"""Tests of the gradient-flow analysis (paper P3, Eq. 1/4, Fig. 7)."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import randn
from repro.quadratic import (
    GradientFlowProbe,
    QuadraticLinear,
    theoretical_attenuation,
    vanishing_depth,
)


class TestTheoreticalAttenuation:
    def test_linear_path_prevents_vanishing(self):
        """Designs with a linear/identity path keep much larger deep-layer gradients."""
        for depth in (8, 16, 32):
            assert theoretical_attenuation("OURS", depth) > theoretical_attenuation("T4", depth)

    def test_no_linear_path_vanishes_exponentially(self):
        shallow = theoretical_attenuation("T4", 4)
        deep = theoretical_attenuation("T4", 16)
        assert deep < shallow * 1e-3

    def test_t4_identity_also_protected(self):
        assert theoretical_attenuation("T4_ID", 16) > theoretical_attenuation("T4", 16) * 1e3

    def test_depth_one_is_unity(self):
        assert theoretical_attenuation("T2", 1) == pytest.approx(1.0)

    def test_vanishing_depth_ordering(self):
        # T2/T3/T4 should hit the vanishing threshold at shallow depth;
        # the linear-path designs should survive to the max depth.
        assert vanishing_depth("T4", threshold=1e-4) < 20
        assert vanishing_depth("OURS", threshold=1e-4, max_depth=64) == 64

    def test_matches_paper_table2_story(self):
        """VGG-8 trains for all designs; VGG-16 only with the linear/identity path."""
        depth_8_ok = all(theoretical_attenuation(t, 8) > 1e-6 for t in ("T2", "T3", "T4"))
        depth_16_dead = all(theoretical_attenuation(t, 16) < 1e-6 for t in ("T2", "T3", "T4"))
        depth_16_alive = all(theoretical_attenuation(t, 16) > 1e-6 for t in ("T4_ID", "OURS"))
        assert depth_8_ok and depth_16_dead and depth_16_alive


class TestMeasuredGradientFlow:
    def _deep_plain_qdnn(self, neuron_type: str, depth: int, width: int = 12,
                         batchnorm: bool = False):
        layers = []
        for _ in range(depth):
            layers.append(QuadraticLinear(width, width, neuron_type=neuron_type, bias=False))
            if batchnorm:
                layers.append(nn.BatchNorm1d(width))
        layers.append(nn.Linear(width, 2))
        return nn.Sequential(*layers)

    def _first_layer_grad_norm(self, model) -> float:
        x = randn(16, 12)
        out = model(x)
        out.sum().backward()
        first = model[0]
        name = first.weight_parameter_names()[0]
        return float(np.linalg.norm(getattr(first, name).grad))

    def test_deep_plain_qdnn_without_bn_is_numerically_unstable(self):
        """Design insight 2: without BatchNorm the repeated squaring of
        activations in a deep plain QDNN produces extreme values, so the
        first-layer gradients are not usable (non-finite or enormous)."""
        with np.errstate(all="ignore"):
            norm = self._first_layer_grad_norm(self._deep_plain_qdnn("T4", depth=6))
        assert (not np.isfinite(norm)) or norm > 1e3

    def test_batchnorm_restores_finite_gradients(self):
        """With BatchNorm after every quadratic layer the same depth trains sanely."""
        norm = self._first_layer_grad_norm(
            self._deep_plain_qdnn("OURS", depth=6, batchnorm=True)
        )
        assert np.isfinite(norm) and norm > 0

    def test_probe_records_history(self):
        model = self._deep_plain_qdnn("OURS", 3)
        probe = GradientFlowProbe(model)
        for _ in range(2):
            model.zero_grad()
            model(randn(4, 12)).sum().backward()
            probe.snapshot()
        assert all(len(v) == 2 for v in probe.history.values())
        assert all(np.isfinite(v).all() for v in probe.history.values())

    def test_probe_layer_filter(self):
        model = self._deep_plain_qdnn("OURS", 3)
        probe = GradientFlowProbe(model, layer_filter=["0."])
        model(randn(4, 12)).sum().backward()
        snap = probe.snapshot()
        assert all(name.startswith("0.") for name in snap)

    def test_probe_layer_series_sums_matching_parameters(self):
        model = self._deep_plain_qdnn("OURS", 2)
        probe = GradientFlowProbe(model)
        model(randn(4, 12)).sum().backward()
        probe.snapshot()
        series = probe.layer_series("0.")
        assert len(series) == 1 and series[0] > 0

    def test_probe_zero_before_backward(self):
        model = self._deep_plain_qdnn("OURS", 2)
        probe = GradientFlowProbe(model)
        snap = probe.snapshot()
        assert all(v == 0.0 for v in snap.values())
