"""Multi-objective utilities: dominance, Pareto fronts, crowding, hypervolume.

Design exploration is inherently multi-objective — the paper's Table 3 weighs
accuracy against parameters, training time and memory.  These helpers extract
the accuracy/efficiency trade-off curve from a set of evaluated candidates and
score whole searches (hypervolume), so different exploration strategies can be
compared quantitatively.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .evaluate import CandidateEvaluation


def _signed_objectives(evaluation: CandidateEvaluation, maximize: Sequence[str],
                       minimize: Sequence[str]) -> Tuple[float, ...]:
    """Objectives mapped so that *larger is always better*."""
    values = evaluation.objectives()
    unknown = [key for key in list(maximize) + list(minimize) if key not in values]
    if unknown:
        raise KeyError(f"unknown objective(s) {unknown}; available: {sorted(values)}")
    signed = [values[key] for key in maximize]
    signed.extend(-values[key] for key in minimize)
    return tuple(float(v) for v in signed)


def dominates(first: CandidateEvaluation, second: CandidateEvaluation,
              maximize: Sequence[str] = ("accuracy",),
              minimize: Sequence[str] = ("parameters",)) -> bool:
    """True if ``first`` is at least as good on every objective and better on one."""
    a = _signed_objectives(first, maximize, minimize)
    b = _signed_objectives(second, maximize, minimize)
    return all(x >= y for x, y in zip(a, b)) and any(x > y for x, y in zip(a, b))


def pareto_front(evaluations: Sequence[CandidateEvaluation],
                 maximize: Sequence[str] = ("accuracy",),
                 minimize: Sequence[str] = ("parameters",)) -> List[CandidateEvaluation]:
    """The non-dominated subset of ``evaluations`` (duplicates collapse to one)."""
    front: List[CandidateEvaluation] = []
    seen_keys = set()
    for candidate in evaluations:
        key = candidate.genome.key()
        if key in seen_keys:
            continue
        if any(dominates(other, candidate, maximize, minimize) for other in evaluations):
            continue
        seen_keys.add(key)
        front.append(candidate)
    return front


def non_dominated_sort(evaluations: Sequence[CandidateEvaluation],
                       maximize: Sequence[str] = ("accuracy",),
                       minimize: Sequence[str] = ("parameters",)
                       ) -> List[List[CandidateEvaluation]]:
    """Partition candidates into successive Pareto fronts (NSGA-II style)."""
    remaining = list(evaluations)
    fronts: List[List[CandidateEvaluation]] = []
    while remaining:
        front = pareto_front(remaining, maximize, minimize)
        if not front:  # defensive: identical candidates everywhere
            fronts.append(remaining)
            break
        fronts.append(front)
        front_keys = {c.genome.key() for c in front}
        remaining = [c for c in remaining if c.genome.key() not in front_keys]
    return fronts


def crowding_distance(front: Sequence[CandidateEvaluation],
                      maximize: Sequence[str] = ("accuracy",),
                      minimize: Sequence[str] = ("parameters",)) -> Dict[str, float]:
    """NSGA-II crowding distance per candidate (keyed by genome key).

    Boundary candidates get infinite distance so diversity-preserving selection
    always keeps the extremes of the trade-off curve.
    """
    distances: Dict[str, float] = {c.genome.key(): 0.0 for c in front}
    if len(front) <= 2:
        return {key: float("inf") for key in distances}

    objective_names = list(maximize) + list(minimize)
    for index, name in enumerate(objective_names):
        values = [_signed_objectives(c, maximize, minimize)[index] for c in front]
        order = np.argsort(values)
        lo, hi = values[order[0]], values[order[-1]]
        span = hi - lo
        distances[front[order[0]].genome.key()] = float("inf")
        distances[front[order[-1]].genome.key()] = float("inf")
        if span == 0:
            continue
        for rank in range(1, len(front) - 1):
            current = front[order[rank]]
            gap = (values[order[rank + 1]] - values[order[rank - 1]]) / span
            if np.isfinite(distances[current.genome.key()]):
                distances[current.genome.key()] += float(gap)
    return distances


def hypervolume_2d(evaluations: Sequence[CandidateEvaluation],
                   maximize: str = "accuracy", minimize: str = "parameters",
                   reference: Tuple[float, float] = (0.0, None)) -> float:
    """Hypervolume of a 2-D front (maximised objective × minimised objective).

    Parameters
    ----------
    reference :
        ``(min value of the maximised objective, max value of the minimised
        objective)``.  A ``None`` entry is replaced by the worst value in the
        candidate set, which makes the number comparable only within one call
        but is convenient for reporting.
    """
    if not evaluations:
        return 0.0
    front = pareto_front(evaluations, maximize=(maximize,), minimize=(minimize,))
    points = [(c.objectives()[maximize], c.objectives()[minimize]) for c in front]

    ref_acc = reference[0]
    ref_cost = reference[1]
    if ref_cost is None:
        ref_cost = max(c.objectives()[minimize] for c in evaluations)
    # Keep only points that actually improve on the reference.
    points = [(acc, cost) for acc, cost in points if acc > ref_acc and cost <= ref_cost]
    if not points:
        return 0.0
    # Staircase sweep: visit points from cheapest to most expensive and add the
    # rectangle each one contributes beyond the best accuracy seen so far.
    volume = 0.0
    best_acc = ref_acc
    for acc, cost in sorted(points, key=lambda p: p[1]):
        if acc <= best_acc:
            continue
        volume += (ref_cost - cost) * (acc - best_acc)
        best_acc = acc
    return float(volume)
