"""``repro.serve`` — scale-out serving: worker pool + HTTP front door.

PR 2's :class:`~repro.inference.BatchedPredictor` made one process fast;
this package makes N of them a service.  A :class:`WorkerPool` shards
inference across worker processes (each rebuilds the model from the spec
and weights it receives over IPC, compiles it, and micro-batches its own
traffic), with least-loaded dispatch, crash respawn + request retry, and
explicit admission control.  :class:`ServingServer` puts a stdlib HTTP
front door on top: ``POST /predict`` with an LRU response cache,
``GET /healthz`` (flips to 503 while draining) and ``GET /stats``.

Example
-------
>>> from repro.experiment import Experiment, get_preset
>>> exp = Experiment(get_preset("smoke"))
>>> exp.build()
>>> with exp.serve(workers=2, port=0) as server:
...     out = server.predict(sample)        # same path as POST /predict
...     print(server.url)                   # point curl here

Entry points: :meth:`repro.experiment.Experiment.serve` and the
``repro serve <spec|preset> --workers N --port P`` CLI subcommand.
"""

from .cache import LRUCache, input_digest
from .config import ServeConfig
from .http import ServingApp, ServingHTTPServer, ServingServer
from .metrics import EndpointMetrics, ServingMetrics
from .pool import (
    PoolClosed,
    PoolFuture,
    PoolSaturated,
    WorkerCrashed,
    WorkerPool,
)
from .worker import build_serving_predictor, worker_main

__all__ = [
    "LRUCache",
    "input_digest",
    "ServeConfig",
    "ServingApp",
    "ServingHTTPServer",
    "ServingServer",
    "EndpointMetrics",
    "ServingMetrics",
    "PoolClosed",
    "PoolFuture",
    "PoolSaturated",
    "WorkerCrashed",
    "WorkerPool",
    "build_serving_predictor",
    "worker_main",
]
