"""``repro.experiment`` — the unified, declarative experiment API (core).

This package is the canonical way to run anything in the library.  It has
three layers:

* **registries** (:mod:`repro.experiment.registry`) — models, architectures,
  datasets, neuron types, trainers and optimizers registered by name;
* **specs** (:mod:`repro.experiment.spec`) — the JSON-round-trippable
  :class:`ExperimentSpec` dataclass family describing a whole run as data;
* **the facade** (:mod:`repro.experiment.experiment`) — :class:`Experiment`,
  whose ``build``/``fit``/``evaluate``/``profile``/``to_ppml``/``search``
  methods drive the existing builder, trainers, profilers, PPML converter and
  exploration loops.

Example
-------
>>> from repro.experiment import Experiment, ExperimentSpec, ModelSpec, TrainSpec
>>> spec = ExperimentSpec(
...     model=ModelSpec(name="vgg8", neuron_type="OURS", width_multiplier=0.25),
...     train=TrainSpec(epochs=1, max_batches_per_epoch=2),
... )
>>> results = Experiment(spec).run()          # build → fit → evaluate → profile → ppml
>>> restored = ExperimentSpec.from_json(spec.to_json())   # lossless round-trip

The same spec saved as JSON drives the CLI: ``python -m repro run spec.json``.
"""

from .experiment import Experiment
from .presets import PRESETS, get_preset, preset_names
from .registry import (
    ARCHITECTURES,
    CALLBACKS,
    DATASETS,
    MODELS,
    NEURONS,
    OPTIMIZERS,
    TRAINERS,
    Registry,
    check_neuron_type,
    is_first_order,
    neuron_names,
)
from .spec import (
    PIPELINE_STEPS,
    SPEC_VERSION,
    DataSpec,
    ExperimentSpec,
    ModelSpec,
    PPMLSpec,
    ProfileSpec,
    SearchSpec,
    TrainSpec,
)

__all__ = [
    "Registry",
    "MODELS",
    "ARCHITECTURES",
    "DATASETS",
    "NEURONS",
    "TRAINERS",
    "OPTIMIZERS",
    "CALLBACKS",
    "neuron_names",
    "check_neuron_type",
    "is_first_order",
    "SPEC_VERSION",
    "PIPELINE_STEPS",
    "ExperimentSpec",
    "ModelSpec",
    "DataSpec",
    "TrainSpec",
    "ProfileSpec",
    "PPMLSpec",
    "SearchSpec",
    "Experiment",
    "PRESETS",
    "get_preset",
    "preset_names",
]
