"""The load generator itself, plus an open-loop run against a real server."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from loadgen import (
    LoadReport,
    RequestRecord,
    assert_percentile_under,
    check_percentile,
    poisson_schedule,
    run_closed_loop,
    run_open_loop,
)
from repro.serve import ServeConfig, ServingServer


class TestPoissonSchedule:
    def test_deterministic_for_a_seed(self):
        assert poisson_schedule(100.0, 50, seed=7) == poisson_schedule(100.0, 50, seed=7)
        assert poisson_schedule(100.0, 50, seed=7) != poisson_schedule(100.0, 50, seed=8)

    def test_mean_rate_is_roughly_the_requested_rate(self):
        schedule = poisson_schedule(200.0, 2000, seed=1)
        measured = len(schedule) / schedule[-1]
        assert measured == pytest.approx(200.0, rel=0.15)

    def test_offsets_are_monotonic(self):
        schedule = poisson_schedule(50.0, 200, seed=2)
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            poisson_schedule(0.0, 10)
        with pytest.raises(ValueError):
            poisson_schedule(10.0, 0)


class TestClosedLoop:
    def test_every_request_is_recorded_once(self):
        report = run_closed_loop(lambda i: 200, clients=4, requests_per_client=25)
        assert len(report.records) == 100
        assert sorted(r.index for r in report.records) == list(range(100))
        assert report.completed == 100 and report.shed == 0
        assert report.mode == "closed"

    def test_status_mix_and_shed_counting(self):
        statuses = {0: 200, 1: 429, 2: 503, 3: 500}
        report = run_closed_loop(lambda i: statuses[i % 4], clients=2,
                                 requests_per_client=20)
        counts = report.status_counts()
        assert counts == {200: 10, 429: 10, 500: 10, 503: 10}
        assert report.shed == 20
        assert report.completed == 10

    def test_submit_exceptions_become_599(self):
        def explode(i):
            raise RuntimeError("client bug")
        report = run_closed_loop(explode, clients=1, requests_per_client=3)
        assert report.status_counts() == {599: 3}


class TestOpenLoop:
    def test_requests_fire_at_their_scheduled_offsets(self):
        schedule = [0.0, 0.02, 0.04, 0.06]
        report = run_open_loop(lambda i: 200, schedule)
        assert len(report.records) == 4
        for record in report.records:
            # Fired no earlier than scheduled, and without pathological lag.
            assert record.started_s >= record.scheduled_s - 1e-4
            assert record.started_s <= record.scheduled_s + 0.25
        assert report.mode == "open"

    def test_slow_responses_do_not_delay_later_arrivals(self):
        def submit(i):
            if i == 0:
                time.sleep(0.2)       # a straggler...
            return 200
        report = run_open_loop(submit, [0.0, 0.01, 0.02])
        later = [r for r in report.records if r.index > 0]
        # ...must not push the open-loop arrivals behind it (no coordinated
        # omission): they still start on schedule.
        assert all(r.started_s < 0.15 for r in later)


class TestPercentileAssertions:
    def report(self, latencies):
        records = [RequestRecord(i, 0.0, 0.0, ms, 200)
                   for i, ms in enumerate(latencies)]
        return LoadReport(records, duration_s=1.0)

    def test_check_percentile_verdicts(self):
        # 10 samples: nearest-rank p99 → rank ceil(9.9) = 10 → the outlier.
        report = self.report([1.0] * 9 + [100.0])
        ok = check_percentile(report, 50, 2.0)
        assert ok["ok"] is True and ok["value_ms"] == 1.0
        bad = check_percentile(report, 99, 50.0)
        assert bad["ok"] is False and bad["value_ms"] == 100.0
        assert check_percentile(report, 99, 50.0, slack_ms=60.0)["ok"] is True

    def test_assert_percentile_under_raises_with_context(self):
        report = self.report([10.0] * 100)
        assert_percentile_under(report, 99, 15.0)
        with pytest.raises(AssertionError, match="p99 latency .* exceeds SLO"):
            assert_percentile_under(report, 99, 5.0)

    def test_failed_requests_are_excluded_from_ok_percentiles(self):
        records = [RequestRecord(0, 0.0, 0.0, 1.0, 200),
                   RequestRecord(1, 0.0, 0.0, 9999.0, 503)]
        report = LoadReport(records, duration_s=1.0)
        assert report.percentile_ms(99) == 1.0
        assert report.percentile_ms(99, only_ok=False) == 9999.0


# --------------------------------------------------------------------------- #
# Integration: the generator against a real async server, end to end
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def server(smoke):
    config = ServeConfig(workers=2, port=0, cache_size=0,
                         startup_timeout=120.0)
    running = ServingServer(smoke.spec, state=smoke.state, config=config).start()
    yield running
    running.close()


class TestOpenLoopAgainstRealServer:
    def test_open_loop_run_collects_real_latencies_and_server_percentiles(
            self, server, smoke):
        body = json.dumps({"input": smoke.samples[0].tolist()}).encode()

        def submit(index: int) -> int:
            request = urllib.request.Request(
                f"{server.url}/predict", data=body,
                headers={"Content-Type": "application/json"}, method="POST")
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    return response.status
            except urllib.error.HTTPError as error:
                return error.code

        schedule = poisson_schedule(rate_rps=40.0, count=40, seed=11)
        report = run_open_loop(submit, schedule)
        assert len(report.records) == 40
        assert report.completed == 40, report.status_counts()
        assert report.percentile_ms(99) > 0
        assert report.summary()["p50_ms"] <= report.summary()["p99_ms"]
        # The same traffic shows up in the server's own reservoirs: endpoint
        # percentiles and all four pool pipeline stages saw every request.
        stats = json.loads(urllib.request.urlopen(
            f"{server.url}/stats", timeout=30).read())
        predict = stats["serving"]["endpoints"]["/predict"]
        assert predict["requests"] >= 40
        assert predict["p99_ms"] >= predict["p50_ms"] > 0
        stages = stats["pool"]["latency"]
        for stage in ("queue", "transport", "compute", "total"):
            assert stages[stage]["count"] >= 40
        assert stages["total"]["p99_ms"] >= stages["total"]["p50_ms"]
