"""First-order layer classes."""

from .activations import GELU, Identity, LeakyReLU, ReLU, Sigmoid, Softmax, Square, Tanh
from .conv import Conv2d, DepthwiseSeparableConv2d
from .linear import Linear
from .misc import Dropout, Flatten, UpsampleNearest2d, ZeroPad2d
from .normalization import BatchNorm1d, BatchNorm2d, LayerNorm
from .pooling import AdaptiveAvgPool2d, AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "Linear",
    "Conv2d",
    "DepthwiseSeparableConv2d",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "GELU",
    "Softmax",
    "Square",
    "Identity",
    "Dropout",
    "Flatten",
    "UpsampleNearest2d",
    "ZeroPad2d",
]
