"""Gradient clipping utilities.

The second-order term of a quadratic neuron can produce very large gradient
magnitudes early in training (the flip side of the vanishing problem analysed
in paper Sec. 2, P3); clipping the global gradient norm is the standard way to
keep the first optimisation steps of deep plain QDNNs finite when BatchNorm is
disabled.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.parameter import Parameter


def clip_grad_norm_(parameters: Iterable[Parameter], max_norm: float,
                    norm_type: float = 2.0) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the norm *before* clipping (as ``torch.nn.utils.clip_grad_norm_``
    does), which callers typically log to monitor training stability.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params: List[Parameter] = [p for p in parameters if p.grad is not None and p.requires_grad]
    if not params:
        return 0.0

    if np.isinf(norm_type):
        total_norm = max(float(np.abs(p.grad).max()) for p in params)
    else:
        total = 0.0
        for p in params:
            total += float(np.sum(np.abs(p.grad.astype(np.float64)) ** norm_type))
        total_norm = float(total ** (1.0 / norm_type))

    if total_norm > max_norm and total_norm > 0:
        scale = max_norm / (total_norm + 1e-6)
        for p in params:
            p.grad = (p.grad * scale).astype(p.grad.dtype)
    return total_norm


def clip_grad_value_(parameters: Iterable[Parameter], clip_value: float) -> None:
    """Clamp every gradient element into ``[-clip_value, clip_value]`` in place."""
    if clip_value <= 0:
        raise ValueError(f"clip_value must be positive, got {clip_value}")
    for p in parameters:
        if p.grad is None or not p.requires_grad:
            continue
        p.grad = np.clip(p.grad, -clip_value, clip_value).astype(p.grad.dtype)
