"""Multi-threaded cache-blocked GEMM / im2col backend.

NumPy releases the GIL inside its BLAS calls and inside large strided
copies, so coarse-grained threading over *independent slices* of one
operation scales with cores without any native code.  The backend blocks
each primitive into per-thread panels sized to stay cache-resident and runs
the panels on a shared :class:`~concurrent.futures.ThreadPoolExecutor`:

* ``im2col`` splits the batch axis — each sample's patch gather writes a
  disjoint slice of the column buffer, a pure copy, so the result is
  trivially bit-identical at any thread count.
* ``conv_project`` / ``gemm`` split the batch (or the output) axis into
  blocks.  Each block runs the *reference* projection on its slice, so the
  per-element reduction order can only change if BLAS picks a different
  kernel for the smaller operand — which depends on shapes alone, never on
  values.  The first call per shape therefore compares the blocked route
  against the reference route on dense random probes and caches the verdict:
  blocked where it provably matches the single-threaded bits, reference
  fall-back everywhere else.  The ``threaded`` backend is consequently
  **exact by construction at any core count** — the worst case is "no
  speedup", never "different bits".

Thread count defaults to every core (``os.cpu_count()``); override with the
``REPRO_NUM_THREADS`` environment variable or
``ThreadedBackend(num_threads=...)``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from .base import Backend, register_backend

#: Skip threading below this many output elements — executor dispatch costs
#: tens of microseconds, which swamps sub-cache-size operations.
MIN_PARALLEL_ELEMS = 1 << 14

#: Target bytes per blocked panel (operand slice + output slice), chosen to
#: sit inside a typical per-core L2 so each thread streams its panel once.
PANEL_BYTES = 512 * 1024


def _spans(size: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(size)`` into ``chunks`` near-equal contiguous spans."""
    chunks = max(1, min(int(chunks), int(size)))
    step, extra = divmod(size, chunks)
    spans, start = [], 0
    for i in range(chunks):
        stop = start + step + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


@register_backend
class ThreadedBackend(Backend):
    """Multi-threaded cache-blocked GEMM/im2col; probe-verified, exact."""

    name = "threaded"
    exact = True

    def __init__(self, num_threads: Optional[int] = None) -> None:
        if num_threads is None:
            env = os.environ.get("REPRO_NUM_THREADS", "")
            num_threads = int(env) if env.strip().isdigit() else (os.cpu_count() or 1)
        self.num_threads = max(1, int(num_threads))
        self._executor: Optional[ThreadPoolExecutor] = None
        #: (primitive, shapes, chunks) -> blocked route proved bit-identical?
        self._routes: dict = {}

    # ------------------------------------------------------------- plumbing
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="repro-backend")
        return self._executor

    def _run(self, tasks) -> None:
        """Run thunks on the pool; re-raise the first worker exception."""
        for future in [self._pool().submit(task) for task in tasks]:
            future.result()

    def _chunks(self, axis_size: int, total_elems: int) -> int:
        """Block count for one primitive: every thread busy, panels in cache."""
        if axis_size < 2:
            return 1
        by_cache = (total_elems * 4) // PANEL_BYTES + 1
        return min(axis_size, max(self.num_threads, by_cache))

    # ----------------------------------------------------------------- GEMM
    def gemm(self, x: np.ndarray, weight_t: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        m = x.shape[0]
        work = x.size * weight_t.shape[-1]
        chunks = self._chunks(m, x.size + m * weight_t.shape[-1])
        if chunks <= 1 or work < MIN_PARALLEL_ELEMS or out is None:
            return super().gemm(x, weight_t, out=out)
        key = ("gemm", x.shape, weight_t.shape, chunks)
        blocked = self._routes.get(key)
        if blocked is None:
            blocked = self._probe_gemm(x.shape, weight_t, chunks)
            self._routes[key] = blocked
        if not blocked:
            return super().gemm(x, weight_t, out=out)
        spans = _spans(m, chunks)
        self._run([lambda a=a, b=b: np.matmul(x[a:b], weight_t, out=out[a:b])
                   for a, b in spans])
        return out

    def _probe_gemm(self, x_shape, weight_t, chunks: int) -> bool:
        rng = np.random.default_rng(0)
        px = rng.standard_normal(x_shape).astype(np.float32)
        pw = rng.standard_normal(weight_t.shape).astype(np.float32)
        reference = px @ pw
        blocked = np.empty_like(reference)
        for a, b in _spans(x_shape[0], chunks):
            np.matmul(px[a:b], pw, out=blocked[a:b])
        return bool(np.array_equal(reference, blocked))

    # ----------------------------------------------------------- convolution
    def im2col(self, x: np.ndarray, kh: int, kw: int, stride, padding,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        n = x.shape[0]
        if out is None or n < 2 or out.size < MIN_PARALLEL_ELEMS:
            return super().im2col(x, kh, kw, stride, padding, out=out)
        # Disjoint per-sample slices of the column buffer: a pure strided
        # copy, bit-identical by construction at any thread count.
        spans = _spans(n, self._chunks(n, out.size))
        if len(spans) <= 1:
            return super().im2col(x, kh, kw, stride, padding, out=out)
        parent = super().im2col
        self._run([lambda a=a, b=b: parent(x[a:b], kh, kw, stride, padding,
                                           out=out[a:b])
                   for a, b in spans])
        return out

    def conv_project(self, cols: np.ndarray, wmat: np.ndarray, out: np.ndarray,
                     cache: dict) -> np.ndarray:
        n = cols.shape[0]
        if out.size * wmat.shape[-1] < MIN_PARALLEL_ELEMS:
            return super().conv_project(cols, wmat, out, cache)
        # Prefer batch blocking (NumPy's batched matmul runs one BLAS call
        # per sample anyway, so per-sample slices reuse identical kernels);
        # fall back to blocking the output-pixel axis for single samples.
        axis = 0 if n >= 2 else 3
        axis_size = cols.shape[axis]
        chunks = self._chunks(axis_size, cols.size + out.size)
        if chunks <= 1:
            return super().conv_project(cols, wmat, out, cache)
        key = ("conv", wmat.shape, cols.shape, axis, chunks)
        blocked = self._routes.get(key)
        if blocked is None:
            blocked = self._probe_conv(cols.shape, wmat.shape, axis, chunks, cache)
            self._routes[key] = blocked
        if not blocked:
            return super().conv_project(cols, wmat, out, cache)
        parent = super().conv_project
        spans = _spans(axis_size, chunks)
        if axis == 0:
            tasks = [lambda a=a, b=b: parent(cols[a:b], wmat, out[a:b], cache)
                     for a, b in spans]
        else:
            tasks = [lambda a=a, b=b: parent(cols[..., a:b], wmat,
                                             out[..., a:b], cache)
                     for a, b in spans]
        self._run(tasks)
        return out

    def _probe_conv(self, cols_shape, wmat_shape, axis: int, chunks: int,
                    cache: dict) -> bool:
        """Blocked-vs-reference comparison on dense random probes.

        Runs the blocks *serially* — the verdict is about BLAS kernel choice
        per slice shape, which is deterministic, not about scheduling.
        """
        rng = np.random.default_rng(0)
        pc = rng.standard_normal(cols_shape).astype(np.float32)
        pw = rng.standard_normal(wmat_shape).astype(np.float32)
        n, g = cols_shape[0], cols_shape[1]
        out_shape = (n, g, wmat_shape[1], cols_shape[3])
        reference = super().conv_project(pc, pw, np.empty(out_shape, np.float32),
                                         cache)
        blocked = np.empty(out_shape, np.float32)
        for a, b in _spans(cols_shape[axis], chunks):
            if axis == 0:
                super().conv_project(pc[a:b], pw, blocked[a:b], cache)
            else:
                super().conv_project(pc[..., a:b], pw, blocked[..., a:b], cache)
        return bool(np.array_equal(reference, blocked))
