"""``repro.ppml.offline`` — the precompute phase behind secure serving.

Hybrid PPML protocols (Delphi, Gazelle, CryptoNets) split every inference
into two phases.  The *offline* phase runs before any query arrives: the
parties generate Beaver triples for the secure multiplications and garble
the comparison circuits behind every ReLU.  The *online* phase then spends
that material — one triple per multiplication, one garbled table per
comparison.  A serving deployment therefore lives or dies on whether the
offline producers can keep up with the query rate; when they fall behind,
requests must stall or be shed.

This module models that split as infrastructure:

* :class:`OfflineBudget` — how much material *one* request consumes,
  derived from a measured :class:`~repro.ppml.trace.ProtocolTrace`,
* :class:`TriplePool` — one per-(protocol, frac_bits) stock of request
  quanta, refilled by a background producer thread and debited by the
  serving pool as requests dispatch,
* :class:`OfflinePhase` — the coordinator the serving data plane talks
  to: sizes pools from a warm-up trace, answers availability queries,
  and accounts for every request actually served.

Consistent with the runtime's "costed, not computed" convention
(:mod:`repro.ppml.runtime`), the producer genuinely generates random
triple and label material — so refill *rates* are measured, not guessed —
but retains only the counts: no live cryptographic state is kept.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .trace import ProtocolTrace

__all__ = [
    "OfflineBudget",
    "OfflinePhase",
    "TriplePool",
    "pool_key",
]

#: Largest array the producer materialises in one go while generating a
#: request quantum.  Bounds peak memory regardless of model size.
_CHUNK = 65_536

#: Bytes of wire-label material per garbled comparison (two 128-bit labels).
_LABEL_BYTES = 32

#: EWMA smoothing for the measured refill rate (quanta per second).
_RATE_ALPHA = 0.3


def _generate_material(rng: np.random.Generator, budget: "OfflineBudget") -> None:
    """Generate one request's worth of offline material, then drop it.

    Beaver triples are ``(a, b, a*b)`` over the int64 ring; garbled
    comparisons are costed as two 128-bit wire labels each.  The material
    is really generated — that is what makes ``refill_rps`` a measurement —
    but per the package convention only counts are retained.  Shared by the
    in-process producer thread and the spawned producer processes.
    """
    remaining = budget.triples
    while remaining > 0:
        n = min(remaining, _CHUNK)
        a = rng.integers(-(1 << 31), 1 << 31, size=n, dtype=np.int64)
        b = rng.integers(-(1 << 31), 1 << 31, size=n, dtype=np.int64)
        _ = a * b                          # the triple's third element
        remaining -= n
    remaining = budget.labels * _LABEL_BYTES
    while remaining > 0:
        n = min(remaining, _CHUNK)
        _ = rng.bytes(n)                   # wire-label material
        remaining -= n


def _producer_main(index: int, protocol: str, frac_bits: int, seed: int,
                   budget_dict: Dict[str, int], order_conn, ack_conn) -> None:
    """Entry point of one spawned producer process.

    Top-level (not a closure) so it imports cleanly under ``spawn``.  The
    protocol is dead simple: each ``True`` on the order pipe is an order for
    one request quantum; every completed quantum is acknowledged on the
    producer's acknowledgement pipe as ``(index, elapsed_seconds)``;
    ``None`` (or the coordinator hanging up) means exit.  The producer
    holds **no pool state** — received acknowledgements are the only thing
    that increments ``produced``/``available``, which is what lets a
    SIGKILLed producer die without breaking the accounting invariant.
    """
    rng = np.random.default_rng((int(seed), int(frac_bits), 1_000 + int(index)))
    budget = OfflineBudget(**budget_dict)
    while True:
        try:
            task = order_conn.recv()
        except (EOFError, OSError):        # the coordinator went away
            return
        if task is None:
            return
        start = time.perf_counter()
        _generate_material(rng, budget)
        try:
            ack_conn.send((index, time.perf_counter() - start))
        except (BrokenPipeError, OSError):
            return


def pool_key(protocol: str, frac_bits: int) -> str:
    """Canonical string key for one (protocol, frac_bits) triple pool.

    Offline material is protocol- and format-specific: a Beaver triple
    generated for ``delphi`` at 12 fractional bits cannot serve a
    ``gazelle`` request at 8.  Pools are therefore keyed ``delphi/f12``
    style and requests only draw from their own pool.
    """
    return f"{protocol}/f{int(frac_bits)}"


@dataclass(frozen=True)
class OfflineBudget:
    """Offline material consumed by a single request, from a measured trace.

    ``triples`` is one Beaver triple per secure multiplication and
    ``labels`` one garbled comparison per ReLU — the two quantities the
    offline phase must actually precompute.  ``truncations``, ``rounds``
    and ``macs`` ride along for accounting and reporting.
    """

    triples: int
    labels: int
    truncations: int
    rounds: int
    macs: int

    @classmethod
    def from_trace(cls, trace: ProtocolTrace) -> "OfflineBudget":
        """Derive the per-request budget from one traced forward pass.

        This is the warm-up contract: execute the model once under the
        secure runtime, and size the offline phase from what it *measured*
        rather than from static analysis.  (The drift between the two is
        separately asserted by ``ProtocolTrace.matches_report``.)
        """
        totals = trace.totals()
        return cls(triples=int(totals["mult_ops"]),
                   labels=int(totals["relu_ops"]),
                   truncations=int(totals["truncations"]),
                   rounds=int(totals["rounds"]),
                   macs=int(totals["macs"]))

    def to_dict(self) -> Dict[str, int]:
        """Per-request budget as one JSON-ready dict."""
        return {"triples": self.triples, "labels": self.labels,
                "truncations": self.truncations, "rounds": self.rounds,
                "macs": self.macs}


class TriplePool:
    """A stock of precomputed request quanta for one (protocol, frac_bits).

    The pool counts in *request quanta*: one unit of availability is all
    the material one request needs (``budget.triples`` Beaver triples plus
    ``budget.labels`` garbled comparisons).  A background producer thread
    refills the pool up to ``depth`` quanta; the serving pool debits it as
    requests dispatch.  The accounting invariant — checked by the fault
    tests across worker crashes — is::

        produced == available + consumed

    A pool starts *unsized* (no budget, no producer) so that an unstarted
    server can still report its full stats schema; :meth:`size` installs
    the warm-up budget and starts production.

    ``producer_workers`` selects the production engine: ``0`` (default)
    keeps the in-process producer *thread* — fine until generation is
    CPU-bound on the GIL — while ``N >= 1`` promotes production to ``N``
    spawn-based producer **processes**, fed one-quantum orders over
    per-producer order pipes and acknowledged on per-producer
    acknowledgement pipes.
    Only a received acknowledgement increments ``produced``/``available``,
    so the invariant survives a producer SIGKILL by construction: orders
    that died with the producer were never counted, and the coordinator
    respawns the producer and re-issues the deficit.
    """

    def __init__(self, protocol: str, frac_bits: int, *, depth: int = 0,
                 seed: int = 0, producer_workers: int = 0) -> None:
        self.protocol = str(protocol)
        self.frac_bits = int(frac_bits)
        self.depth = int(depth)
        self.producer_workers = int(producer_workers)
        if self.producer_workers < 0:
            raise ValueError(
                f"producer_workers must be >= 0, got {producer_workers}")
        self.budget: Optional[OfflineBudget] = None
        self.available = 0
        self.produced = 0
        self.consumed = 0
        self.stalls = 0
        self.producer_respawns = 0
        self._cond = threading.Condition()
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._seed = int(seed)
        self._rng = np.random.default_rng((int(seed), hash(self.protocol) & 0xFFFF,
                                           self.frac_bits))
        self._refill_rps = 0.0
        self._producer_pids: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle
    def size(self, budget: OfflineBudget, depth: int) -> None:
        """Install the per-request ``budget``, set the target ``depth``,
        and start the background producer.  Idempotent on the thread."""
        if depth < 1:
            raise ValueError(f"triple pool depth must be >= 1, got {depth}")
        with self._cond:
            if self._closed:
                raise RuntimeError("triple pool is closed")
            self.budget = budget
            self.depth = int(depth)
            if self._thread is None:
                target = (self._coordinate_producers if self.producer_workers
                          else self._produce_loop)
                self._thread = threading.Thread(
                    target=target,
                    name=f"triples-{pool_key(self.protocol, self.frac_bits)}",
                    daemon=True)
                self._thread.start()
            self._cond.notify_all()

    def close(self) -> None:
        """Stop the producer thread and refuse further sizing.  Idempotent."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------ accounting
    def consume(self, n: int) -> None:
        """Debit ``n`` request quanta.  The caller (the serving pool) must
        have checked :attr:`available` first; over-consumption is a bug."""
        if n < 0:
            raise ValueError(f"cannot consume {n} quanta")
        with self._cond:
            if n > self.available:
                raise RuntimeError(
                    f"triple pool {pool_key(self.protocol, self.frac_bits)} "
                    f"over-consumed: asked {n}, available {self.available}")
            self.available -= n
            self.consumed += n
            self._cond.notify_all()

    def note_stall(self) -> None:
        """Record that a dispatch wanted material the pool did not have."""
        with self._cond:
            self.stalls += 1

    def estimated_wait_s(self, demand: int) -> float:
        """Seconds until ``demand`` quanta are available at the measured
        refill rate.  ``inf`` when the pool has never produced."""
        with self._cond:
            deficit = max(0, int(demand) - self.available)
            if deficit == 0:
                return 0.0
            if self._refill_rps <= 0.0:
                return float("inf")
            return deficit / self._refill_rps

    def wait_available(self, n: int = 1, timeout: float = 10.0) -> bool:
        """Block until ``n`` quanta are available (or ``timeout``).  Used
        by tests and synchronous callers; the serving pool never blocks —
        it requeues and retries on its dispatch tick instead."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.available < n and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return self.available >= n

    def stats(self) -> Dict[str, object]:
        """Counters and the measured refill rate as one JSON-ready dict."""
        with self._cond:
            budget = self.budget
            return {
                "depth": self.depth,
                "available": self.available,
                "produced": self.produced,
                "consumed": self.consumed,
                "stalls": self.stalls,
                "refill_rps": round(self._refill_rps, 3),
                "triples_per_request": budget.triples if budget else 0,
                "labels_per_request": budget.labels if budget else 0,
                "producers": self.producer_workers,
                "producer_respawns": self.producer_respawns,
            }

    def producer_pids(self) -> List[int]:
        """PIDs of the live producer processes (empty on the thread path).

        For fault injection: tests SIGKILL one of these and assert the
        accounting invariant and the respawn.
        """
        with self._cond:
            return sorted(self._producer_pids.values())

    # -------------------------------------------------------------- producer
    def _produce_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (self.budget is None
                                            or self.available >= self.depth):
                    self._cond.wait()
                if self._closed:
                    return
                budget = self.budget
            start = time.perf_counter()
            _generate_material(self._rng, budget)
            elapsed = max(time.perf_counter() - start, 1e-9)
            rate = 1.0 / elapsed
            with self._cond:
                if self._closed:
                    return
                self.available += 1
                self.produced += 1
                self._refill_rps = (rate if self._refill_rps == 0.0 else
                                    (1.0 - _RATE_ALPHA) * self._refill_rps
                                    + _RATE_ALPHA * rate)
                self._cond.notify_all()

    def _record_completion(self, elapsed: float, last_done: Optional[float],
                           now: float) -> bool:
        """Credit one acknowledged quantum; False when the pool has closed.

        On the multi-producer path the refill rate is measured from the
        *inter-completion gap* (completions interleave across producers, so
        per-quantum generation time would undercount the fleet's throughput);
        the very first completion falls back to its own generation time.
        """
        if last_done is not None:
            rate = 1.0 / max(now - last_done, 1e-9)
        else:
            rate = 1.0 / max(elapsed, 1e-9)
        with self._cond:
            if self._closed:
                return False
            self.available += 1
            self.produced += 1
            self._refill_rps = (rate if self._refill_rps == 0.0 else
                                (1.0 - _RATE_ALPHA) * self._refill_rps
                                + _RATE_ALPHA * rate)
            self._cond.notify_all()
        return True

    def _coordinate_producers(self) -> None:
        """Feed/reap the spawned producer fleet (``producer_workers >= 1``).

        Runs on the pool's background thread.  Per producer: one spawned
        process, an order pipe, an acknowledgement pipe, and an
        outstanding-order count.  Deficit is ``depth - available -
        outstanding``; orders go to the least-loaded producer.  A producer
        found dead (SIGKILL) forfeits its outstanding orders — they were
        never credited, so the invariant holds — and is respawned; the
        deficit re-issue happens on the same tick.

        Raw ``Pipe`` connections rather than ``multiprocessing.Queue``:
        a ``Connection.send`` is synchronous (no feeder thread to lose an
        order between buffer and pipe), a SIGKILLed producer holds no
        parent-side locks, and closing the parent's copy of the child ends
        makes a dead producer's acknowledgement pipe report EOF instead of
        hanging.
        """
        import multiprocessing
        from multiprocessing import connection as mp_connection

        ctx = multiprocessing.get_context("spawn")
        #: index -> [process, order_send, ack_recv, outstanding]
        workers: Dict[int, list] = {}
        spawned_budget: Optional[OfflineBudget] = None
        last_done: Optional[float] = None

        def spawn(index: int) -> None:
            order_recv, order_send = ctx.Pipe(duplex=False)
            ack_recv, ack_send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_producer_main,
                args=(index, self.protocol, self.frac_bits,
                      self._seed, spawned_budget.to_dict(),
                      order_recv, ack_send),
                daemon=True,
                name=(f"triples-producer-"
                      f"{pool_key(self.protocol, self.frac_bits)}-{index}"))
            process.start()
            # The child's ends were dup'd into it at spawn; dropping the
            # parent's copies is what turns a dead producer into EOF.
            order_recv.close()
            ack_send.close()
            workers[index] = [process, order_send, ack_recv, 0]
            with self._cond:
                self._producer_pids[index] = process.pid

        def discard(record: list) -> None:
            for conn in (record[1], record[2]):
                try:
                    conn.close()
                except Exception:
                    pass

        def stop_all(timeout: float = 2.0) -> None:
            for record in workers.values():
                try:
                    record[1].send(None)
                except Exception:
                    pass
            for record in workers.values():
                record[0].join(timeout)
                if record[0].is_alive():
                    record[0].terminate()
                    record[0].join(1.0)
                discard(record)
            workers.clear()
            with self._cond:
                self._producer_pids.clear()

        try:
            while True:
                with self._cond:
                    if self._closed:
                        return
                    budget = self.budget
                if budget is None:
                    time.sleep(0.01)
                    continue
                if budget != spawned_budget:
                    # First sizing, or a re-size changed the per-request
                    # budget: the fleet bakes the budget in at spawn time,
                    # so replace it wholesale.
                    stop_all()
                    spawned_budget = budget
                    for index in range(self.producer_workers):
                        spawn(index)
                    last_done = None
                # Liveness: a SIGKILLed producer forfeits its outstanding
                # orders (never credited — invariant safe) and is replaced.
                for index, record in list(workers.items()):
                    if not record[0].is_alive():
                        discard(record)
                        workers.pop(index)
                        with self._cond:
                            self.producer_respawns += 1
                            self._producer_pids.pop(index, None)
                        spawn(index)
                # Top up: order the deficit from the least-loaded producers.
                with self._cond:
                    outstanding = sum(record[3] for record in workers.values())
                    deficit = self.depth - self.available - outstanding
                for _ in range(max(deficit, 0)):
                    record = min(workers.values(), key=lambda rec: rec[3])
                    try:
                        record[1].send(True)
                        record[3] += 1
                    except Exception:
                        break                # dying producer; next tick respawns
                # Reap acknowledgements (bounded wait keeps the loop live).
                by_conn = {id(record[2]): record for record in workers.values()}
                ready = mp_connection.wait(
                    [record[2] for record in workers.values()], timeout=0.05)
                for conn in ready:
                    try:
                        index, elapsed = conn.recv()
                    except (EOFError, OSError):
                        continue             # died mid-ack; liveness handles it
                    record = by_conn.get(id(conn))
                    if record is not None and record[3] > 0:
                        record[3] -= 1
                    now = time.perf_counter()
                    if not self._record_completion(elapsed, last_done, now):
                        return
                    last_done = now
        finally:
            stop_all()


class OfflinePhase:
    """Coordinator between the offline producers and the serving pool.

    Owns one :class:`TriplePool` per (protocol, frac_bits) the server has
    seen, sizes them from the warm-up trace, and keeps the measured
    per-request protocol accounting that ``GET /stats`` reports.  All
    methods are thread-safe; the serving pool calls them under its own
    lock from the dispatch path and without it from the completion path.
    """

    def __init__(self, protocol: str, frac_bits: int, truncation: str, *,
                 depth: int, seed: int = 0, producer_workers: int = 0) -> None:
        self.protocol = str(protocol)
        self.frac_bits = int(frac_bits)
        self.truncation = str(truncation)
        self.depth = int(depth)
        self.seed = int(seed)
        self.producer_workers = int(producer_workers)
        self.budget: Optional[OfflineBudget] = None
        self._lock = threading.Lock()
        self._pools: Dict[str, TriplePool] = {}
        self._measured = {"requests": 0, "macs": 0, "mult_ops": 0,
                          "relu_ops": 0, "truncations": 0, "rounds": 0}
        # The default pool exists from construction so an unstarted server
        # reports the full stats schema (the docs drift test relies on it).
        self._pools[self.default_key] = TriplePool(
            self.protocol, self.frac_bits, seed=seed,
            producer_workers=self.producer_workers)

    # ------------------------------------------------------------------ keys
    @property
    def default_key(self) -> str:
        """Key of the pool serving the configured default (protocol, frac_bits)."""
        return pool_key(self.protocol, self.frac_bits)

    def key_for(self, protocol: Optional[str] = None,
                frac_bits: Optional[int] = None) -> str:
        """Pool key for a request, falling back to the configured defaults."""
        return pool_key(protocol or self.protocol,
                        self.frac_bits if frac_bits is None else frac_bits)

    def pool_for(self, key: str) -> TriplePool:
        """The pool behind ``key``, created (and sized, once the warm-up
        budget is known) on first use."""
        with self._lock:
            pool = self._pools.get(key)
            if pool is None:
                protocol, _, bits = key.partition("/f")
                pool = TriplePool(protocol, int(bits), seed=self.seed,
                                  producer_workers=self.producer_workers)
                self._pools[key] = pool
                if self.budget is not None:
                    pool.size(self.budget, self.depth)
            return pool

    # ----------------------------------------------------------- warm-up API
    def size_from_trace(self, trace: ProtocolTrace) -> OfflineBudget:
        """Install the per-request budget measured by the warm-up forward
        and start every pool's producer.  Returns the budget."""
        budget = OfflineBudget.from_trace(trace)
        with self._lock:
            self.budget = budget
            pools = list(self._pools.values())
        for pool in pools:
            pool.size(budget, self.depth)
        return budget

    # ---------------------------------------------------------- serving path
    def available(self, key: str) -> int:
        """Request quanta ready in ``key``'s pool right now."""
        return self.pool_for(key).available

    def consume(self, key: str, n: int) -> None:
        """Debit ``n`` request quanta from ``key``'s pool (on dispatch)."""
        self.pool_for(key).consume(n)

    def note_stall(self, key: str) -> None:
        """Record a dispatch that found ``key``'s pool empty."""
        self.pool_for(key).note_stall()

    def estimated_wait_ms(self, key: str, demand: int) -> float:
        """Milliseconds until ``demand`` quanta exist, at measured refill."""
        wait = self.pool_for(key).estimated_wait_s(demand)
        return float("inf") if wait == float("inf") else wait * 1e3

    def record_served(self, totals: Iterable[Dict[str, int]]) -> None:
        """Fold per-request measured protocol totals (one
        ``ProtocolTrace.totals()`` dict per served request) into the
        accounting that ``GET /stats`` exposes."""
        with self._lock:
            for entry in totals:
                self._measured["requests"] += 1
                for field in ("macs", "mult_ops", "relu_ops",
                              "truncations", "rounds"):
                    self._measured[field] += int(entry.get(field, 0))

    # --------------------------------------------------------------- reports
    def measured(self) -> Dict[str, int]:
        """Copy of the cumulative measured per-request protocol totals."""
        with self._lock:
            return dict(self._measured)

    def stats(self) -> Dict[str, object]:
        """Pools, warm-up budget, and measured totals as one nested dict."""
        with self._lock:
            pools = dict(self._pools)
            budget = self.budget
            measured = dict(self._measured)
        zero = OfflineBudget(0, 0, 0, 0, 0)
        return {
            "pools": {key: pool.stats() for key, pool in sorted(pools.items())},
            "budget": (budget or zero).to_dict(),
            "measured": measured,
        }

    def close(self) -> None:
        """Stop every producer thread.  Idempotent."""
        with self._lock:
            pools = list(self._pools.values())
        for pool in pools:
            pool.close()
