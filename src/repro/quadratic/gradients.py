"""Gradient-flow analysis for quadratic networks (paper P3, Eq. 1 and Eq. 4).

The paper's convergence argument is that in a plain (non-residual) QDNN the
gradient reaching layer ``k`` contains the product of *activations* of all the
deeper layers (Eq. 1); because activations are roughly standard-normal, that
product collapses to zero as depth grows — unless the neuron carries a linear
term whose weight ``Wc`` contributes an activation-independent path (Eq. 4).

Two things are provided here:

* :func:`theoretical_attenuation` — the closed-form per-layer gradient scaling
  factor implied by Eq. 1 / Eq. 4 for a given neuron type, used by unit tests
  and the Fig. 7 benchmark's analytic overlay;
* :class:`GradientFlowProbe` — measure actual per-layer gradient norms of a
  live model during training (the quantity plotted in Fig. 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.module import Module
from .neuron_types import resolve_type


def theoretical_attenuation(neuron_type: str, depth: int, activation_scale: float = 0.5,
                            weight_scale: float = 0.35,
                            linear_path_scale: float = 1.0) -> float:
    """Expected gradient magnitude reaching the first layer of a plain QDNN.

    Parameters
    ----------
    neuron_type : str
        Quadratic design (determines whether an activation-independent path
        exists in the per-layer Jacobian).
    depth : int
        Number of stacked quadratic layers.
    activation_scale : float
        Expected magnitude of ``E[|X|]`` per layer — activations are roughly
        ``N(0, 1)`` after BatchNorm, so the relevant factor is below one.
    weight_scale : float
        Expected magnitude of the ``Wa² + Wb²`` contribution per layer.
    linear_path_scale : float
        Effective magnitude of the linear/identity path ``Wc`` per layer.
        BatchNorm re-normalises each layer's output, so this path behaves like
        an identity mapping (scale ≈ 1) — exactly the cooperation between the
        linear term, BatchNorm and ReLU the paper describes under Eq. 4.

    Returns
    -------
    float
        Product of per-layer Jacobian magnitudes; values ≪ 1 indicate
        vanishing gradients.
    """
    spec = resolve_type(neuron_type)
    quadratic_factor = activation_scale * weight_scale
    if spec.has_linear_path:
        # Eq. 4: ∂X_{k+1}/∂X_k = X(Wa² + Wb²) + Wc — the Wc term provides an
        # activation-independent path that keeps the Jacobian near unit scale.
        per_layer = quadratic_factor + linear_path_scale
    else:
        # Eq. 1: the Jacobian is proportional to the activation value itself.
        per_layer = quadratic_factor
    return float(min(per_layer, 1.0) ** max(depth - 1, 0))


def vanishing_depth(neuron_type: str, threshold: float = 1e-4, max_depth: int = 64,
                    **kwargs) -> int:
    """Smallest depth at which the theoretical attenuation drops below ``threshold``.

    Returns ``max_depth`` if the design never crosses the threshold (i.e. the
    linear path keeps gradients alive), matching the paper's observation that
    T2/T3/T4 diverge at VGG-16 depth while the new neuron still trains.
    """
    for depth in range(1, max_depth + 1):
        if theoretical_attenuation(neuron_type, depth, **kwargs) < threshold:
            return depth
    return max_depth


class GradientFlowProbe:
    """Record per-layer gradient L2 norms over training (Fig. 7).

    Attach to a model, call :meth:`snapshot` after each ``backward()`` (or once
    per epoch), and read the recorded history per layer name.
    """

    def __init__(self, model: Module, layer_filter: Optional[Sequence[str]] = None) -> None:
        self.model = model
        self.layer_filter = list(layer_filter) if layer_filter else None
        self.history: Dict[str, List[float]] = {}

    def _tracked_parameters(self):
        for name, param in self.model.named_parameters():
            if self.layer_filter is not None and not any(f in name for f in self.layer_filter):
                continue
            yield name, param

    def snapshot(self) -> Dict[str, float]:
        """Record the current gradient norm of every tracked parameter."""
        current: Dict[str, float] = {}
        for name, param in self._tracked_parameters():
            if param.grad is None:
                norm = 0.0
            else:
                norm = float(np.linalg.norm(param.grad))
            current[name] = norm
            self.history.setdefault(name, []).append(norm)
        return current

    def layer_series(self, substring: str) -> List[float]:
        """Summed gradient-norm history of all parameters whose name contains ``substring``."""
        series: List[float] = []
        matching = [name for name in self.history if substring in name]
        if not matching:
            return series
        length = min(len(self.history[name]) for name in matching)
        for step in range(length):
            series.append(sum(self.history[name][step] for name in matching))
        return series

    def final_norms(self) -> Dict[str, float]:
        """Most recent gradient norm per tracked parameter."""
        return {name: values[-1] for name, values in self.history.items() if values}
