"""Weight initialisation schemes.

The paper initialises all networks with Kaiming initialisation (He et al.
2015); the detector experiments in Table 6 explicitly contrast Kaiming
initialisation against ImageNet pre-training.  A module-level seeded RNG keeps
initialisation reproducible across runs.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..autodiff.tensor import Tensor

_rng = np.random.default_rng(0)


def seed(value: int) -> None:
    """Re-seed the initialisation RNG (used by ``repro.utils.seed_everything``)."""
    global _rng
    _rng = np.random.default_rng(value)


def get_rng() -> np.random.Generator:
    """Expose the RNG so data generators can share the same seeding policy."""
    return _rng


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for dense (out, in) and conv (F, C, kh, kw) shapes."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) >= 3:
        receptive = int(np.prod(shape[2:]))
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = shape[0]
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal initialisation: ``std = gain / sqrt(fan_in)``."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / math.sqrt(max(fan_in, 1))
    return (_rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialisation."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(3.0 / max(fan_in, 1))
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    """Glorot-normal initialisation: ``std = gain * sqrt(2 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * math.sqrt(2.0 / max(fan_in + fan_out, 1))
    return (_rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(shape: Tuple[int, ...], low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return _rng.uniform(low, high, size=shape).astype(np.float32)


def normal(shape: Tuple[int, ...], mean: float = 0.0, std: float = 0.02) -> np.ndarray:
    """Plain normal initialisation (DCGAN-style default std of 0.02)."""
    return (mean + std * _rng.standard_normal(shape)).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def constant(shape: Tuple[int, ...], value: float) -> np.ndarray:
    return np.full(shape, value, dtype=np.float32)
