"""Toy workloads used by the early QDNN literature and by our unit tests.

The pre-QuadraLib papers (Table 1 of the paper) mostly validated quadratic
neurons on tiny tasks — XOR gates, simple pattern classification — where a
single quadratic neuron separates what a single linear neuron cannot.  These
generators reproduce those workloads and also provide the two-spirals and
circle-vs-ring problems used in the quickstart example.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xor_dataset(num_samples: int = 256, noise: float = 0.08,
                seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """The XOR gate: label 1 iff the two inputs have opposite signs.

    Not linearly separable; separable by a single quadratic neuron because the
    product ``x1 * x2`` is negative exactly on the positive class.
    """
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(num_samples, 2)).astype(np.float32)
    y = ((x[:, 0] * x[:, 1]) < 0).astype(np.int64)
    x += rng.normal(0, noise, size=x.shape).astype(np.float32)
    return x, y


def circle_dataset(num_samples: int = 256, radius: float = 0.7, noise: float = 0.05,
                   seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Points inside a circle vs. outside — a quadratic decision boundary."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(num_samples, 2)).astype(np.float32)
    y = ((x ** 2).sum(axis=1) < radius ** 2).astype(np.int64)
    x += rng.normal(0, noise, size=x.shape).astype(np.float32)
    return x, y


def two_spirals(num_samples: int = 400, noise: float = 0.03,
                seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """The classic two-intertwined-spirals problem."""
    rng = np.random.default_rng(seed)
    n = num_samples // 2
    theta = np.sqrt(rng.random(n)) * 3 * np.pi
    r = theta / (3 * np.pi)
    x1 = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
    x2 = np.stack([-r * np.cos(theta), -r * np.sin(theta)], axis=1)
    x = np.concatenate([x1, x2], axis=0).astype(np.float32)
    x += rng.normal(0, noise, size=x.shape).astype(np.float32)
    y = np.concatenate([np.zeros(n), np.ones(n)]).astype(np.int64)
    perm = rng.permutation(len(x))
    return x[perm], y[perm]


def polynomial_regression(num_samples: int = 256, degree: int = 2, noise: float = 0.05,
                          seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """1-D regression targets drawn from a random polynomial of the given degree."""
    rng = np.random.default_rng(seed)
    coeffs = rng.uniform(-1, 1, size=degree + 1)
    x = rng.uniform(-1, 1, size=(num_samples, 1)).astype(np.float32)
    y = sum(c * x[:, 0] ** i for i, c in enumerate(coeffs))
    y = (y + rng.normal(0, noise, size=y.shape)).astype(np.float32)
    return x, y.reshape(-1, 1)


def gaussian_clusters(num_samples: int = 300, num_clusters: int = 3, spread: float = 0.15,
                      seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Well-separated Gaussian blobs (a linearly separable sanity-check task)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-1, 1, size=(num_clusters, 2))
    labels = rng.integers(0, num_clusters, size=num_samples)
    x = centers[labels] + rng.normal(0, spread, size=(num_samples, 2))
    return x.astype(np.float32), labels.astype(np.int64)
