"""Activation-function layers.

The paper's design insight 3 (Sec. 4.2) observes that *small* QDNNs can drop
activation functions entirely because the quadratic neuron already provides
non-linearity, while deep QDNNs still need ReLU to fight gradient vanishing;
Table 4's "QuadraNN (no ReLU)" row is exactly that ablation.  Keeping
activations as standalone modules makes it a one-line change in the
construction config.
"""

from __future__ import annotations

from ...autodiff.tensor import Tensor
from .. import functional as F
from ..module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class GELU(Module):
    """Gaussian error linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Softmax(Module):
    """Softmax over a given axis."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)


class Square(Module):
    """Element-wise square activation, ``x ↦ x²``.

    This is the polynomial activation used by privacy-preserving inference
    protocols (CryptoNets, Delphi's polynomial path): a square evaluates with
    one secure multiplication instead of the garbled-circuit comparison a ReLU
    needs.  The optional affine form ``a·x² + b·x`` keeps a linear path so the
    gradient-vanishing argument of paper Sec. 3.2 applies to activation
    replacement as well.
    """

    def __init__(self, scale: float = 1.0, linear: float = 0.0) -> None:
        super().__init__()
        self.scale = float(scale)
        self.linear = float(linear)

    def forward(self, x: Tensor) -> Tensor:
        out = (x * x) * self.scale
        if self.linear:
            out = out + x * self.linear
        return out

    def extra_repr(self) -> str:
        return f"scale={self.scale}, linear={self.linear}"


class Identity(Module):
    """No-op layer, useful when the auto-builder removes a layer in place."""

    def forward(self, x: Tensor) -> Tensor:
        return x
