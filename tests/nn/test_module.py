"""Tests of the Module system: registration, traversal, state dicts, hooks."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autodiff import randn
from repro.nn.parameter import Parameter


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.fc2 = nn.Linear(8, 2)
        self.act = nn.ReLU()

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_parameters_registered(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(names) == 4

    def test_modules_registered(self):
        net = TinyNet()
        child_names = [name for name, _ in net.named_children()]
        assert child_names == ["fc1", "fc2", "act"]

    def test_named_modules_includes_nested(self):
        net = nn.Sequential(TinyNet(), nn.ReLU())
        names = [name for name, _ in net.named_modules()]
        assert "0.fc1" in names

    def test_parameter_reassignment_replaces(self):
        net = TinyNet()
        net.fc1 = nn.Linear(4, 16)
        assert net.fc1.out_features == 16
        assert dict(net.named_parameters())["fc1.weight"].shape == (16, 4)

    def test_plain_attribute_not_registered(self):
        net = TinyNet()
        net.some_flag = 42
        assert "some_flag" not in dict(net.named_parameters())

    def test_num_parameters(self):
        net = TinyNet()
        expected = 4 * 8 + 8 + 8 * 2 + 2
        assert net.num_parameters() == expected

    def test_register_buffer(self):
        net = TinyNet()
        net.register_buffer("scale", np.ones(3, dtype=np.float32))
        assert "scale" in dict(net.named_buffers())


class TestModesAndGrad:
    def test_train_eval_propagates(self):
        net = nn.Sequential(TinyNet(), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = TinyNet()
        out = net(randn(2, 4))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_requires_grad_freeze(self):
        net = TinyNet()
        net.requires_grad_(False)
        assert all(not p.requires_grad for p in net.parameters())

    def test_apply_visits_all_modules(self):
        net = TinyNet()
        visited = []
        net.apply(lambda m: visited.append(type(m).__name__))
        assert "Linear" in visited and "TinyNet" in visited


class TestStateDict:
    def test_round_trip(self):
        net1, net2 = TinyNet(), TinyNet()
        x = randn(3, 4)
        net2.load_state_dict(net1.state_dict())
        assert np.allclose(net1(x).data, net2(x).data, atol=1e-6)

    def test_missing_key_raises_when_strict(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(ValueError):
            net.load_state_dict(state, strict=True)

    def test_non_strict_returns_missing(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.weight")
        missing = net.load_state_dict(state, strict=False)
        assert "fc1.weight" in missing

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state, strict=True)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(4)
        assert "running_mean" in bn.state_dict()


class TestHooks:
    def test_forward_hook_called(self):
        net = TinyNet()
        calls = []
        remove = net.fc1.register_forward_hook(lambda m, inp, out: calls.append(out.shape))
        net(randn(2, 4))
        assert calls == [(2, 8)]
        remove()
        net(randn(2, 4))
        assert len(calls) == 1


class TestContainers:
    def test_sequential_forward_order(self):
        net = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert net(randn(3, 4)).shape == (3, 2)

    def test_sequential_from_list(self):
        net = nn.Sequential([nn.Linear(4, 4), nn.ReLU()])
        assert len(net) == 2

    def test_sequential_indexing_and_slicing(self):
        net = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert isinstance(net[0], nn.Linear)
        assert len(net[:2]) == 2

    def test_sequential_append(self):
        net = nn.Sequential(nn.Linear(4, 4))
        net.append(nn.ReLU())
        assert len(net) == 2

    def test_module_list_registers_params(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(ml.parameters())) == 4
        assert len(ml) == 2

    def test_module_list_forward_raises(self):
        ml = nn.ModuleList([nn.Linear(2, 2)])
        with pytest.raises(NotImplementedError):
            ml(randn(1, 2))
