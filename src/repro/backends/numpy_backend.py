"""The reference backend: single-threaded NumPy, the eager numerics.

All primitives are inherited from :class:`repro.backends.Backend` — the base
class *is* the reference implementation (every method performs the exact
arithmetic of the eager forward, operation for operation).  This module only
gives it a registry entry, so ``compile_model(model, backend="numpy")`` and
the default ``backend=None`` mean the same thing and both appear in
``repro list backends``.
"""

from __future__ import annotations

from .base import Backend, register_backend


@register_backend
class NumpyBackend(Backend):
    """Reference single-threaded NumPy execution (bit-identical to eager)."""

    name = "numpy"
    exact = True
